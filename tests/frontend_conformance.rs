//! Protocol-surface conformance: the same wire script, sent pipelined,
//! must produce byte-identical reply streams over every serving surface
//! — the event-driven reactor on TCP, the reactor's unix-domain socket,
//! and the legacy blocking thread-per-connection server — for both the
//! single-engine and the sharded backend. A second set of scenarios
//! checks that a `Batch` frame answers exactly like the same requests
//! sent one frame at a time.
//!
//! Replies are compared by count plus an FNV-1a digest of their
//! re-encoded frames (the codec is canonical, so this is the wire-byte
//! stream).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pequod::core::partition::ComponentHashPartition;
use pequod::core::{Engine, EngineConfig, ShardedEngine};
use pequod::net::codec::{encode_frame, FrameDecoder};
use pequod::net::{FrontendConfig, FrontendServer, Message, TcpServer};
use pequod::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const TIMELINE: &str =
    "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>";

const TABLES: &[&str] = &["p|", "s|"];

fn k(s: &str) -> Key {
    Key::from(s)
}

fn v(s: &str) -> Value {
    Value::from(s.as_bytes().to_vec())
}

/// The conformance script: joins, writes, computed reads, counts,
/// removals, batches that split into multiple same-class runs on the
/// sharded backend, and one unsupported (server-to-server) message.
fn script() -> Vec<Message> {
    vec![
        Message::AddJoin {
            id: 1,
            text: TIMELINE.to_string(),
        },
        Message::Put {
            id: 2,
            key: k("s|ann|bob"),
            value: v("1"),
        },
        Message::Batch {
            msgs: vec![
                Message::Put {
                    id: 3,
                    key: k("p|bob|0000000100"),
                    value: v("Hi"),
                },
                Message::Put {
                    id: 4,
                    key: k("p|bob|0000000120"),
                    value: v("again"),
                },
                Message::Put {
                    id: 5,
                    key: k("s|ann|cat"),
                    value: v("1"),
                },
            ],
        },
        Message::Scan {
            id: 6,
            range: KeyRange::prefix("t|ann|"),
        },
        Message::Get {
            id: 7,
            key: k("p|bob|0000000100"),
        },
        Message::Count {
            id: 8,
            range: KeyRange::prefix("t|ann|"),
        },
        // Write → read → write → read → count: splits into five
        // same-class runs on the sharded backend, whose sequencing is
        // what keeps read-your-writes intact within one frame.
        Message::Batch {
            msgs: vec![
                Message::Put {
                    id: 9,
                    key: k("p|cat|0000000200"),
                    value: v("meow"),
                },
                Message::Scan {
                    id: 10,
                    range: KeyRange::prefix("t|ann|"),
                },
                Message::Remove {
                    id: 11,
                    key: k("p|bob|0000000120"),
                },
                Message::Scan {
                    id: 12,
                    range: KeyRange::prefix("t|ann|"),
                },
                Message::Count {
                    id: 13,
                    range: KeyRange::prefix("t|ann|"),
                },
            ],
        },
        Message::Get {
            id: 14,
            key: k("p|nobody|0000000000"),
        },
        Message::Remove {
            id: 15,
            key: k("s|ann|cat"),
        },
        Message::Scan {
            id: 16,
            range: KeyRange::prefix("t|ann|"),
        },
        // Server-to-server traffic must be refused identically.
        Message::Hello { node: 3 },
    ]
}

/// The same script with every `Batch` flattened to individual frames
/// (same wire ids, so replies must be byte-identical).
fn flattened(frames: &[Message]) -> Vec<Message> {
    let mut out = Vec::new();
    for f in frames {
        match f {
            Message::Batch { msgs } => out.extend(msgs.iter().cloned()),
            other => out.push(other.clone()),
        }
    }
    out
}

fn expected_replies(msg: &Message) -> usize {
    match msg {
        Message::Batch { msgs } => msgs.len(),
        _ => 1,
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Sends the whole script pipelined, then reads every reply frame;
/// returns (reply count, FNV-1a digest of the reply byte stream).
fn run_script<S: Read + Write>(sock: &mut S, frames: &[Message]) -> (usize, u64) {
    for f in frames {
        sock.write_all(&encode_frame(f)).unwrap();
    }
    let expected: usize = frames.iter().map(expected_replies).sum();
    let mut dec = FrameDecoder::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut count = 0usize;
    let mut fnv = FNV_OFFSET;
    while count < expected {
        match dec.next_frame().unwrap() {
            Some(m) => {
                count += 1;
                for &b in encode_frame(&m).iter() {
                    fnv ^= u64::from(b);
                    fnv = fnv.wrapping_mul(FNV_PRIME);
                }
            }
            None => {
                let n = sock.read(&mut chunk).unwrap();
                assert!(n > 0, "server closed before all replies arrived");
                dec.extend(&chunk[..n]);
            }
        }
    }
    (count, fnv)
}

fn fresh_engine() -> Engine {
    Engine::new(EngineConfig::default())
}

fn fresh_sharded() -> ShardedEngine {
    let part = Arc::new(ComponentHashPartition {
        component: 1,
        servers: 2,
    });
    ShardedEngine::new(2, EngineConfig::default(), part, TABLES)
}

static SOCK_SEQ: AtomicU64 = AtomicU64::new(0);

fn unix_sock_path() -> PathBuf {
    let seq = SOCK_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("pequod-conf-{}-{seq}.sock", std::process::id()))
}

/// Every serving surface for one backend kind, each on a fresh
/// instance (the script mutates state, so surfaces cannot share).
fn surface_digests(sharded: bool, frames: &[Message]) -> Vec<(&'static str, (usize, u64))> {
    let mut out = Vec::new();
    // Legacy blocking thread-per-connection server.
    {
        let mut server = if sharded {
            TcpServer::spawn_sharded("127.0.0.1:0", fresh_sharded()).unwrap()
        } else {
            TcpServer::spawn("127.0.0.1:0", fresh_engine()).unwrap()
        };
        let mut sock = TcpStream::connect(server.addr()).unwrap();
        sock.set_nodelay(true).unwrap();
        out.push(("threads-tcp", run_script(&mut sock, frames)));
        drop(sock);
        server.shutdown();
    }
    // Event-driven reactor, TCP surface.
    {
        let mut server = if sharded {
            FrontendServer::spawn_sharded("127.0.0.1:0", fresh_sharded(), FrontendConfig::default())
                .unwrap()
        } else {
            FrontendServer::spawn("127.0.0.1:0", fresh_engine(), FrontendConfig::default()).unwrap()
        };
        let mut sock = TcpStream::connect(server.addr()).unwrap();
        sock.set_nodelay(true).unwrap();
        out.push(("reactor-tcp", run_script(&mut sock, frames)));
        drop(sock);
        server.shutdown();
    }
    // Event-driven reactor, unix-domain socket surface.
    {
        let path = unix_sock_path();
        let cfg = FrontendConfig {
            unix_path: Some(path.clone()),
            ..FrontendConfig::default()
        };
        let mut server = if sharded {
            FrontendServer::spawn_sharded("127.0.0.1:0", fresh_sharded(), cfg).unwrap()
        } else {
            FrontendServer::spawn("127.0.0.1:0", fresh_engine(), cfg).unwrap()
        };
        let mut sock = UnixStream::connect(&path).unwrap();
        out.push(("reactor-unix", run_script(&mut sock, frames)));
        drop(sock);
        server.shutdown();
        assert!(!path.exists(), "unix socket file not removed on shutdown");
    }
    out
}

fn assert_all_equal(results: &[(&'static str, (usize, u64))]) {
    let (name0, first) = &results[0];
    for (name, r) in &results[1..] {
        assert_eq!(
            r, first,
            "surface {name} answered differently from {name0}: \
             {r:?} vs {first:?}"
        );
    }
}

#[test]
fn all_surfaces_answer_byte_identically_single_engine() {
    let frames = script();
    let results = surface_digests(false, &frames);
    assert_eq!(results[0].1 .0, 17, "script yields 17 replies");
    assert_all_equal(&results);
}

#[test]
fn all_surfaces_answer_byte_identically_sharded() {
    let frames = script();
    let results = surface_digests(true, &frames);
    assert_eq!(results[0].1 .0, 17, "script yields 17 replies");
    assert_all_equal(&results);
}

#[test]
fn batch_equals_one_at_a_time_on_every_surface() {
    let batched = script();
    let flat = flattened(&batched);
    for sharded in [false, true] {
        let batched_results = surface_digests(sharded, &batched);
        let flat_results = surface_digests(sharded, &flat);
        assert_all_equal(&batched_results);
        assert_all_equal(&flat_results);
        assert_eq!(
            batched_results[0].1, flat_results[0].1,
            "batched and one-at-a-time reply streams diverge (sharded={sharded})"
        );
    }
}
