//! Conformance suite for the unified client API: the same command
//! script runs against every backend — in-process engine, sharded
//! multi-core engine, write-around deployment, simulated cluster, and
//! the three baseline stores — and must produce the identical response
//! sequence. This is the contract that makes the figure binaries'
//! `--backend` flag meaningful: any backend that passes here is a
//! drop-in for any other.

use pequod::baselines::{MemcachedClient, MiniDbClient, RedisClient};
use pequod::core::{Client, Command, Engine, EngineConfig, MemoryLimit, Response, ShardedEngine};
use pequod::db::WriteAround;
use pequod::net::{ClusterClient, ServerId, ServerNode, SimCluster, SimConfig, TablePartition};
use pequod::prelude::*;
use pequod::telemetry::Recorder;
use std::sync::Arc;

/// Tables the scripts touch; write-around and cluster deployments treat
/// them as database-resident / partitioned respectively.
const TABLES: &[&str] = &["p|", "s|", "t|", "acct|"];

const TIMELINE: &str =
    "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>";

fn k(s: &str) -> Key {
    Key::from(s)
}

fn v(s: &str) -> Value {
    Value::from(s.as_bytes().to_vec())
}

/// A named factory, so each scenario starts from a fresh instance.
type BackendFactory = (&'static str, Box<dyn Fn() -> Box<dyn Client>>);

fn backends(join_capable_only: bool) -> Vec<BackendFactory> {
    let mut out: Vec<BackendFactory> = vec![
        (
            "engine",
            Box::new(|| Box::new(Engine::new(EngineConfig::default())) as Box<dyn Client>),
        ),
        (
            "sharded",
            Box::new(|| {
                // Two shards, split like the cluster deployment below:
                // posts homed on shard 1, the rest on shard 0, so the
                // script exercises cross-shard subscriptions.
                let part = Arc::new(TablePartition::new(ServerId(0)).route("p|", ServerId(1)));
                Box::new(ShardedEngine::new(2, EngineConfig::default(), part, TABLES))
                    as Box<dyn Client>
            }),
        ),
        (
            "writearound",
            Box::new(|| {
                Box::new(WriteAround::new(
                    Engine::new(EngineConfig::default()),
                    &["p|", "s|", "acct|"],
                )) as Box<dyn Client>
            }),
        ),
        (
            "cluster",
            Box::new(|| {
                // Two servers: posts homed on server 1, the rest on 0,
                // so the script crosses a partition boundary.
                let part = Arc::new(TablePartition::new(ServerId(0)).route("p|", ServerId(1)));
                let nodes = (0..2)
                    .map(|i| {
                        ServerNode::new(
                            ServerId(i),
                            Engine::new(EngineConfig::default()),
                            part.clone(),
                            TABLES,
                        )
                    })
                    .collect();
                Box::new(ClusterClient::new(
                    SimCluster::new(SimConfig::default(), nodes),
                    part,
                )) as Box<dyn Client>
            }),
        ),
    ];
    if !join_capable_only {
        out.push((
            "redis",
            Box::new(|| Box::new(RedisClient::new()) as Box<dyn Client>),
        ));
        out.push((
            "memcached",
            Box::new(|| Box::new(MemcachedClient::new()) as Box<dyn Client>),
        ));
        out.push((
            "minidb",
            Box::new(|| Box::new(MiniDbClient::new()) as Box<dyn Client>),
        ));
    }
    out
}

/// Plain KV commands every backend must answer identically (no joins —
/// the baselines reject those, which `addjoin_rejection_is_explicit`
/// covers separately).
fn kv_script() -> Vec<Command> {
    vec![
        Command::Put(k("p|bob|0000000100"), v("Hi")),
        Command::Put(k("p|bob|0000000120"), v("again")),
        Command::Put(k("p|liz|0000000110"), v("hello")),
        Command::Put(k("acct|ann"), v("1000")),
        Command::Get(k("p|bob|0000000100")),
        Command::Get(k("p|zed|0000000001")), // absent
        Command::Scan(KeyRange::prefix("p|bob|")),
        Command::Scan(KeyRange::prefix("p|")),
        Command::Scan(KeyRange::prefix("s|")), // empty table
        Command::Count(KeyRange::prefix("p|")),
        Command::Count(KeyRange::prefix("acct|")),
        Command::Count(KeyRange::prefix("s|")), // zero
        Command::Put(k("p|bob|0000000100"), v("edited")), // overwrite
        Command::Get(k("p|bob|0000000100")),
        Command::Count(KeyRange::prefix("p|bob|")), // still 2
        Command::Remove(k("p|bob|0000000120")),
        Command::Remove(k("p|bob|0000000999")), // absent: no-op
        Command::Scan(KeyRange::prefix("p|bob|")),
        Command::Count(KeyRange::prefix("p|")),
        Command::Scan(KeyRange::new("p|bob|0000000100", "p|liz|0000000111")),
        Command::Get(k("acct|ann")),
        Command::Remove(k("acct|ann")),
        Command::Get(k("acct|ann")),
        // A table no deployment declared up front: the write-around
        // backend must still serve it (cache-resident), identically.
        Command::Put(k("misc|x"), v("42")),
        Command::Get(k("misc|x")),
        Command::Count(KeyRange::prefix("misc|")),
        Command::Remove(k("misc|x")),
        Command::Get(k("misc|x")),
    ]
}

/// A script exercising cache joins, for the join-capable backends:
/// installs the timeline join, mixes writes and reads, counts
/// server-side, and checks incremental maintenance of removals.
fn join_script() -> Vec<Command> {
    vec![
        Command::AddJoin(TIMELINE.to_string()),
        Command::Put(k("s|ann|bob"), v("1")),
        Command::Put(k("s|cat|bob"), v("1")),
        Command::Put(k("p|bob|0000000100"), v("Hi")),
        Command::Scan(KeyRange::prefix("t|ann|")),
        Command::Count(KeyRange::prefix("t|cat|")),
        Command::Put(k("p|bob|0000000120"), v("again")),
        Command::Scan(KeyRange::prefix("t|ann|")),
        Command::Count(KeyRange::prefix("t|ann|")),
        Command::Get(k("t|cat|0000000120|bob")),
        Command::Remove(k("p|bob|0000000100")),
        Command::Scan(KeyRange::prefix("t|ann|")),
        Command::Count(KeyRange::prefix("t|cat|")),
        Command::Put(k("s|ann|liz"), v("1")),
        Command::Put(k("p|liz|0000000130"), v("hello")),
        Command::Count(KeyRange::prefix("t|ann|")),
        Command::Scan(KeyRange::prefix("t|cat|")),
    ]
}

/// Runs a script and labels each response with its command index for
/// readable mismatch reports.
fn run_script(client: &mut dyn Client, script: Vec<Command>) -> Vec<(usize, Response)> {
    client
        .execute_batch(script)
        .into_iter()
        .enumerate()
        .collect()
}

fn assert_all_agree(script_of: fn() -> Vec<Command>, join_capable_only: bool) {
    let mut reference: Option<(&str, Vec<(usize, Response)>)> = None;
    for (name, make) in backends(join_capable_only) {
        let mut client = make();
        assert_eq!(client.backend_name(), name);
        let got = run_script(&mut *client, script_of());
        match &reference {
            None => reference = Some((name, got)),
            Some((ref_name, want)) => {
                assert_eq!(
                    &got, want,
                    "{name} answered the script differently from {ref_name}"
                );
            }
        }
    }
}

#[test]
fn all_backends_agree_on_the_kv_script() {
    assert_all_agree(kv_script, false);
}

#[test]
fn join_capable_backends_agree_on_the_join_script() {
    assert_all_agree(join_script, true);
}

/// One big batch and the same commands issued one at a time must be
/// indistinguishable (batching is a transport optimization, not a
/// semantic one).
#[test]
fn batched_equals_one_at_a_time() {
    for (name, make) in backends(true) {
        let mut batched = make();
        let batched_out = batched.execute_batch(join_script());
        let mut single = make();
        let single_out: Vec<Response> = join_script()
            .into_iter()
            .map(|c| single.execute(c))
            .collect();
        assert_eq!(batched_out, single_out, "{name}: batch != singles");
    }
    for (name, make) in backends(false) {
        let mut batched = make();
        let batched_out = batched.execute_batch(kv_script());
        let mut single = make();
        let single_out: Vec<Response> =
            kv_script().into_iter().map(|c| single.execute(c)).collect();
        assert_eq!(batched_out, single_out, "{name}: batch != singles");
    }
}

/// Join-less backends reject joins with an error response rather than
/// silently dropping them, and keep answering later commands.
#[test]
fn addjoin_rejection_is_explicit() {
    for make in [
        || Box::new(RedisClient::new()) as Box<dyn Client>,
        || Box::new(MemcachedClient::new()) as Box<dyn Client>,
        || Box::new(MiniDbClient::new()) as Box<dyn Client>,
    ] {
        let mut client = make();
        let out = client.execute_batch(vec![
            Command::AddJoin(TIMELINE.to_string()),
            Command::Put(k("p|bob|0000000100"), v("Hi")),
            Command::Count(KeyRange::prefix("p|")),
        ]);
        assert!(matches!(out[0], Response::Error(_)));
        assert_eq!(out[1], Response::Ok);
        assert_eq!(out[2], Response::Count(1));
    }
}

/// Stats is the one command whose payload legitimately differs per
/// backend; every backend must still answer it with the right variant.
#[test]
fn stats_answers_with_the_stats_variant() {
    for (name, make) in backends(false) {
        let mut client = make();
        client.put(&k("p|bob|0000000100"), &v("Hi"));
        let stats = client.stats();
        assert!(stats.keys >= 1, "{name} reported no keys");
        assert_eq!(stats.js_evictions, 0, "{name}: no cap, no evictions");
        assert_eq!(stats.base_evictions, 0, "{name}: no cap, no evictions");
    }
}

/// A bigger deterministic script whose computed timelines dominate the
/// footprint, so a cap at half the uncapped footprint forces evictions
/// mid-script: 24 readers × 4 followees over 8 posters, several rounds
/// of posting and timeline reads.
fn pressure_script() -> Vec<Command> {
    let mut script = vec![Command::AddJoin(TIMELINE.to_string())];
    for u in 0..24u32 {
        for f in 0..4u32 {
            script.push(Command::Put(
                k(&format!("s|r{u:03}|w{:03}", (u + f) % 8)),
                v("1"),
            ));
        }
    }
    let mut time = 0u64;
    for p in 0..8u32 {
        for _ in 0..12 {
            time += 1;
            script.push(Command::Put(
                k(&format!("p|w{p:03}|{time:010}")),
                v("a tweet of plausible length for the feed"),
            ));
        }
    }
    for _round in 0..3 {
        for u in 0..24u32 {
            script.push(Command::Scan(KeyRange::prefix(format!("t|r{u:03}|"))));
            script.push(Command::Count(KeyRange::prefix(format!("t|r{u:03}|"))));
        }
        for p in 0..8u32 {
            time += 1;
            script.push(Command::Put(
                k(&format!("p|w{p:03}|{time:010}")),
                v("a follow-up tweet between read rounds"),
            ));
        }
        script.push(Command::Remove(k(&format!("p|w000|{:010}", time - 7))));
    }
    script
}

/// Recompute transparency (§2.5): a memory-capped deployment must
/// answer the shared script byte-identically to an uncapped engine, on
/// every join-capable backend that can run capped — the in-process
/// engine, the sharded engine (per-shard budgets), and the simulated
/// cluster (per-node budgets). The cap is calibrated to half of the
/// uncapped engine's footprint on the same script, so eviction provably
/// fires while the script runs.
#[test]
fn capped_backends_answer_like_uncapped_ones() {
    // Reference + calibration: the uncapped engine.
    let mut reference = Engine::new(EngineConfig::default());
    let want = run_script(&mut reference, pressure_script());
    let footprint = Client::stats(&mut reference).memory_bytes as usize;
    let limit = MemoryLimit::new(footprint / 2);

    let capped: Vec<BackendFactory> = vec![
        (
            "engine",
            Box::new(move || {
                Box::new(Engine::new(EngineConfig::default().with_mem_limit(limit)))
                    as Box<dyn Client>
            }),
        ),
        (
            "sharded",
            Box::new(move || {
                // ShardedEngine splits the node budget per shard itself.
                let part = Arc::new(TablePartition::new(ServerId(0)).route("p|", ServerId(1)));
                Box::new(ShardedEngine::new(
                    2,
                    EngineConfig::default().with_mem_limit(limit),
                    part,
                    TABLES,
                )) as Box<dyn Client>
            }),
        ),
        (
            "cluster",
            Box::new(move || {
                // Cluster nodes are configured explicitly: give each
                // server an even share of the deployment budget.
                let part = Arc::new(TablePartition::new(ServerId(0)).route("p|", ServerId(1)));
                let nodes = (0..2)
                    .map(|i| {
                        ServerNode::new(
                            ServerId(i),
                            Engine::new(EngineConfig::default().with_mem_limit(limit.split(2))),
                            part.clone(),
                            TABLES,
                        )
                    })
                    .collect();
                Box::new(ClusterClient::new(
                    SimCluster::new(SimConfig::default(), nodes),
                    part,
                )) as Box<dyn Client>
            }),
        ),
    ];
    for (name, make) in capped {
        let mut client = make();
        let got = run_script(&mut *client, pressure_script());
        assert_eq!(
            got, want,
            "capped {name} answered the script differently from the uncapped engine"
        );
        let stats = client.stats();
        assert!(
            stats.js_evictions + stats.base_evictions > 0,
            "capped {name} never evicted (cap {} bytes, footprint {} bytes)",
            limit.high_bytes,
            footprint
        );
    }
}

/// An engine with a live telemetry recorder, for the on/off contract
/// below.
fn telemetered_engine() -> Engine {
    let mut e = Engine::new(EngineConfig::default());
    e.set_recorder(Recorder::enabled());
    e
}

/// The join-capable pequod backends with telemetry recording on every
/// engine, mirroring `backends(true)` name for name.
fn telemetered_backends() -> Vec<BackendFactory> {
    vec![
        (
            "engine",
            Box::new(|| Box::new(telemetered_engine()) as Box<dyn Client>),
        ),
        (
            "sharded",
            Box::new(|| {
                let part = Arc::new(TablePartition::new(ServerId(0)).route("p|", ServerId(1)));
                let sharded = ShardedEngine::new_with_setup(
                    2,
                    EngineConfig::default(),
                    part,
                    TABLES,
                    |_, e| {
                        e.set_recorder(Recorder::enabled());
                        Ok(())
                    },
                )
                .unwrap_or_else(|e| panic!("sharded setup: {e}"));
                Box::new(sharded) as Box<dyn Client>
            }),
        ),
        (
            "writearound",
            Box::new(|| {
                Box::new(WriteAround::new(
                    telemetered_engine(),
                    &["p|", "s|", "acct|"],
                )) as Box<dyn Client>
            }),
        ),
        (
            "cluster",
            Box::new(|| {
                let part = Arc::new(TablePartition::new(ServerId(0)).route("p|", ServerId(1)));
                let nodes = (0..2)
                    .map(|i| {
                        ServerNode::new(ServerId(i), telemetered_engine(), part.clone(), TABLES)
                    })
                    .collect();
                Box::new(ClusterClient::new(
                    SimCluster::new(SimConfig::default(), nodes),
                    part,
                )) as Box<dyn Client>
            }),
        ),
    ]
}

/// Telemetry must be invisible to clients: with an enabled recorder on
/// every engine, each backend answers both scripts byte-identically to
/// its untelemetered twin — recording observes the data path, it never
/// participates in it. (The recorder is provably live: the engine
/// variant must have counted the script's operations.)
#[test]
fn telemetry_on_answers_are_byte_identical() {
    for script_of in [kv_script as fn() -> Vec<Command>, join_script] {
        for ((name, plain), (tname, telemetered)) in
            backends(true).into_iter().zip(telemetered_backends())
        {
            assert_eq!(name, tname, "factory lists diverged");
            let want = run_script(&mut *plain(), script_of());
            let got = run_script(&mut *telemetered(), script_of());
            assert_eq!(got, want, "{name}: telemetry changed the answers");
        }
    }
    let mut engine = telemetered_engine();
    run_script(&mut engine, join_script());
    let snap = engine.recorder().snapshot(false);
    assert!(
        snap.to_prometheus().contains("pequod_op_total"),
        "recorder was not live during the conformance run"
    );
}
