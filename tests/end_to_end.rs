//! Cross-crate integration tests: full application flows through the
//! public facade (`pequod::*`), spanning engine, database, network, and
//! workload crates.

use pequod::baselines::{ClientPequodTwip, MemcachedTwip, PostgresTwip, RedisTwip};
use pequod::core::partition::ComponentHashPartition;
use pequod::core::{Engine, EngineConfig, MaterializationMode, MemoryLimit, ShardedEngine};
use pequod::db::WriteAround;
use pequod::net::{
    ServerId, ServerNode, SimCluster, SimConfig, TablePartition, TcpClient, TcpServer,
};
use pequod::prelude::*;
use pequod::workloads::graph::{GraphConfig, SocialGraph};
use pequod::workloads::twip::{run_twip, PequodTwip, TwipMix, TwipWorkload};
use std::sync::Arc;

const TIMELINE: &str =
    "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>";

fn small_graph(seed: u64) -> SocialGraph {
    SocialGraph::generate(&GraphConfig {
        users: 250,
        avg_followees: 8.0,
        zipf_alpha: 1.2,
        seed,
    })
}

/// Every Twip backend — Pequod, client-Pequod, Redis-like,
/// memcached-like, and the relational baseline — serves the identical
/// workload and returns the same timeline entries.
#[test]
fn all_five_systems_agree_on_twip() {
    let graph = small_graph(0xe2e);
    let mix = TwipMix {
        active_fraction: 0.5,
        checks_per_user: 4,
        seed: 0xe2e1,
        ..TwipMix::default()
    };
    let workload = TwipWorkload::generate(&graph, &mix);
    let mut results = Vec::new();

    let mut pq = PequodTwip::new(Engine::new(EngineConfig::default()));
    pq.set_rpc_cost(0, 0);
    results.push(("pequod", run_twip(&mut pq, &graph, &workload, 300)));
    let mut cp = ClientPequodTwip::new(Engine::new(EngineConfig::default()));
    results.push(("client", run_twip(&mut cp, &graph, &workload, 300)));
    let mut rd = RedisTwip::new();
    results.push(("redis", run_twip(&mut rd, &graph, &workload, 300)));
    let mut mc = MemcachedTwip::new();
    results.push(("memcached", run_twip(&mut mc, &graph, &workload, 300)));
    let mut pg = PostgresTwip::new();
    results.push(("postgres", run_twip(&mut pg, &graph, &workload, 300)));

    let expected = results[0].1.entries_returned;
    assert!(expected > 0);
    for (name, stats) in &results {
        assert_eq!(
            stats.entries_returned, expected,
            "{name} returned different timeline entries"
        );
    }
}

/// Write-around deployment: app writes to the database; the cache loads
/// and subscribes on demand; later writes arrive by notification.
#[test]
fn write_around_with_database() {
    let mut engine = Engine::new(EngineConfig::default());
    engine.add_join_text(TIMELINE).unwrap();
    let mut wa = WriteAround::new(engine, &["p|", "s|"]);
    for (user, poster) in [("ann", "bob"), ("ann", "liz"), ("cat", "bob")] {
        wa.write(format!("s|{user}|{poster}"), "1");
    }
    for (poster, t) in [("bob", 100u64), ("liz", 110), ("bob", 120)] {
        wa.write(format!("p|{poster}|{t:010}"), "tweet");
    }
    assert_eq!(wa.read(&KeyRange::prefix("t|ann|")).pairs.len(), 3);
    assert_eq!(wa.read(&KeyRange::prefix("t|cat|")).pairs.len(), 2);
    // DB-side delete flows through.
    wa.delete(&Key::from("p|bob|0000000100"));
    assert_eq!(wa.read(&KeyRange::prefix("t|ann|")).pairs.len(), 2);
    assert!(wa.db.subscription_count() >= 2);
}

/// A two-tier simulated cluster serves a Twip workload with the same
/// results as a single engine.
#[test]
fn distributed_matches_single_engine() {
    let graph = small_graph(0xd15);
    // Single-engine reference.
    let mut reference = Engine::new(EngineConfig::default());
    reference.add_join_text(TIMELINE).unwrap();
    // Cluster: base on 0, compute on 1.
    let part = Arc::new(TablePartition::new(ServerId(0)));
    let nodes = vec![
        ServerNode::new(
            ServerId(0),
            Engine::new(EngineConfig::default()),
            part.clone(),
            &["p|", "s|"],
        ),
        ServerNode::new(
            ServerId(1),
            Engine::new(EngineConfig::default()),
            part,
            &["p|", "s|"],
        ),
    ];
    let mut cluster = SimCluster::new(SimConfig::default(), nodes);
    cluster.add_joins_everywhere(TIMELINE);

    let mut time = 0u64;
    for u in 0..graph.users() {
        for &p in graph.followees(u) {
            let key = format!("s|u{u:07}|u{p:07}");
            reference.put(key.clone(), "1");
            cluster.put(ServerId(0), key, "1");
        }
    }
    for i in 0..300u64 {
        time += 1;
        let poster = (i * 7) % graph.users() as u64;
        let key = format!("p|u{poster:07}|{time:010}");
        reference.put(key.clone(), "x");
        cluster.put(ServerId(0), key, "x");
    }
    for u in (0..graph.users()).step_by(7) {
        let range = KeyRange::prefix(format!("t|u{u:07}|"));
        let want = reference.scan(&range).pairs;
        let got = cluster.scan(ServerId(1), range);
        assert_eq!(got, want, "user {u} timeline diverged");
    }
}

/// The same engine logic works over real TCP.
#[test]
fn tcp_server_serves_newp_pages() {
    let mut engine = Engine::new_default();
    engine
        .add_joins_text(pequod::workloads::newp::NEWP_BASE_JOINS)
        .unwrap();
    engine
        .add_joins_text(pequod::workloads::newp::NEWP_PAGE_JOINS)
        .unwrap();
    let server = TcpServer::spawn("127.0.0.1:0", engine).unwrap();
    let mut c = TcpClient::connect(server.addr()).unwrap();
    c.put("article|n1|0001", "body").unwrap();
    c.put("comment|n1|0001|c1|n2", "hi").unwrap();
    c.put("vote|n1|0001|n9", "1").unwrap();
    let page = c.scan(KeyRange::prefix("page|n1|0001|")).unwrap();
    let keys: Vec<String> = page.iter().map(|(k, _)| k.to_string()).collect();
    assert_eq!(
        keys,
        vec![
            "page|n1|0001|a".to_string(),
            "page|n1|0001|c|c1|n2".to_string(),
            "page|n1|0001|r".to_string(),
        ]
    );
}

/// Memory-bounded serving over real sockets: a TCP node with a memory
/// cap (what `pequod-server --mem-limit-mb` configures) evicts under
/// load yet answers every request exactly like an unbounded node —
/// single-engine and sharded backends alike.
#[test]
fn tcp_servers_serve_memory_bounded() {
    let limit = MemoryLimit::new(24 * 1024);
    let drive = |c: &mut TcpClient| -> Vec<Vec<(Key, Value)>> {
        c.add_join(TIMELINE).unwrap();
        for u in 0..40u32 {
            c.put(format!("s|u{u:07}|u0000099"), "1").unwrap();
        }
        for t in 0..40u64 {
            c.put(
                format!("p|u0000099|{t:010}"),
                "a tweet with some body to it",
            )
            .unwrap();
        }
        let mut reads = Vec::new();
        for _round in 0..2 {
            for u in 0..40u32 {
                reads.push(c.scan(KeyRange::prefix(format!("t|u{u:07}|"))).unwrap());
            }
        }
        reads
    };

    let unbounded = TcpServer::spawn("127.0.0.1:0", Engine::new_default()).unwrap();
    let want = drive(&mut TcpClient::connect(unbounded.addr()).unwrap());

    let capped_cfg = EngineConfig::default().with_mem_limit(limit);
    let capped = TcpServer::spawn("127.0.0.1:0", Engine::new(capped_cfg.clone())).unwrap();
    let got = drive(&mut TcpClient::connect(capped.addr()).unwrap());
    assert_eq!(got, want, "capped TCP node diverged from unbounded");
    {
        let engine = capped.engine().expect("single-engine backend");
        let engine = engine.lock().unwrap();
        assert!(
            engine.engine_stats().js_evictions > 0,
            "cap never triggered"
        );
        assert!(engine.memory_bytes() <= limit.high_bytes);
    }

    // The sharded node splits the same budget across its shards.
    let part = Arc::new(ComponentHashPartition {
        component: 1,
        servers: 2,
    });
    let sharded = ShardedEngine::new(2, capped_cfg, part, &["p|", "s|"]);
    let sharded_srv = TcpServer::spawn_sharded("127.0.0.1:0", sharded).unwrap();
    let got = drive(&mut TcpClient::connect(sharded_srv.addr()).unwrap());
    assert_eq!(got, want, "capped sharded TCP node diverged from unbounded");
    let mut handle = sharded_srv
        .sharded()
        .expect("sharded backend")
        .client_handle();
    let stats = handle.stats();
    assert!(
        stats.js_evictions + stats.base_evictions > 0,
        "sharded cap never triggered"
    );
}

/// Eviction under memory pressure: computed ranges are dropped LRU-first
/// and recomputed on demand with identical results.
#[test]
fn eviction_and_recomputation_round_trip() {
    let mut engine = Engine::new(EngineConfig::default());
    engine.add_join_text(TIMELINE).unwrap();
    for u in 0..20 {
        engine.put(format!("s|u{u:07}|u0000099"), "1");
    }
    for t in 0..50u64 {
        engine.put(format!("p|u0000099|{t:010}"), "x");
    }
    let mut before = Vec::new();
    for u in 0..20 {
        before.push(engine.scan(&KeyRange::prefix(format!("t|u{u:07}|"))).pairs);
    }
    let evicted = engine.evict_to(engine.memory_bytes() / 3);
    assert!(evicted > 0);
    for u in 0..20 {
        let after = engine.scan(&KeyRange::prefix(format!("t|u{u:07}|"))).pairs;
        assert_eq!(after, before[u as usize], "user {u} lost data to eviction");
    }
}

/// Materialization modes agree on results (they differ only in cost).
#[test]
fn materialization_modes_agree() {
    let graph = small_graph(0xa9e);
    let mut engines: Vec<Engine> = [
        MaterializationMode::Dynamic,
        MaterializationMode::Full,
        MaterializationMode::None,
    ]
    .iter()
    .map(|mode| {
        let cfg = EngineConfig {
            materialization: *mode,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(cfg);
        e.add_join_text(TIMELINE).unwrap();
        e
    })
    .collect();
    let mut time = 0u64;
    for u in 0..graph.users() {
        for &p in graph.followees(u) {
            for e in engines.iter_mut() {
                e.put(format!("s|u{u:07}|u{p:07}"), "1");
            }
        }
    }
    for i in 0..200u64 {
        time += 1;
        for e in engines.iter_mut() {
            e.put(format!("p|u{:07}|{time:010}", (i * 13) % 250), "x");
        }
    }
    for u in (0..graph.users()).step_by(11) {
        let range = KeyRange::prefix(format!("t|u{u:07}|"));
        let a = engines[0].scan(&range).pairs;
        let b = engines[1].scan(&range).pairs;
        let c = engines[2].scan(&range).pairs;
        assert_eq!(a, b, "dynamic vs full diverged for user {u}");
        assert_eq!(a, c, "dynamic vs none diverged for user {u}");
    }
}
