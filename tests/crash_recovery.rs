//! Crash-consistency, the headline test of the `pequod-persist`
//! subsystem: a real `pequod-server --data-dir` process is **SIGKILLed
//! mid-batch** while a TCP client streams writes at it, then restarted
//! on the same directory. The recovered node must answer a conformance
//! script **byte-identically** (count + content digest + full pairs)
//! to a never-crashed reference engine that executed exactly the
//! operations that survived in the log — torn tail records are
//! detected by checksum and dropped, everything before them is served.
//!
//! Runs the matrix the acceptance criteria name: the single-engine and
//! sharded backends, each also with `--mem-limit-mb` set (recovery and
//! eviction compose: a capped recovered node still answers like the
//! uncapped reference). The byte-exhaustive torn-tail sweep lives in
//! `crates/persist/tests/crash_sim.rs`; this file proves the story
//! end-to-end through a real process, a real socket, and a real kill.

use pequod::core::Engine;
use pequod::net::TcpClient;
use pequod::persist::{recover, replay};
use pequod::prelude::*;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command as Proc, Stdio};
use std::time::Duration;

const TIMELINE: &str =
    "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>";

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "pequod-crash-recovery-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Server {
    /// Spawns `pequod-server` on an ephemeral port and waits for its
    /// "listening on" line.
    fn spawn(extra: &[&str]) -> Server {
        let mut args = vec!["--listen", "127.0.0.1:0"];
        args.extend_from_slice(extra);
        Server::spawn_raw(&args)
    }

    /// Spawns `pequod-server` with exactly these arguments and waits
    /// for its "listening on" line.
    fn spawn_raw(extra: &[&str]) -> Server {
        let mut child = Proc::new(env!("CARGO_BIN_EXE_pequod-server"))
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn pequod-server");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut reader = BufReader::new(stderr);
        let addr = loop {
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("read server stderr");
            assert!(n > 0, "server exited before listening");
            if let Some(at) = line.find("listening on ") {
                let addr: SocketAddr = line[at + "listening on ".len()..]
                    .trim()
                    .parse()
                    .expect("parse listen address");
                break addr;
            }
        };
        // Keep draining stderr so the child never blocks on the pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            loop {
                sink.clear();
                match reader.read_line(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
        });
        Server { child, addr }
    }

    fn connect(&self) -> TcpClient {
        for _ in 0..50 {
            if let Ok(c) = TcpClient::connect(self.addr) {
                return c;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("cannot connect to {}", self.addr);
    }

    /// SIGKILL — no shutdown handler runs, exactly like a crash.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.kill();
    }
}

fn post_key(poster: u32, t: u64) -> String {
    format!("p|u{poster:03}|{t:010}")
}

/// Rebuilds the surviving history from the data directory (or, for a
/// sharded node, its per-shard subdirectories) into a single reference
/// engine, through the *production* replay path (`persist::replay`):
/// snapshot joins + pairs, then the log tail, in order. Shard
/// directories are disjoint (each shard logs only its authoritative
/// writes), so any shard order rebuilds the same base state; join
/// installation is idempotent, so the broadcast `AddJoin` each shard
/// logged installs once.
fn reference_from(dirs: &[PathBuf]) -> (Engine, usize) {
    let mut reference = Engine::new_default();
    let mut surviving_ops = 0usize;
    for dir in dirs {
        let rec = recover(dir).unwrap_or_else(|e| panic!("recover {}: {e}", dir.display()));
        surviving_ops += rec.pairs.len() + rec.ops.len();
        replay(&mut reference, &rec).unwrap_or_else(|e| panic!("replay {}: {e}", dir.display()));
    }
    (reference, surviving_ops)
}

/// FNV-1a over a pair list: the content digest half of the
/// byte-identical check.
fn digest(pairs: &[(Key, Value)]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut fold = |bytes: &[u8]| {
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0xff;
        h = h.wrapping_mul(PRIME);
    };
    for (k, v) in pairs {
        fold(k.as_bytes());
        fold(v);
    }
    h
}

/// The conformance script, driven over TCP against the recovered node
/// and in-process against the reference: every table whole, per-user
/// timelines (computed — these rebuild lazily on the recovered node),
/// counts, and point reads.
fn conformance(client: &mut TcpClient, reference: &mut Engine, label: &str) {
    for prefix in ["p|", "s|", "t|"] {
        let got = client.scan(KeyRange::prefix(prefix)).unwrap();
        let want = reference.scan(&KeyRange::prefix(prefix)).pairs;
        assert_eq!(
            got.len(),
            want.len(),
            "{label}: scan {prefix} returned a different count"
        );
        assert_eq!(
            digest(&got),
            digest(&want),
            "{label}: scan {prefix} content digest diverged"
        );
        assert_eq!(got, want, "{label}: scan {prefix} pairs diverged");
    }
    for u in 0..8u32 {
        let r = KeyRange::prefix(format!("t|u{u:03}|"));
        assert_eq!(
            client.count(r.clone()).unwrap(),
            reference.count(&r) as u64,
            "{label}: timeline count for u{u:03} diverged"
        );
    }
    let probe = Key::from(post_key(3, 1000));
    assert_eq!(
        client.get(probe.clone()).unwrap(),
        reference.get(&probe),
        "{label}: point read diverged"
    );
}

/// One full crash→recover→conform cycle.
fn crash_and_recover(label: &str, extra_args: &[&str], shard_dirs: usize) {
    let tmp = TempDir::new(label);
    let data_dir = tmp.0.join("data");
    let data_dir_s = data_dir.to_str().unwrap().to_string();
    let mut args = vec!["--data-dir", data_dir_s.as_str(), "--fsync", "every:8"];
    args.extend_from_slice(extra_args);

    // Phase 1: a server accumulates an acknowledged base: the join,
    // a follower graph, and a first wave of posts.
    let mut server = Server::spawn(&args);
    {
        let mut c = server.connect();
        c.add_join(TIMELINE).unwrap();
        for u in 0..8u32 {
            for f in 1..4u32 {
                c.put(format!("s|u{u:03}|u{:03}", (u + f) % 8), "1")
                    .unwrap();
            }
        }
        for poster in 0..8u32 {
            for t in 0..6u64 {
                c.put(post_key(poster, 1000 + t * 7), "warm").unwrap();
            }
        }
        // Read a few timelines so computed ranges exist at crash time —
        // they must be re-derived after recovery, never trusted.
        for u in 0..4u32 {
            let _ = c.count(KeyRange::prefix(format!("t|u{u:03}|"))).unwrap();
        }
    }

    // Phase 2: the kill race. A writer streams a batch of posts and
    // removes; a second thread SIGKILLs the server mid-stream.
    let addr = server.addr;
    let writer = std::thread::spawn(move || {
        let Ok(mut c) = TcpClient::connect(addr) else {
            return 0u32;
        };
        let mut acked = 0u32;
        for i in 0..200_000u64 {
            let poster = (i % 8) as u32;
            let r = if i % 11 == 10 {
                c.remove(post_key(poster, 1000 + (i % 6) * 7))
            } else {
                c.put(post_key(poster, 2000 + i), format!("live-{i}"))
            };
            match r {
                Ok(()) => acked += 1,
                Err(_) => break, // the server died mid-batch
            }
        }
        acked
    });
    std::thread::sleep(Duration::from_millis(120));
    server.kill();
    let acked = writer.join().unwrap();

    // Phase 3: the reference is what the log says survived. Everything
    // the client saw acknowledged must be there (fsync every:8 only
    // matters for power loss; a SIGKILL keeps OS-buffered writes).
    let dirs: Vec<PathBuf> = if shard_dirs <= 1 {
        vec![data_dir.clone()]
    } else {
        (0..shard_dirs)
            .map(|s| data_dir.join(format!("shard-{s}")))
            .collect()
    };
    let (mut reference, surviving) = reference_from(&dirs);
    // Everything phase 1 acknowledged must be in the log: 24 follow
    // edges + 48 posts (the join is counted separately per shard).
    assert!(
        surviving >= 72,
        "{label}: only {surviving} ops survived — the acknowledged phase-1 base is missing"
    );
    assert!(
        acked < 200_000,
        "{label}: the writer finished before the kill; no mid-batch crash happened"
    );

    // Phase 4: restart on the same directory; the recovered node must
    // answer the conformance script byte-identically to the reference.
    let server = Server::spawn(&args);
    let mut c = server.connect();
    conformance(&mut c, &mut reference, label);

    // And it keeps serving: post-recovery writes land on the rebuilt
    // state exactly as they would on the reference.
    c.put(post_key(1, 9000), "after-recovery").unwrap();
    reference.put(post_key(1, 9000), "after-recovery");
    conformance(&mut c, &mut reference, &format!("{label}+write"));
}

#[test]
fn single_engine_recovers_byte_identically_after_midbatch_kill() {
    crash_and_recover("single", &[], 1);
}

#[test]
fn single_engine_with_mem_limit_recovers_byte_identically() {
    crash_and_recover("single-capped", &["--mem-limit-mb", "1"], 1);
}

#[test]
fn sharded_recovers_byte_identically_after_midbatch_kill() {
    crash_and_recover("sharded", &["--shards", "3"], 3);
}

#[test]
fn sharded_with_mem_limit_recovers_byte_identically() {
    crash_and_recover(
        "sharded-capped",
        &["--shards", "3", "--mem-limit-mb", "2"],
        3,
    );
}

// ---------------------------------------------------------------------------
// Replicated cluster: kill a node, lose nothing.
// ---------------------------------------------------------------------------

use pequod::cluster::{ClusterClient, ClusterConfig};
use std::collections::HashMap;

/// Reserves `n` distinct ephemeral ports by binding and dropping
/// listeners.
fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<_> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

/// Spawns one cluster member process.
fn spawn_cluster_node(cluster_file: &str, id: u32, data_dir: &str) -> Server {
    Server::spawn_raw(&[
        "--cluster",
        cluster_file,
        "--node-id",
        &id.to_string(),
        "--data-dir",
        data_dir,
        "--fsync",
        "every:8",
    ])
}

/// Sends SIGTERM (the graceful path — the process drains, finalizes
/// durability, and exits 0) and waits for the exit status.
fn sigterm_and_wait(server: &mut Server) -> std::process::ExitStatus {
    let pid = server.child.id().to_string();
    let ok = Proc::new("kill")
        .args(["-TERM", &pid])
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    assert!(ok, "kill -TERM {pid} failed");
    server.child.wait().expect("wait for SIGTERMed server")
}

/// Reads a numeric `stat|*` counter out of a node's status pairs.
fn stat_of(pairs: &[(Key, Value)], name: &str) -> u64 {
    let want = format!("stat|{name}");
    pairs
        .iter()
        .find(|(k, _)| k.as_bytes() == want.as_bytes())
        .and_then(|(_, v)| std::str::from_utf8(v).ok()?.parse().ok())
        .unwrap_or(0)
}

/// A replicated three-node cluster (RF=2) over real TCP and real
/// processes: SIGKILL the primary mid-batch, prove no acknowledged
/// write is lost; warm-restart it and prove catch-up is a window
/// replay, not a full snapshot re-fetch; roll a node with SIGTERM;
/// finally stop everything gracefully and prove each slot's replicas
/// are byte-identical on disk (count + FNV digest).
#[test]
fn cluster_kill_primary_loses_no_acked_write_and_catches_up_by_delta() {
    let tmp = TempDir::new("cluster");
    let ports = free_ports(3);
    let mut toml = String::from("replication = 2\nslots = 8\n");
    for (id, port) in ports.iter().enumerate() {
        toml.push_str(&format!(
            "[[node]]\nid = {id}\naddr = \"127.0.0.1:{port}\"\n"
        ));
    }
    let cluster_file = tmp.0.join("nodes.toml");
    std::fs::write(&cluster_file, &toml).unwrap();
    let cluster_file_s = cluster_file.to_str().unwrap().to_string();
    let data_dirs: Vec<String> = (0..3)
        .map(|i| tmp.0.join(format!("n{i}")).to_str().unwrap().to_string())
        .collect();
    let cfg = ClusterConfig::parse(&toml).expect("cluster file parses");

    let mut servers: Vec<Option<Server>> = (0..3u32)
        .map(|id| {
            Some(spawn_cluster_node(
                &cluster_file_s,
                id,
                &data_dirs[id as usize],
            ))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));

    let mut client = ClusterClient::connect(cfg.clone());
    let mut acked: HashMap<String, String> = HashMap::new();
    let put_acked = |client: &mut ClusterClient, acked: &mut HashMap<String, String>, i: u64| {
        let key = format!("p|u{:03}|{:010}", i % 12, 1000 + i);
        let value = format!("row-{i}");
        client
            .put(key.clone(), value.clone())
            .expect("replicated put");
        acked.insert(key, value);
    };

    // Phase 1: a pre-crash base, fully acknowledged.
    for i in 0..300 {
        put_acked(&mut client, &mut acked, i);
    }

    // Phase 2: SIGKILL node 0 — primary of several slots — then keep
    // the batch going. The client's bounded retry + NotPrimary
    // learning rides out the failover; every put that returns Ok is a
    // write the cluster must never lose.
    if let Some(mut s) = servers[0].take() {
        s.kill();
    }
    for i in 300..600 {
        put_acked(&mut client, &mut acked, i);
    }

    // No acked write lost: every row is readable from the survivors.
    for (key, want) in &acked {
        let got = client.get(key.clone()).expect("get after failover");
        assert_eq!(
            got.as_deref(),
            Some(want.as_bytes()),
            "acked write {key} lost when its primary was killed"
        );
    }
    // Scatter-gathered count sees each row exactly once.
    assert_eq!(
        client.count(KeyRange::prefix("p|")).expect("count"),
        acked.len() as u64
    );

    // Phase 3: warm restart of the killed node on its own data dir.
    // Its WAL holds everything up to the crash, so catch-up needs only
    // the writes it missed — a window delta, never a snapshot.
    servers[0] = Some(spawn_cluster_node(&cluster_file_s, 0, &data_dirs[0]));
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let caught_up = loop {
        std::thread::sleep(Duration::from_millis(300));
        let st = client.status(0).unwrap_or_default();
        if stat_of(&st, "readmissions") > 0 || stat_of(&st, "notifies_applied") > 0 {
            // Readmitted somewhere; give replication a beat to drain.
            std::thread::sleep(Duration::from_millis(800));
            break client.status(0).expect("status after catch-up");
        }
        assert!(
            std::time::Instant::now() < deadline,
            "restarted node never rejoined the cluster"
        );
    };
    assert_eq!(
        stat_of(&caught_up, "snap_chunks_in"),
        0,
        "warm restart should catch up by delta, not re-fetch snapshots"
    );
    assert!(
        stat_of(&caught_up, "notifies_applied") > 0,
        "the missed writes should arrive as replicated notifies"
    );

    // Phase 4: rolling restart — SIGTERM node 1 (graceful: drain,
    // final snapshot, fsync, exit 0), bring it back, keep serving.
    let status = sigterm_and_wait(servers[1].as_mut().expect("node 1 alive"));
    assert!(status.success(), "SIGTERM exit was not graceful: {status}");
    servers[1] = Some(spawn_cluster_node(&cluster_file_s, 1, &data_dirs[1]));
    std::thread::sleep(Duration::from_millis(500));
    for i in 600..650 {
        put_acked(&mut client, &mut acked, i);
    }
    for (key, want) in &acked {
        let got = client.get(key.clone()).expect("get after rolling restart");
        assert_eq!(got.as_deref(), Some(want.as_bytes()));
    }

    // Let replication quiesce, then stop every node gracefully.
    std::thread::sleep(Duration::from_millis(1_500));
    for server in servers.iter_mut().flatten() {
        let status = sigterm_and_wait(server);
        assert!(status.success(), "graceful stop failed: {status}");
    }

    // Phase 5: offline byte-identical audit. Recover each node's
    // durable state through the production replay path, take the
    // highest-epoch membership view per slot, and compare each slot's
    // replicas by row count and FNV digest.
    let engines: Vec<Engine> = data_dirs
        .iter()
        .map(|d| {
            let (engine, _) = reference_from(&[PathBuf::from(d)]);
            engine
        })
        .collect();
    let mut engines = engines;
    let mut audited_slots = 0;
    let mut total_rows = 0;
    for slot in 0..cfg.slots {
        // The authoritative membership is whichever node persisted the
        // highest epoch for this slot.
        let mut best: Option<(u64, Vec<u32>)> = None;
        for e in &mut engines {
            let Some(v) = e.get(&Key::from(format!("#epoch|{slot:02}"))) else {
                continue;
            };
            let text = std::str::from_utf8(&v).expect("meta is ascii").to_string();
            let mut tokens = text.split_whitespace();
            let epoch: u64 = tokens.next().unwrap().parse().unwrap();
            let replicas: Vec<u32> = tokens
                .next()
                .unwrap_or("")
                .split(',')
                .filter_map(|t| t.parse().ok())
                .collect();
            if best.as_ref().is_none_or(|(e0, _)| epoch > *e0) {
                best = Some((epoch, replicas));
            }
        }
        // Slots that never saw an epoch change (no member died or
        // moved) persist nothing and still run the boot-time set.
        let (_, members) = best.unwrap_or((0, cfg.initial_replicas(slot)));
        let slot_rows = |e: &mut Engine| -> Vec<(Key, Value)> {
            e.scan(&KeyRange::prefix("p|"))
                .pairs
                .into_iter()
                .filter(|(k, _)| cfg.slot_of(k) == slot)
                .collect()
        };
        let reference = slot_rows(&mut engines[members[0] as usize]);
        total_rows += reference.len();
        for &m in &members[1..] {
            let pairs = slot_rows(&mut engines[m as usize]);
            assert_eq!(
                pairs.len(),
                reference.len(),
                "slot {slot}: replica row counts differ"
            );
            assert_eq!(
                digest(&pairs),
                digest(&reference),
                "slot {slot}: replicas {members:?} not byte-identical on disk"
            );
        }
        audited_slots += 1;
        // And the durable rows are exactly the acknowledged writes.
        for (k, v) in &reference {
            let key = std::str::from_utf8(k.as_bytes()).unwrap();
            assert_eq!(
                acked.get(key).map(|s| s.as_bytes()),
                Some(&v[..]),
                "slot {slot}: durable row {key} does not match its acked value"
            );
        }
    }
    assert_eq!(audited_slots, cfg.slots);
    assert_eq!(
        total_rows,
        acked.len(),
        "every acked write is durable exactly once"
    );
}
