//! Crash-consistency, the headline test of the `pequod-persist`
//! subsystem: a real `pequod-server --data-dir` process is **SIGKILLed
//! mid-batch** while a TCP client streams writes at it, then restarted
//! on the same directory. The recovered node must answer a conformance
//! script **byte-identically** (count + content digest + full pairs)
//! to a never-crashed reference engine that executed exactly the
//! operations that survived in the log — torn tail records are
//! detected by checksum and dropped, everything before them is served.
//!
//! Runs the matrix the acceptance criteria name: the single-engine and
//! sharded backends, each also with `--mem-limit-mb` set (recovery and
//! eviction compose: a capped recovered node still answers like the
//! uncapped reference). The byte-exhaustive torn-tail sweep lives in
//! `crates/persist/tests/crash_sim.rs`; this file proves the story
//! end-to-end through a real process, a real socket, and a real kill.

use pequod::core::Engine;
use pequod::net::TcpClient;
use pequod::persist::{recover, replay};
use pequod::prelude::*;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command as Proc, Stdio};
use std::time::Duration;

const TIMELINE: &str =
    "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>";

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "pequod-crash-recovery-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Server {
    /// Spawns `pequod-server` on an ephemeral port and waits for its
    /// "listening on" line.
    fn spawn(extra: &[&str]) -> Server {
        let mut child = Proc::new(env!("CARGO_BIN_EXE_pequod-server"))
            .args(["--listen", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn pequod-server");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut reader = BufReader::new(stderr);
        let addr = loop {
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("read server stderr");
            assert!(n > 0, "server exited before listening");
            if let Some(at) = line.find("listening on ") {
                let addr: SocketAddr = line[at + "listening on ".len()..]
                    .trim()
                    .parse()
                    .expect("parse listen address");
                break addr;
            }
        };
        // Keep draining stderr so the child never blocks on the pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            loop {
                sink.clear();
                match reader.read_line(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
        });
        Server { child, addr }
    }

    fn connect(&self) -> TcpClient {
        for _ in 0..50 {
            if let Ok(c) = TcpClient::connect(self.addr) {
                return c;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("cannot connect to {}", self.addr);
    }

    /// SIGKILL — no shutdown handler runs, exactly like a crash.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.kill();
    }
}

fn post_key(poster: u32, t: u64) -> String {
    format!("p|u{poster:03}|{t:010}")
}

/// Rebuilds the surviving history from the data directory (or, for a
/// sharded node, its per-shard subdirectories) into a single reference
/// engine, through the *production* replay path (`persist::replay`):
/// snapshot joins + pairs, then the log tail, in order. Shard
/// directories are disjoint (each shard logs only its authoritative
/// writes), so any shard order rebuilds the same base state; join
/// installation is idempotent, so the broadcast `AddJoin` each shard
/// logged installs once.
fn reference_from(dirs: &[PathBuf]) -> (Engine, usize) {
    let mut reference = Engine::new_default();
    let mut surviving_ops = 0usize;
    for dir in dirs {
        let rec = recover(dir).unwrap_or_else(|e| panic!("recover {}: {e}", dir.display()));
        surviving_ops += rec.pairs.len() + rec.ops.len();
        replay(&mut reference, &rec).unwrap_or_else(|e| panic!("replay {}: {e}", dir.display()));
    }
    (reference, surviving_ops)
}

/// FNV-1a over a pair list: the content digest half of the
/// byte-identical check.
fn digest(pairs: &[(Key, Value)]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut fold = |bytes: &[u8]| {
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0xff;
        h = h.wrapping_mul(PRIME);
    };
    for (k, v) in pairs {
        fold(k.as_bytes());
        fold(v);
    }
    h
}

/// The conformance script, driven over TCP against the recovered node
/// and in-process against the reference: every table whole, per-user
/// timelines (computed — these rebuild lazily on the recovered node),
/// counts, and point reads.
fn conformance(client: &mut TcpClient, reference: &mut Engine, label: &str) {
    for prefix in ["p|", "s|", "t|"] {
        let got = client.scan(KeyRange::prefix(prefix)).unwrap();
        let want = reference.scan(&KeyRange::prefix(prefix)).pairs;
        assert_eq!(
            got.len(),
            want.len(),
            "{label}: scan {prefix} returned a different count"
        );
        assert_eq!(
            digest(&got),
            digest(&want),
            "{label}: scan {prefix} content digest diverged"
        );
        assert_eq!(got, want, "{label}: scan {prefix} pairs diverged");
    }
    for u in 0..8u32 {
        let r = KeyRange::prefix(format!("t|u{u:03}|"));
        assert_eq!(
            client.count(r.clone()).unwrap(),
            reference.count(&r) as u64,
            "{label}: timeline count for u{u:03} diverged"
        );
    }
    let probe = Key::from(post_key(3, 1000));
    assert_eq!(
        client.get(probe.clone()).unwrap(),
        reference.get(&probe),
        "{label}: point read diverged"
    );
}

/// One full crash→recover→conform cycle.
fn crash_and_recover(label: &str, extra_args: &[&str], shard_dirs: usize) {
    let tmp = TempDir::new(label);
    let data_dir = tmp.0.join("data");
    let data_dir_s = data_dir.to_str().unwrap().to_string();
    let mut args = vec!["--data-dir", data_dir_s.as_str(), "--fsync", "every:8"];
    args.extend_from_slice(extra_args);

    // Phase 1: a server accumulates an acknowledged base: the join,
    // a follower graph, and a first wave of posts.
    let mut server = Server::spawn(&args);
    {
        let mut c = server.connect();
        c.add_join(TIMELINE).unwrap();
        for u in 0..8u32 {
            for f in 1..4u32 {
                c.put(format!("s|u{u:03}|u{:03}", (u + f) % 8), "1")
                    .unwrap();
            }
        }
        for poster in 0..8u32 {
            for t in 0..6u64 {
                c.put(post_key(poster, 1000 + t * 7), "warm").unwrap();
            }
        }
        // Read a few timelines so computed ranges exist at crash time —
        // they must be re-derived after recovery, never trusted.
        for u in 0..4u32 {
            let _ = c.count(KeyRange::prefix(format!("t|u{u:03}|"))).unwrap();
        }
    }

    // Phase 2: the kill race. A writer streams a batch of posts and
    // removes; a second thread SIGKILLs the server mid-stream.
    let addr = server.addr;
    let writer = std::thread::spawn(move || {
        let Ok(mut c) = TcpClient::connect(addr) else {
            return 0u32;
        };
        let mut acked = 0u32;
        for i in 0..200_000u64 {
            let poster = (i % 8) as u32;
            let r = if i % 11 == 10 {
                c.remove(post_key(poster, 1000 + (i % 6) * 7))
            } else {
                c.put(post_key(poster, 2000 + i), format!("live-{i}"))
            };
            match r {
                Ok(()) => acked += 1,
                Err(_) => break, // the server died mid-batch
            }
        }
        acked
    });
    std::thread::sleep(Duration::from_millis(120));
    server.kill();
    let acked = writer.join().unwrap();

    // Phase 3: the reference is what the log says survived. Everything
    // the client saw acknowledged must be there (fsync every:8 only
    // matters for power loss; a SIGKILL keeps OS-buffered writes).
    let dirs: Vec<PathBuf> = if shard_dirs <= 1 {
        vec![data_dir.clone()]
    } else {
        (0..shard_dirs)
            .map(|s| data_dir.join(format!("shard-{s}")))
            .collect()
    };
    let (mut reference, surviving) = reference_from(&dirs);
    // Everything phase 1 acknowledged must be in the log: 24 follow
    // edges + 48 posts (the join is counted separately per shard).
    assert!(
        surviving >= 72,
        "{label}: only {surviving} ops survived — the acknowledged phase-1 base is missing"
    );
    assert!(
        acked < 200_000,
        "{label}: the writer finished before the kill; no mid-batch crash happened"
    );

    // Phase 4: restart on the same directory; the recovered node must
    // answer the conformance script byte-identically to the reference.
    let server = Server::spawn(&args);
    let mut c = server.connect();
    conformance(&mut c, &mut reference, label);

    // And it keeps serving: post-recovery writes land on the rebuilt
    // state exactly as they would on the reference.
    c.put(post_key(1, 9000), "after-recovery").unwrap();
    reference.put(post_key(1, 9000), "after-recovery");
    conformance(&mut c, &mut reference, &format!("{label}+write"));
}

#[test]
fn single_engine_recovers_byte_identically_after_midbatch_kill() {
    crash_and_recover("single", &[], 1);
}

#[test]
fn single_engine_with_mem_limit_recovers_byte_identically() {
    crash_and_recover("single-capped", &["--mem-limit-mb", "1"], 1);
}

#[test]
fn sharded_recovers_byte_identically_after_midbatch_kill() {
    crash_and_recover("sharded", &["--shards", "3"], 3);
}

#[test]
fn sharded_with_mem_limit_recovers_byte_identically() {
    crash_and_recover(
        "sharded-capped",
        &["--shards", "3", "--mem-limit-mb", "2"],
        3,
    );
}
