//! Robustness properties spanning crates: the codec never panics on
//! adversarial bytes, the cluster simulator is deterministic, and the
//! join grammar round-trips through its printer.

use pequod::core::{Engine, EngineConfig};
use pequod::join::JoinSpec;
use pequod::net::codec::{decode, decode_frame, encode_frame};
use pequod::net::{Message, ServerId, ServerNode, SimCluster, SimConfig, TablePartition};
use pequod::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// Arbitrary bytes must decode to an error or a message — never
    /// panic, never allocate unboundedly.
    #[test]
    fn codec_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
        let mut buf = bytes::BytesMut::from(&bytes[..]);
        let _ = decode_frame(&mut buf);
    }

    /// Any valid frame survives arbitrary split points in the stream.
    #[test]
    fn codec_frames_survive_fragmentation(split in 1usize..100) {
        let msg = Message::Put {
            id: 9,
            key: Key::from("p|bob|0000000100"),
            value: bytes::Bytes::from_static(b"fragmented"),
        };
        let frame = encode_frame(&msg);
        let split = split.min(frame.len() - 1);
        let mut buf = bytes::BytesMut::new();
        buf.extend_from_slice(&frame[..split]);
        prop_assert!(decode_frame(&mut buf).unwrap().is_none());
        buf.extend_from_slice(&frame[split..]);
        prop_assert_eq!(decode_frame(&mut buf).unwrap(), Some(msg));
    }

    /// Printing a parsed join and reparsing it yields the same structure.
    #[test]
    fn join_grammar_roundtrips(
        maint in prop_oneof![Just(""), Just("pull "), Just("snapshot 17 ")],
        width in prop_oneof![Just(String::new()), Just(":8".to_string())],
    ) {
        let text = format!(
            "out|<a>|<t{width}> = {maint}check src|<a>|<b> copy val|<b>|<t{width}>"
        );
        let first = JoinSpec::parse(&text).unwrap();
        let second = JoinSpec::parse(&first.to_string()).unwrap();
        prop_assert_eq!(first.maintenance, second.maintenance);
        prop_assert_eq!(first.sources.len(), second.sources.len());
        prop_assert_eq!(first.output.text(), second.output.text());
    }
}

/// The simulator is deterministic: same seed, same message interleaving,
/// same traffic accounting.
#[test]
fn simulator_is_deterministic() {
    let run = || {
        let part = Arc::new(TablePartition::new(ServerId(0)));
        let nodes = (0..3)
            .map(|i| {
                ServerNode::new(
                    ServerId(i),
                    Engine::new(EngineConfig::default()),
                    part.clone(),
                    &["p|", "s|"],
                )
            })
            .collect();
        let mut c = SimCluster::new(
            SimConfig {
                notify_jitter_chance: 0.5,
                notify_jitter: 20,
                seed: 0xdead,
                latency: 2,
            },
            nodes,
        );
        c.add_joins_everywhere(
            "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>",
        );
        for u in 0..10 {
            c.put(ServerId(0), format!("s|u{u}|star"), "1");
        }
        c.scan(ServerId(1), KeyRange::prefix("t|u3|"));
        c.scan(ServerId(2), KeyRange::prefix("t|u7|"));
        for t in 0..30u64 {
            c.put(ServerId(0), format!("p|star|{t:010}"), "x");
        }
        c.run_until_quiet();
        let a = c.scan(ServerId(1), KeyRange::prefix("t|u3|"));
        (
            a.len(),
            c.traffic.delivered,
            c.traffic.subscription_bytes,
            c.now(),
        )
    };
    assert_eq!(run(), run());
}

/// Interval-tree-backed maintenance survives a randomized torture mix of
/// joins over shared tables.
#[test]
fn multi_join_torture() {
    let mut e = Engine::new(EngineConfig::default());
    e.add_joins_text(
        r#"
        sum_by_user|<u> = sum ledger|<u>|<txn>;
        max_by_user|<u> = max ledger|<u>|<txn>;
        mirror|<u>|<txn> = copy ledger|<u>|<txn>;
        audited|<u>|<txn> = check flag|<u> copy ledger|<u>|<txn>
        "#,
    )
    .unwrap();
    let mut state = 1u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    for i in 0..600 {
        let u = next() % 5;
        let txn = next() % 40;
        match next() % 5 {
            0 => e.put(format!("flag|{u}"), "1"),
            1 => e.remove(&Key::from(format!("flag|{u}"))),
            2 => e.remove(&Key::from(format!("ledger|{u}|{txn:02}"))),
            _ => e.put(format!("ledger|{u}|{txn:02}"), format!("{}", next() % 100)),
        }
        if i % 37 == 0 {
            e.scan(&KeyRange::all());
        }
    }
    // Audit every view against a fresh recomputation.
    let audit = e.scan(&KeyRange::all());
    let mut fresh = Engine::new(EngineConfig::default());
    fresh
        .add_joins_text(
            r#"
            sum_by_user|<u> = sum ledger|<u>|<txn>;
            max_by_user|<u> = max ledger|<u>|<txn>;
            mirror|<u>|<txn> = copy ledger|<u>|<txn>;
            audited|<u>|<txn> = check flag|<u> copy ledger|<u>|<txn>
            "#,
        )
        .unwrap();
    for (k, v) in &audit.pairs {
        let table = k.table_prefix();
        if matches!(table.as_bytes(), b"ledger|" | b"flag|") {
            fresh.put(k.clone(), v.clone());
        }
    }
    let want = fresh.scan(&KeyRange::all());
    let filter = |pairs: &[(Key, Value)]| -> Vec<(String, String)> {
        pairs
            .iter()
            .filter(|(k, _)| !k.starts_with(b"ledger|") && !k.starts_with(b"flag|"))
            .map(|(k, v)| (k.to_string(), String::from_utf8_lossy(v).into_owned()))
            .collect()
    };
    assert_eq!(filter(&audit.pairs), filter(&want.pairs));
}
