//! Multi-threaded stress tests for `pequod_core::ShardedEngine`:
//! concurrent writer and reader threads, each with its own
//! `ShardedHandle`, hammering all shards at once. Readers observe
//! eventually-consistent intermediate states; once the writers finish,
//! the counts must converge to exactly the expected totals (writes are
//! acknowledged only after their notifications are enqueued, so a
//! query issued after the last ack observes every write).

use pequod::core::partition::ComponentHashPartition;
use pequod::core::{Client, EngineConfig, ShardedEngine};
use pequod::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const TIMELINE: &str =
    "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>";

fn sharded(shards: u32) -> ShardedEngine {
    let part = Arc::new(ComponentHashPartition {
        component: 1,
        servers: shards,
    });
    ShardedEngine::new(
        shards as usize,
        EngineConfig::default(),
        part,
        &["p|", "s|"],
    )
}

/// Concurrent writers on disjoint key sets, readers counting while the
/// writes are in flight: no operation may fail, and the final counts
/// must equal what was written.
#[test]
fn concurrent_writers_and_readers_converge() {
    const WRITERS: usize = 4;
    const POSTS_PER_WRITER: u64 = 120;
    let mut engine = sharded(4);

    let done = Arc::new(AtomicBool::new(false));
    // Readers poll counts of every writer's post table during the run;
    // intermediate values are unconstrained (eventual consistency), but
    // must be monotone per poster since nothing is removed.
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let mut h = engine.client_handle();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut last = [0u64; WRITERS];
                while !done.load(Ordering::Relaxed) {
                    for (w, prev) in last.iter_mut().enumerate() {
                        let n = h.count(&KeyRange::prefix(format!("p|w{w}|")));
                        assert!(n >= *prev, "count went backwards: {n} < {prev}");
                        *prev = n;
                    }
                }
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let mut h = engine.client_handle();
            std::thread::spawn(move || {
                for t in 0..POSTS_PER_WRITER {
                    h.put(
                        &Key::from(format!("p|w{w}|{t:010}")),
                        &Value::from_static(b"post"),
                    );
                }
            })
        })
        .collect();
    for t in writers {
        t.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for t in readers {
        t.join().unwrap();
    }

    let mut h = engine.client_handle();
    for w in 0..WRITERS {
        assert_eq!(
            h.count(&KeyRange::prefix(format!("p|w{w}|"))),
            POSTS_PER_WRITER,
            "writer {w}'s posts did not all land"
        );
    }
    let stats = h.stats();
    assert_eq!(stats.keys, WRITERS as u64 * POSTS_PER_WRITER);

    // Deep invariant sweep (docs/CORRECTNESS.md): every shard's
    // counters and indexes, plus cross-shard subscription symmetry.
    let violations = engine.check_invariants();
    assert!(violations.is_empty(), "invariants violated: {violations:?}");
}

/// Writers post into a live cross-shard join while readers repeatedly
/// materialize and re-validate the joined timelines. After the dust
/// settles the timeline counts must equal the number of posts each
/// followed poster made.
#[test]
fn concurrent_join_maintenance_converges() {
    const POSTERS: usize = 4;
    const POSTS_PER_POSTER: u64 = 60;
    let mut engine = sharded(4);
    {
        let mut h = engine.client_handle();
        h.add_join(TIMELINE).unwrap();
        // Two followers per poster, spread over shards: reader0 follows
        // everyone, reader1 follows the even posters.
        for p in 0..POSTERS {
            h.put(
                &Key::from(format!("s|reader0|w{p}")),
                &Value::from_static(b"1"),
            );
            if p % 2 == 0 {
                h.put(
                    &Key::from(format!("s|reader1|w{p}")),
                    &Value::from_static(b"1"),
                );
            }
        }
    }

    let done = Arc::new(AtomicBool::new(false));
    let pollers: Vec<_> = (0..2)
        .map(|r| {
            let mut h = engine.client_handle();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut last = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let n = h.count(&KeyRange::prefix(format!("t|reader{r}|")));
                    assert!(n >= last, "timeline shrank: {n} < {last}");
                    last = n;
                }
            })
        })
        .collect();

    let writers: Vec<_> = (0..POSTERS)
        .map(|p| {
            let mut h = engine.client_handle();
            std::thread::spawn(move || {
                for t in 0..POSTS_PER_POSTER {
                    h.put(
                        &Key::from(format!("p|w{p}|{t:010}")),
                        &Value::from_static(b"hi"),
                    );
                }
            })
        })
        .collect();
    for t in writers {
        t.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for t in pollers {
        t.join().unwrap();
    }

    let mut h = engine.client_handle();
    assert_eq!(
        h.count(&KeyRange::prefix("t|reader0|")),
        POSTERS as u64 * POSTS_PER_POSTER,
        "reader0 follows everyone"
    );
    assert_eq!(
        h.count(&KeyRange::prefix("t|reader1|")),
        (POSTERS as u64).div_ceil(2) * POSTS_PER_POSTER,
        "reader1 follows the even posters"
    );

    // Deep invariant sweep after a run full of cross-shard
    // subscriptions: materialized timelines, replica residency, and
    // peer-serving symmetry must all agree (docs/CORRECTNESS.md).
    let violations = engine.check_invariants();
    assert!(violations.is_empty(), "invariants violated: {violations:?}");
}
