//! Memory-bounded serving (§2.5): a capped engine holds its footprint
//! at or below the cap through a sustained zipf-skewed Twip load, while
//! answering every read byte-identically to an unbounded engine.
//!
//! The cap is self-calibrated: the workload first runs on an unbounded
//! engine to learn its natural footprint, then re-runs capped at half
//! of it — the acceptance bar of `docs/MEMORY.md`.

use pequod::core::{Engine, EngineConfig, MemoryLimit};
use pequod::prelude::*;
use pequod::workloads::twip::{
    post_key, sub_key, timeline_range, TwipMix, TwipOp, TwipWorkload, TIMELINE_JOIN,
};
use pequod::workloads::{GraphConfig, SocialGraph};

fn skewed_graph() -> SocialGraph {
    // Strong zipf skew: a handful of celebrities with hundreds of
    // followers, so posts fan into many timelines and computed data
    // dominates the footprint.
    SocialGraph::generate(&GraphConfig {
        users: 200,
        avg_followees: 15.0,
        zipf_alpha: 1.2,
        seed: 0x25e,
    })
}

fn workload(graph: &SocialGraph) -> TwipWorkload {
    TwipWorkload::generate(
        graph,
        &TwipMix {
            active_fraction: 0.7,
            checks_per_user: 10,
            seed: 0x5ca1e,
            ..TwipMix::default()
        },
    )
}

/// Drives the whole Twip flow — graph load, initial posts, warm-up
/// logins, op stream — against one engine. Every read's full pair
/// vector is recorded for cross-run comparison, and when `cap_bytes`
/// is set the engine's footprint is asserted at or below it after every
/// single operation (each public op ends with limit maintenance).
fn drive(
    engine: &mut Engine,
    graph: &SocialGraph,
    w: &TwipWorkload,
    cap_bytes: Option<usize>,
) -> Vec<Vec<(Key, Value)>> {
    let check_cap = |e: &Engine, at: &str| {
        if let Some(cap) = cap_bytes {
            let used = e.memory_bytes();
            assert!(
                used <= cap,
                "memory {used} above the cap {cap} after maintenance ({at})"
            );
        }
    };
    engine.add_joins_text(TIMELINE_JOIN).unwrap();
    for u in 0..graph.users() {
        for &p in graph.followees(u) {
            engine.put(sub_key(u, p), "1");
            check_cap(engine, "graph load");
        }
    }
    let mut time = 1u64;
    for i in 0..1200u64 {
        // Deterministic zipf-ish poster choice: celebrity-heavy.
        let poster = (i * i * 7919) as u32 % graph.users();
        engine.put(
            post_key(poster, time, false),
            "an initial tweet of reasonable length!",
        );
        check_cap(engine, "initial posts");
        time += 1;
    }
    let mut reads = Vec::new();
    let mut last_seen = vec![0u64; graph.users() as usize];
    for &u in &w.warm {
        reads.push(engine.scan(&timeline_range(u, 0)).pairs);
        check_cap(engine, "warm-up login");
        last_seen[u as usize] = time;
    }
    for op in &w.ops {
        match *op {
            TwipOp::Login(u) => {
                reads.push(engine.scan(&timeline_range(u, 0)).pairs);
                last_seen[u as usize] = time;
            }
            TwipOp::Check(u) => {
                reads.push(engine.scan(&timeline_range(u, last_seen[u as usize])).pairs);
                last_seen[u as usize] = time;
            }
            TwipOp::Subscribe(u, p) => engine.put(sub_key(u, p), "1"),
            TwipOp::Post(p) => {
                engine.put(
                    post_key(p, time, false),
                    "a brand new tweet, fresh off the press",
                );
                time += 1;
            }
        }
        check_cap(engine, "op stream");
    }
    // Sustained write storm on top: every hot poster fires repeatedly,
    // each post eagerly copied into every follower's materialized
    // timeline — the write path must keep evicting to hold the cap.
    for round in 0..10u64 {
        for poster in 0..20u32 {
            engine.put(
                post_key(poster, time, false),
                format!("storm round {round}"),
            );
            check_cap(engine, "write storm");
            time += 1;
        }
    }
    for &u in w.warm.iter().take(40) {
        reads.push(engine.scan(&timeline_range(u, 0)).pairs);
        check_cap(engine, "final reads");
    }
    reads
}

#[test]
fn capped_engine_stays_under_cap_and_answers_identically() {
    let graph = skewed_graph();
    let w = workload(&graph);

    // Calibration: the unbounded footprint.
    let mut unbounded = Engine::new(EngineConfig::default());
    let want = drive(&mut unbounded, &graph, &w, None);
    let footprint = unbounded.memory_bytes();
    assert_eq!(unbounded.engine_stats().js_evictions, 0);

    // The acceptance bar: a cap at ~50% of the unbounded footprint.
    let limit = MemoryLimit::new(footprint / 2);
    let mut capped = Engine::new(EngineConfig::default().with_mem_limit(limit));
    let got = drive(&mut capped, &graph, &w, Some(limit.high_bytes));

    assert_eq!(
        got.len(),
        want.len(),
        "capped run served a different number of reads"
    );
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g, w, "read #{i} diverged between capped and unbounded");
    }
    let stats = capped.engine_stats();
    assert!(
        stats.js_evictions > 0,
        "a cap at half the footprint must evict computed ranges"
    );
    assert!(
        stats.peak_memory_bytes as usize <= footprint,
        "peak {} cannot exceed the unbounded footprint {footprint}",
        stats.peak_memory_bytes
    );
    assert!(capped.memory_bytes() <= limit.high_bytes);
}

/// The manual eviction API and the automatic one agree: evicting to a
/// target by hand leaves the same transparent-recompute behavior the
/// automatic path relies on.
#[test]
fn manual_and_automatic_eviction_compose() {
    let limit = MemoryLimit::new(64 * 1024);
    let mut engine = Engine::new(EngineConfig::default().with_mem_limit(limit));
    engine.add_joins_text(TIMELINE_JOIN).unwrap();
    for u in 0..50u32 {
        engine.put(format!("s|u{u:07}|u0000001"), "1");
    }
    for t in 0..40u64 {
        engine.put(format!("p|u0000001|{t:010}"), "x");
    }
    let before: Vec<_> = (0..50u32)
        .map(|u| engine.scan(&timeline_range(u, 0)).pairs)
        .collect();
    // Manual eviction below the automatic low watermark.
    engine.evict_to(limit.low_bytes / 2);
    for (u, want) in before.iter().enumerate() {
        let got = engine.scan(&timeline_range(u as u32, 0)).pairs;
        assert_eq!(&got, want, "user {u} diverged after manual eviction");
        assert!(engine.memory_bytes() <= limit.high_bytes);
    }
}
