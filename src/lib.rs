//! **Pequod** — a distributed application-level key-value cache with
//! declaratively defined, incrementally maintained, dynamic, partially
//! materialized views ("cache joins").
//!
//! Rust reproduction of *Easy Freshness with Pequod Cache Joins*
//! (Kate, Kohler, Kester, Narula, Mao, Morris — NSDI 2014).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`store`] — ordered key-value substrate (keys, ranges, tables,
//!   subtables, interval tree, LRU).
//! * [`join`] — the cache-join language: patterns, slots, containing
//!   ranges, the Figure 2 grammar.
//! * [`core`] — the engine: query execution, incremental maintenance,
//!   invalidation, eviction.
//! * [`db`] — backing database substrate with NOTIFY-style
//!   subscriptions and the write-around deployment.
//! * [`net`] — the distributed tier: wire codec, server nodes,
//!   deterministic cluster simulator, TCP transport.
//! * [`workloads`] — Twip and Newp applications and workload
//!   generators.
//! * [`baselines`] — the comparison systems of the paper's Figure 7.
//!
//! ```
//! use pequod::prelude::*;
//!
//! let mut engine = Engine::new_default();
//! engine
//!     .add_join_text(
//!         "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>",
//!     )
//!     .unwrap();
//! engine.put("s|ann|bob", "1");
//! engine.put("p|bob|0000000100", "Hi");
//! let timeline = engine.scan(&KeyRange::prefix("t|ann|"));
//! assert_eq!(timeline.pairs.len(), 1);
//! ```

pub use pequod_baselines as baselines;
pub use pequod_core as core;
pub use pequod_db as db;
pub use pequod_join as join;
pub use pequod_net as net;
pub use pequod_store as store;
pub use pequod_workloads as workloads;

/// The most common imports.
pub mod prelude {
    pub use pequod_core::{Engine, EngineConfig, MaterializationMode, ScanResult};
    pub use pequod_join::{JoinSpec, Maintenance, Operator};
    pub use pequod_store::{Key, KeyRange, Store, StoreConfig, UpperBound, Value};
}
