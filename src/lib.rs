//! **Pequod** — a distributed application-level key-value cache with
//! declaratively defined, incrementally maintained, dynamic, partially
//! materialized views ("cache joins").
//!
//! Rust reproduction of *Easy Freshness with Pequod Cache Joins*
//! (Kate, Kohler, Kester, Narula, Mao, Morris — NSDI 2014).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`store`] — ordered key-value substrate (keys, ranges, tables,
//!   subtables, interval tree, LRU).
//! * [`join`] — the cache-join language: patterns, slots, containing
//!   ranges, the Figure 2 grammar.
//! * [`core`] — the engine: query execution, incremental maintenance,
//!   invalidation, eviction; key-routing partitions and the multi-core
//!   [`ShardedEngine`](crate::core::ShardedEngine).
//! * [`db`] — backing database substrate with NOTIFY-style
//!   subscriptions and the write-around deployment.
//! * [`net`] — the distributed tier: wire codec, server nodes,
//!   deterministic cluster simulator, TCP transport.
//! * [`persist`] — durable base tables: checksummed write-ahead log,
//!   snapshots with log truncation, warm restart
//!   (`pequod-server --data-dir`); computed join ranges are never
//!   persisted — recovery replays base writes and re-derives.
//! * [`telemetry`] — runtime metrics: lock-free counters and latency
//!   histograms behind a no-op-when-disabled recorder, the flight
//!   recorder of recent notable events, and the Prometheus scrape
//!   listener (`pequod-server --metrics-addr`).
//! * [`workloads`] — Twip and Newp applications and workload
//!   generators.
//! * [`baselines`] — the comparison systems of the paper's Figure 7.
//!
//! # One client surface, many backends
//!
//! Every deployment shape implements the batched
//! [`Client`](crate::core::Client) trait — one
//! [`Command`](crate::core::Command)/[`Response`](crate::core::Response)
//! vocabulary over the in-process engine, the write-around deployment,
//! a partitioned cluster, and the baseline stores — so the same code
//! drives any of them:
//!
//! ```
//! use pequod::prelude::*;
//!
//! // Write once against `dyn Client`...
//! fn timeline_demo(client: &mut dyn Client) -> u64 {
//!     client
//!         .add_join(
//!             "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>",
//!         )
//!         .unwrap();
//!     client.execute_batch(vec![
//!         Command::Put(Key::from("s|ann|bob"), Value::from_static(b"1")),
//!         Command::Put(Key::from("p|bob|0000000100"), Value::from_static(b"Hi")),
//!     ]);
//!     // Counts are served server-side: no pairs cross the boundary.
//!     client.count(&KeyRange::prefix("t|ann|"))
//! }
//!
//! // ...run it against an in-process engine...
//! assert_eq!(timeline_demo(&mut Engine::new_default()), 1);
//!
//! // ...or a cache in front of a database, unchanged.
//! let mut wa = pequod::db::WriteAround::new(Engine::new_default(), &["p|", "s|"]);
//! assert_eq!(timeline_demo(&mut wa), 1);
//! ```
//!
//! `pequod::core::ShardedEngine` (N single-threaded engine shards on
//! worker threads, cross-shard joins kept fresh over in-process
//! channels), `pequod::net::ClusterClient` (a partitioned cluster
//! pipelining each batch as one frame per destination server), and the
//! join-less baseline stores in [`baselines`] plug into the same
//! function; see `examples/unified_clients.rs`,
//! `tests/client_conformance.rs`, and `docs/ARCHITECTURE.md`.

// No first-party unsafe: the whole system is safe Rust over the
// vendored deps. `cargo xtask audit` additionally requires a SAFETY
// comment on any future unsafe block an allow here would admit.
#![forbid(unsafe_code)]

pub use pequod_baselines as baselines;
pub use pequod_cluster as cluster;
pub use pequod_core as core;
pub use pequod_db as db;
pub use pequod_join as join;
pub use pequod_net as net;
pub use pequod_persist as persist;
pub use pequod_store as store;
pub use pequod_telemetry as telemetry;
pub use pequod_workloads as workloads;

/// The most common imports.
pub mod prelude {
    pub use pequod_core::{
        BackendStats, Client, Command, Engine, EngineConfig, MaterializationMode, MemoryLimit,
        Response, ScanResult,
    };
    pub use pequod_join::{JoinSpec, Maintenance, Operator};
    pub use pequod_store::{Key, KeyRange, Store, StoreConfig, UpperBound, Value};
}
