//! `pequod-server` — a standalone Pequod cache server over TCP.
//!
//! ```text
//! pequod-server [--listen ADDR] [--join 'SPEC'] [--joins-file PATH]
//!               [--subtable PREFIX:DEPTH] [--mem-limit-mb N]
//!               [--shards N] [--shard-table PREFIX] [--shard-component C]
//!               [--data-dir DIR] [--snapshot-every N]
//!               [--fsync never|always|every:N] [--paranoid]
//!               [--net-model reactor|threads] [--unix-socket PATH]
//!               [--metrics-addr HOST:PORT]
//!               [--cluster nodes.toml --node-id N]
//! ```
//!
//! Speaks the length-prefixed binary protocol of `pequod-net`; use
//! `pequod::net::TcpClient` (or the `tcp_demo` example) as a client.
//!
//! `--net-model` picks the serving front-end: `reactor` (default) is
//! the event-driven epoll front-end with pipelining, bounded write
//! buffers, and slow-client timeouts (see `docs/NETWORKING.md`);
//! `threads` is the legacy blocking thread-per-connection server.
//! `--unix-socket PATH` additionally serves the same protocol on a
//! unix-domain socket (reactor model only).
//!
//! With `--shards N` (N > 1) the node serves a
//! [`pequod::core::ShardedEngine`]: N single-threaded engine shards,
//! keys routed by hashing key component `--shard-component` (default 1,
//! the user/author component), with every `--shard-table` prefix
//! (default `p|` and `s|`) partitioned across shards and kept fresh by
//! in-process subscriptions. Each TCP connection gets its own shard
//! handle, so concurrent clients use every core.
//!
//! `--mem-limit-mb N` serves memory-bounded (§2.5): the node evicts
//! least-recently-used computed ranges (and cached replicas) to keep
//! its estimated footprint under N MiB, transparently recomputing
//! evicted data on the next read. With `--shards` the budget is split
//! evenly across shards. See `docs/MEMORY.md`.
//!
//! `--data-dir DIR` serves **durably**: base writes are captured in a
//! checksummed write-ahead log under DIR (per-shard subdirectories
//! with `--shards`), snapshots compact the log every
//! `--snapshot-every` records (default 65536), and a restart with the
//! same DIR recovers the base tables and re-derives computed ranges on
//! first read. `--fsync` picks the power-loss window (a plain process
//! kill never loses acknowledged writes); see `docs/PERSISTENCE.md`.
//!
//! `--paranoid` turns on deep invariant checking: after every engine
//! operation the node cross-checks its O(1) counters and index
//! structures against full recomputation and aborts on the first
//! disagreement (see `docs/CORRECTNESS.md`). Orders of magnitude
//! slower — a debugging and qualification mode, not a serving mode.
//!
//! `--cluster nodes.toml --node-id N` serves as one member of a
//! **replicated cluster**: base-table slots are kept on a primary plus
//! R−1 followers with streamed writes, epoch-based failover, and live
//! migration (see `docs/REPLICATION.md`). Combine with `--data-dir`
//! for per-node durability; `--listen` overrides this node's address
//! from the cluster file (useful for tests with ephemeral ports).
//!
//! `--metrics-addr HOST:PORT` turns telemetry recording on and serves
//! a Prometheus text scrape at `http://HOST:PORT/metrics` (plus the
//! flight-recorder dump at `/flight`); see `docs/OBSERVABILITY.md`.
//! Without the flag the recorder stays disabled and every hot-path
//! hook is a no-op. The same snapshot is always available on the wire
//! as a `Metrics` frame — that is what `pequod-stats` polls.
//!
//! The server exits cleanly on SIGTERM: it stops accepting
//! connections, drains in-flight requests, takes a final durability
//! snapshot, and fsyncs before exiting — a rolling restart loses
//! nothing even under `--fsync never`.

use pequod::cluster::{ClusterConfig, ClusterServer};
use pequod::core::partition::ComponentHashPartition;
use pequod::core::{Client, Engine, EngineConfig, MemoryLimit, ShardedEngine};
use pequod::persist::{FsyncPolicy, PersistOptions};
use pequod::store::StoreConfig;
use pequod::telemetry::{MetricsServer, Recorder, SnapshotFn};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Set by the SIGTERM handler; the main loop polls it and shuts down
/// gracefully (final WAL fsync + snapshot) when it flips.
static TERMINATED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    // Async-signal-safe: a relaxed store on a static atomic.
    TERMINATED.store(true, Ordering::Relaxed);
}

const SIGTERM: i32 = 15;

extern "C" {
    /// libc `signal(2)`. The only FFI in the tree: installing a
    /// process signal handler has no safe std equivalent.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Parks the main thread until SIGTERM (or forever if the handler
/// cannot be installed and the process is killed instead).
fn wait_for_sigterm() {
    // SAFETY: `on_sigterm` is async-signal-safe (it only stores to a
    // static atomic) and `signal` is the libc prototype with matching
    // ABI; no Rust state is touched from the handler context.
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
    while !TERMINATED.load(Ordering::Relaxed) {
        std::thread::park_timeout(std::time::Duration::from_millis(100));
    }
    eprintln!("pequod-server: SIGTERM, draining and finalizing");
}

fn main() {
    let mut listen = "127.0.0.1:7634".to_string();
    let mut joins: Vec<String> = Vec::new();
    let mut store = StoreConfig::flat();
    let mut mem_limit: Option<MemoryLimit> = None;
    let mut shards: usize = 1;
    let mut shard_tables: Vec<String> = Vec::new();
    let mut shard_component: usize = 1;
    let mut data_dir: Option<PathBuf> = None;
    let mut persist_opts = PersistOptions::default();
    let mut paranoid = false;
    let mut cluster_file: Option<String> = None;
    let mut node_id: Option<u32> = None;
    let mut listen_set = false;
    let mut net_model = "reactor".to_string();
    let mut unix_socket: Option<PathBuf> = None;
    let mut metrics_addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                listen = args.next().expect("--listen needs an address");
                listen_set = true;
            }
            "--join" => joins.push(args.next().expect("--join needs a spec")),
            "--joins-file" => {
                let path = args.next().expect("--joins-file needs a path");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                joins.push(text);
            }
            "--subtable" => {
                let spec = args.next().expect("--subtable needs PREFIX:DEPTH");
                let (prefix, depth) = spec
                    .rsplit_once(':')
                    .expect("--subtable format is PREFIX:DEPTH");
                let depth: usize = depth.parse().expect("subtable depth must be a number");
                store = store.with_subtable(prefix, depth);
            }
            "--mem-limit-mb" => {
                let mb: usize = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--mem-limit-mb needs a positive number of MiB");
                assert!(mb >= 1, "--mem-limit-mb needs a positive number of MiB");
                mem_limit = Some(MemoryLimit::mb(mb));
            }
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--shards needs a positive number");
                assert!(shards >= 1, "--shards needs a positive number");
            }
            "--shard-table" => {
                shard_tables.push(args.next().expect("--shard-table needs a table prefix"));
            }
            "--shard-component" => {
                shard_component = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--shard-component needs a number");
            }
            "--data-dir" => {
                data_dir = Some(PathBuf::from(
                    args.next().expect("--data-dir needs a directory"),
                ));
            }
            "--snapshot-every" => {
                let n: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--snapshot-every needs a positive record count");
                assert!(n >= 1, "--snapshot-every needs a positive record count");
                persist_opts.snapshot_every = Some(n);
            }
            "--fsync" => {
                let policy = args.next().expect("--fsync needs never|always|every:N");
                persist_opts.fsync = FsyncPolicy::parse(&policy)
                    .unwrap_or_else(|| panic!("bad --fsync {policy:?} (never|always|every:N)"));
            }
            "--paranoid" => paranoid = true,
            "--net-model" => {
                net_model = args.next().expect("--net-model needs reactor|threads");
            }
            "--unix-socket" => {
                unix_socket = Some(PathBuf::from(
                    args.next().expect("--unix-socket needs a path"),
                ));
            }
            "--metrics-addr" => {
                metrics_addr = Some(args.next().expect("--metrics-addr needs HOST:PORT"));
            }
            "--cluster" => {
                cluster_file = Some(args.next().expect("--cluster needs a nodes.toml path"));
            }
            "--node-id" => {
                node_id = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--node-id needs a number"),
                );
            }
            "--help" | "-h" => {
                println!(
                    "pequod-server [--listen ADDR] [--join 'SPEC']... \
                     [--joins-file PATH] [--subtable PREFIX:DEPTH]... \
                     [--mem-limit-mb N] \
                     [--shards N] [--shard-table PREFIX]... [--shard-component C] \
                     [--data-dir DIR] [--snapshot-every N] \
                     [--fsync never|always|every:N] [--paranoid] \
                     [--net-model reactor|threads] [--unix-socket PATH] \
                     [--metrics-addr HOST:PORT] \
                     [--cluster nodes.toml --node-id N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let mut config = EngineConfig::with_store(store);
    config.mem_limit = mem_limit;
    if paranoid {
        config.paranoid = true;
        eprintln!("paranoid: deep invariant checking after every operation (slow)");
    }
    if let Some(limit) = mem_limit {
        eprintln!(
            "memory-bounded serving: cap {} MiB{}",
            limit.high_bytes >> 20,
            if shards > 1 {
                format!(" split over {shards} shards")
            } else {
                String::new()
            }
        );
    }
    let install = |client: &mut dyn Client| {
        for text in &joins {
            match client.add_join(text) {
                Ok(()) => eprintln!("installed join(s) from one spec"),
                Err(e) => {
                    eprintln!("bad join: {e}");
                    std::process::exit(2);
                }
            }
        }
    };
    if let Some(dir) = &data_dir {
        eprintln!(
            "durable serving: data dir {} (fsync {}, snapshot every {} records)",
            dir.display(),
            persist_opts.fsync,
            persist_opts
                .snapshot_every
                .map_or("never".to_string(), |n| n.to_string()),
        );
    }
    if let Some(path) = &cluster_file {
        let id = node_id.expect("--cluster requires --node-id");
        assert!(
            shards == 1,
            "--cluster serves one engine per node (drop --shards; run more nodes instead)"
        );
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read cluster file {path}: {e}"));
        let cluster_cfg =
            ClusterConfig::parse(&text).unwrap_or_else(|e| panic!("bad cluster file {path}: {e}"));
        let mut engine = Engine::new(config);
        if metrics_addr.is_some() {
            // Before `attach` so the persister clones an enabled
            // recorder and WAL latency is captured from record one.
            engine.set_recorder(Recorder::enabled());
        }
        if let Some(dir) = &data_dir {
            let report = pequod::persist::attach(&mut engine, dir, persist_opts)
                .unwrap_or_else(|e| panic!("cannot recover {}: {e}", dir.display()));
            eprintln!(
                "recovered generation {}: {} snapshot pairs + {} logged records",
                report.generation, report.snapshot_pairs, report.wal_records,
            );
        }
        install(&mut engine);
        eprintln!(
            "replicated cluster node {id} of {} (replication {}, {} slots)",
            cluster_cfg.nodes.len(),
            cluster_cfg.replication,
            cluster_cfg.slots,
        );
        let addr_override = if listen_set {
            Some(listen.as_str())
        } else {
            None
        };
        let mut server = ClusterServer::spawn(cluster_cfg, id, engine, addr_override)
            .unwrap_or_else(|e| panic!("cannot serve cluster node {id}: {e}"));
        let metrics = metrics_addr.as_deref().map(|addr| {
            let ms = MetricsServer::spawn(addr, server.telemetry())
                .unwrap_or_else(|e| panic!("cannot serve metrics on {addr}: {e}"));
            eprintln!("telemetry: scrape http://{}/metrics", ms.local_addr());
            ms
        });
        eprintln!("pequod-server listening on {}", server.addr());
        wait_for_sigterm();
        server.halt();
        if let Some(ms) = metrics {
            ms.stop();
        }
        return;
    }
    let reactor_model = match net_model.as_str() {
        "reactor" => true,
        "threads" => false,
        other => {
            eprintln!("unknown --net-model {other:?} (reactor|threads)");
            std::process::exit(2);
        }
    };
    if unix_socket.is_some() && !reactor_model {
        eprintln!("--unix-socket requires --net-model reactor");
        std::process::exit(2);
    }
    let frontend_cfg = pequod::net::FrontendConfig {
        unix_path: unix_socket.clone(),
        ..Default::default()
    };
    let server = if shards > 1 {
        if shard_tables.is_empty() {
            shard_tables = vec!["p|".to_string(), "s|".to_string()];
        }
        let tables: Vec<&str> = shard_tables.iter().map(|s| s.as_str()).collect();
        let partition = Arc::new(ComponentHashPartition {
            component: shard_component,
            servers: shards as u32,
        });
        // With telemetry on, every shard gets its own recorder (no
        // cross-shard contention); snapshots merge them on demand.
        let recorders: Vec<Recorder> = if metrics_addr.is_some() {
            (0..shards).map(|_| Recorder::enabled()).collect()
        } else {
            Vec::new()
        };
        let mut sharded = match &data_dir {
            Some(dir) => pequod::persist::open_sharded(
                shards,
                config,
                partition,
                &tables,
                dir,
                persist_opts,
                &recorders,
            )
            .unwrap_or_else(|e| panic!("cannot recover shards: {e}")),
            None if recorders.is_empty() => ShardedEngine::new(shards, config, partition, &tables),
            None => {
                let per_shard = recorders.clone();
                let mut built = ShardedEngine::new_with_setup(
                    shards,
                    config,
                    partition,
                    &tables,
                    move |shard, engine| {
                        if let Some(r) = per_shard.get(shard) {
                            engine.set_recorder(r.clone());
                        }
                        Ok(())
                    },
                )
                .unwrap_or_else(|e| panic!("cannot start shards: {e}"));
                built.set_recorders(recorders.clone());
                built
            }
        };
        install(&mut sharded);
        eprintln!(
            "serving {shards} shards (tables {shard_tables:?} hashed on component {shard_component})"
        );
        if reactor_model {
            pequod::net::FrontendServer::spawn_sharded(&*listen, sharded, frontend_cfg)
                .map(FrontServer::Reactor)
        } else {
            pequod::net::TcpServer::spawn_sharded(&*listen, sharded).map(FrontServer::Threads)
        }
    } else {
        let mut engine = Engine::new(config);
        if metrics_addr.is_some() {
            // Before `attach` so the persister clones an enabled
            // recorder and WAL latency is captured from record one.
            engine.set_recorder(Recorder::enabled());
        }
        if let Some(dir) = &data_dir {
            let report = pequod::persist::attach(&mut engine, dir, persist_opts)
                .unwrap_or_else(|e| panic!("cannot recover {}: {e}", dir.display()));
            eprintln!(
                "recovered generation {}: {} joins, {} snapshot pairs + {} logged records \
                 ({} torn bytes dropped)",
                report.generation,
                report.joins,
                report.snapshot_pairs,
                report.wal_records,
                report.bytes_dropped,
            );
            if let Some(corruption) = &report.corruption {
                eprintln!(
                    "WARNING: log corruption (not a clean crash tail) — {corruption}; \
                     the damaged log was preserved as wal-*.log.corrupt for salvage"
                );
            }
        }
        install(&mut engine);
        if reactor_model {
            pequod::net::FrontendServer::spawn(&*listen, engine, frontend_cfg)
                .map(FrontServer::Reactor)
        } else {
            pequod::net::TcpServer::spawn(&*listen, engine).map(FrontServer::Threads)
        }
    }
    .unwrap_or_else(|e| panic!("cannot listen on {listen}: {e}"));
    let mut server = server;
    eprintln!(
        "serving with the {net_model} network model{}",
        match &unix_socket {
            Some(p) => format!(", unix socket {}", p.display()),
            None => String::new(),
        }
    );
    let metrics = metrics_addr.as_deref().map(|addr| {
        let ms = MetricsServer::spawn(addr, server.telemetry())
            .unwrap_or_else(|e| panic!("cannot serve metrics on {addr}: {e}"));
        eprintln!("telemetry: scrape http://{}/metrics", ms.local_addr());
        ms
    });
    // Tests parse the address off this line: keep it the tail.
    eprintln!("pequod-server listening on {}", server.addr());
    // Serve until SIGTERM, then drain and finalize durability so a
    // rolling restart loses nothing.
    wait_for_sigterm();
    server.shutdown_finalize();
    if let Some(ms) = metrics {
        ms.stop();
    }
}

/// Either serving front-end behind one shutdown surface.
enum FrontServer {
    /// Legacy blocking thread-per-connection server.
    Threads(pequod::net::TcpServer),
    /// Event-driven epoll front-end.
    Reactor(pequod::net::FrontendServer),
}

impl FrontServer {
    fn addr(&self) -> std::net::SocketAddr {
        match self {
            FrontServer::Threads(s) => s.addr(),
            FrontServer::Reactor(s) => s.addr(),
        }
    }

    fn shutdown_finalize(&mut self) {
        match self {
            FrontServer::Threads(s) => s.shutdown_finalize(),
            FrontServer::Reactor(s) => s.shutdown_finalize(),
        }
    }

    /// A snapshot provider for the metrics listener. The reactor hands
    /// out its own (backend recorder plus front-end counters); the
    /// threads model snapshots the backend recorder(s) directly.
    fn telemetry(&self) -> SnapshotFn {
        match self {
            FrontServer::Reactor(s) => s.telemetry(),
            FrontServer::Threads(s) => {
                if let Some(sharded) = s.sharded() {
                    return Arc::new(move |flight| sharded.telemetry_snapshot(flight));
                }
                let recorder = s
                    .engine()
                    .map(|e| {
                        e.lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .recorder()
                            .clone()
                    })
                    .unwrap_or_default();
                Arc::new(move |flight| recorder.snapshot(flight))
            }
        }
    }
}
