//! `pequod-server` — a standalone Pequod cache server over TCP.
//!
//! ```text
//! pequod-server [--listen ADDR] [--join 'SPEC'] [--joins-file PATH]
//!               [--subtable PREFIX:DEPTH]
//! ```
//!
//! Speaks the length-prefixed binary protocol of `pequod-net`; use
//! `pequod::net::TcpClient` (or the `tcp_demo` example) as a client.

use pequod::core::{Engine, EngineConfig};
use pequod::store::StoreConfig;

fn main() {
    let mut listen = "127.0.0.1:7634".to_string();
    let mut joins: Vec<String> = Vec::new();
    let mut store = StoreConfig::flat();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().expect("--listen needs an address"),
            "--join" => joins.push(args.next().expect("--join needs a spec")),
            "--joins-file" => {
                let path = args.next().expect("--joins-file needs a path");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                joins.push(text);
            }
            "--subtable" => {
                let spec = args.next().expect("--subtable needs PREFIX:DEPTH");
                let (prefix, depth) = spec
                    .rsplit_once(':')
                    .expect("--subtable format is PREFIX:DEPTH");
                let depth: usize = depth.parse().expect("subtable depth must be a number");
                store = store.with_subtable(prefix, depth);
            }
            "--help" | "-h" => {
                println!(
                    "pequod-server [--listen ADDR] [--join 'SPEC']... \
                     [--joins-file PATH] [--subtable PREFIX:DEPTH]..."
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let mut engine = Engine::new(EngineConfig::with_store(store));
    for text in &joins {
        match engine.add_joins_text(text) {
            Ok(ids) => eprintln!("installed {} join(s)", ids.len()),
            Err(e) => {
                eprintln!("bad join: {e}");
                std::process::exit(2);
            }
        }
    }
    let server = pequod::net::TcpServer::spawn(&*listen, engine)
        .unwrap_or_else(|e| panic!("cannot listen on {listen}: {e}"));
    eprintln!("pequod-server listening on {}", server.addr());
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
