//! `pequod-stats` — live telemetry for a running Pequod server.
//!
//! ```text
//! pequod-stats [--addr HOST:PORT] [--interval SECS] [--count N]
//!              [--json] [--flight]
//! ```
//!
//! Polls the server's `Metrics` wire frame — the same snapshot the
//! `--metrics-addr` Prometheus scrape renders — and redraws a terminal
//! table: scalar counters and gauges with per-interval rates, and one
//! row per latency histogram (count, rate, p50/p90/p99/max in µs).
//! Works against every serving surface: the reactor front-end, the
//! legacy threads model, and a replicated cluster node.
//!
//! `--json` prints one snapshot as a JSON object and exits; `--flight`
//! dumps the server's flight recorder (recent evictions, failovers,
//! slow closes, backpressure trips) and exits. Both repeat on the
//! poll interval when `--count N` asks for more than one. The default
//! live table refreshes until the process is interrupted (or `--count`
//! polls have been drawn).
//!
//! Rates are computed client-side from the difference between
//! consecutive polls divided by the configured `--interval` — the
//! tool never needs a wall clock.

use pequod::net::TcpClient;
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn main() {
    let mut addr = "127.0.0.1:7634".to_string();
    let mut interval_secs: f64 = 2.0;
    let mut count: Option<u64> = None;
    let mut json = false;
    let mut flight = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().expect("--addr needs HOST:PORT"),
            "--interval" => {
                interval_secs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--interval needs seconds (e.g. 2 or 0.5)");
                assert!(interval_secs > 0.0, "--interval must be positive");
            }
            "--count" => {
                count = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--count needs a positive number"),
                );
            }
            "--json" => json = true,
            "--flight" => flight = true,
            "--help" | "-h" => {
                println!(
                    "pequod-stats [--addr HOST:PORT] [--interval SECS] [--count N] \
                     [--json] [--flight]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    // One-shot by default for the machine-readable modes; the live
    // table refreshes until interrupted.
    let polls = count.unwrap_or(if json || flight { 1 } else { u64::MAX });
    let mut client = TcpClient::connect(&*addr).unwrap_or_else(|e| {
        eprintln!("pequod-stats: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let mut prev: BTreeMap<String, f64> = BTreeMap::new();
    let mut poll = 0u64;
    while poll < polls {
        if poll > 0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(interval_secs));
        }
        poll += 1;
        let pairs = match client.metrics(flight) {
            Ok(pairs) => pairs,
            Err(e) => {
                eprintln!("pequod-stats: {addr}: {e}");
                std::process::exit(1);
            }
        };
        if flight && !json {
            print_flight(&pairs);
        } else if json {
            println!("{}", render_json(&pairs));
        } else {
            let frame = render_table(&addr, poll, interval_secs, &pairs, &prev);
            // Home the cursor and clear the screen: a full redraw.
            print!("\x1b[H\x1b[2J{frame}");
        }
        prev = pairs
            .iter()
            .filter_map(|(k, v)| v.parse::<f64>().ok().map(|n| (k.clone(), n)))
            .collect();
    }
}

/// The flight-recorder dump: `f|<seq>` pairs in sequence order, one
/// rendered event line each.
fn print_flight(pairs: &[(String, String)]) {
    let mut events: Vec<(u64, &str)> = pairs
        .iter()
        .filter_map(|(k, v)| {
            k.strip_prefix("f|")
                .and_then(|seq| seq.parse().ok())
                .map(|seq| (seq, v.as_str()))
        })
        .collect();
    events.sort_by_key(|(seq, _)| *seq);
    if events.is_empty() {
        println!("(flight recorder empty)");
        return;
    }
    for (_, line) in events {
        println!("{line}");
    }
}

/// One snapshot as a JSON object: numeric values stay numbers, flight
/// lines and anything non-numeric become strings. Keys sort
/// lexicographically so diffs between polls are stable.
fn render_json(pairs: &[(String, String)]) -> String {
    let sorted: BTreeMap<&str, &str> = pairs
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    let mut out = String::from("{\n");
    for (i, (k, v)) in sorted.iter().enumerate() {
        let comma = if i + 1 < sorted.len() { "," } else { "" };
        if is_plain_number(v) {
            let _ = writeln!(out, "  {}: {v}{comma}", json_string(k));
        } else {
            let _ = writeln!(out, "  {}: {}{comma}", json_string(k), json_string(v));
        }
    }
    out.push('}');
    out
}

/// Whether `v` round-trips as a JSON number (decimal integer or float;
/// rejects NaN/inf and anything with stray characters).
fn is_plain_number(v: &str) -> bool {
    v.parse::<f64>().map(|n| n.is_finite()).unwrap_or(false)
        && v.bytes()
            .all(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Histogram sub-keys (`name.count`, `name.p50`, ...) folded back into
/// one row per histogram.
#[derive(Default)]
struct HistRow {
    count: f64,
    p50: String,
    p90: String,
    p99: String,
    max: String,
}

/// The live table frame: scalars with rates, then latency rows.
fn render_table(
    addr: &str,
    poll: u64,
    interval_secs: f64,
    pairs: &[(String, String)],
    prev: &BTreeMap<String, f64>,
) -> String {
    let mut scalars: BTreeMap<&str, f64> = BTreeMap::new();
    let mut hists: BTreeMap<String, HistRow> = BTreeMap::new();
    for (k, v) in pairs {
        if k.starts_with("f|") {
            continue;
        }
        if let Some((base, stat)) = k.rsplit_once('.') {
            if matches!(stat, "count" | "sum" | "p50" | "p90" | "p99" | "max") {
                let row = hists.entry(base.to_string()).or_default();
                match stat {
                    "count" => row.count = v.parse().unwrap_or(0.0),
                    "p50" => row.p50 = v.clone(),
                    "p90" => row.p90 = v.clone(),
                    "p99" => row.p99 = v.clone(),
                    "max" => row.max = v.clone(),
                    _ => {}
                }
                continue;
            }
        }
        if let Ok(n) = v.parse::<f64>() {
            scalars.insert(k, n);
        }
    }
    let name_w = scalars
        .keys()
        .map(|k| k.len())
        .chain(hists.keys().map(|k| k.len()))
        .max()
        .unwrap_or(20)
        .max(20);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "pequod-stats — {addr} — poll {poll} (interval {interval_secs}s)\n"
    );
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>14}  {:>12}",
        "METRIC", "VALUE", "RATE/s"
    );
    for (k, v) in &scalars {
        // Rates only for cumulative series (the base name before any
        // `{labels}` ends in `_total`); gauges just show their value.
        let base = k.split('{').next().unwrap_or(k);
        let rate = prev
            .get(*k)
            .map(|p| (v - p) / interval_secs)
            .filter(|r| poll > 1 && *r >= 0.0 && base.ends_with("_total"))
            .map(|r| format!("{r:.1}"))
            .unwrap_or_default();
        let _ = writeln!(out, "{k:<name_w$}  {:>14}  {rate:>12}", fmt_num(*v));
    }
    if !hists.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<name_w$}  {:>14}  {:>12}  {:>7}  {:>7}  {:>7}  {:>9}",
            "LATENCY (µs)", "COUNT", "RATE/s", "P50", "P90", "P99", "MAX"
        );
        for (k, h) in &hists {
            let rate = prev
                .get(&format!("{k}.count"))
                .map(|p| (h.count - p) / interval_secs)
                .filter(|r| poll > 1 && *r >= 0.0)
                .map(|r| format!("{r:.1}"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{k:<name_w$}  {:>14}  {rate:>12}  {:>7}  {:>7}  {:>7}  {:>9}",
                fmt_num(h.count),
                h.p50,
                h.p90,
                h.p99,
                h.max,
            );
        }
    }
    out
}

/// Integers render without a decimal point; everything else with one.
fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n:.1}")
    }
}
