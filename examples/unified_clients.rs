//! One command script, every backend.
//!
//! Demonstrates the unified client API: the same `Vec<Command>` runs
//! against the in-process engine, a write-around deployment (cache in
//! front of a database), a partitioned two-server cluster, and the
//! three baseline stores — and the KV answers agree everywhere, while
//! only the join-capable Pequod backends accept the timeline join.
//!
//! ```sh
//! cargo run --example unified_clients
//! ```

use pequod::baselines::{MemcachedClient, MiniDbClient, RedisClient};
use pequod::db::WriteAround;
use pequod::net::{ClusterClient, ServerId, ServerNode, SimCluster, SimConfig, TablePartition};
use pequod::prelude::*;
use std::sync::Arc;

const TIMELINE: &str =
    "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>";

fn backends() -> Vec<Box<dyn Client>> {
    let part = Arc::new(TablePartition::new(ServerId(0)).route("p|", ServerId(1)));
    let nodes = (0..2)
        .map(|i| {
            ServerNode::new(
                ServerId(i),
                Engine::new_default(),
                part.clone(),
                &["p|", "s|", "t|"],
            )
        })
        .collect();
    vec![
        Box::new(Engine::new_default()),
        Box::new(WriteAround::new(Engine::new_default(), &["p|", "s|"])),
        Box::new(ClusterClient::new(
            SimCluster::new(SimConfig::default(), nodes),
            part,
        )),
        Box::new(RedisClient::new()),
        Box::new(MemcachedClient::new()),
        Box::new(MiniDbClient::new()),
    ]
}

fn main() {
    let script = vec![
        Command::Put(Key::from("s|ann|bob"), Value::from_static(b"1")),
        Command::Put(Key::from("p|bob|0000000100"), Value::from_static(b"Hi")),
        Command::Put(Key::from("p|bob|0000000120"), Value::from_static(b"again")),
        Command::Count(KeyRange::prefix("p|bob|")),
        Command::Get(Key::from("p|bob|0000000100")),
    ];
    println!("script: {} commands, batched\n", script.len());
    for mut client in backends() {
        let name = client.backend_name();
        // The join only installs on Pequod-family backends; the rest
        // answer with an explicit error and keep serving KV traffic.
        let joins = match client.add_join(TIMELINE) {
            Ok(()) => "cache joins".to_string(),
            Err(_) => "no joins (client-side fan-out)".to_string(),
        };
        let responses = client.execute_batch(script.clone());
        let count = match &responses[3] {
            Response::Count(n) => *n,
            other => panic!("unexpected response {other:?}"),
        };
        let timeline = client.count(&KeyRange::prefix("t|ann|"));
        println!(
            "{name:<12} {joins:<32} posts by bob: {count}, ann's timeline entries: {timeline}"
        );
    }
    println!("\nevery backend agrees on the KV answers; only join-capable ones computed t|ann|.");
}
