//! Quickstart: install a cache join, write base data, read computed
//! data, and watch incremental maintenance keep it fresh.
//!
//! Run with `cargo run --example quickstart`.

use pequod::prelude::*;

fn show(engine: &mut Engine, label: &str) {
    println!("-- {label}");
    for (k, v) in engine.scan(&KeyRange::prefix("t|ann|")).pairs {
        println!("   {k} = {}", String::from_utf8_lossy(&v));
    }
}

fn main() {
    let mut engine = Engine::new_default();

    // The Twip timeline join (paper §2.2): ann's timeline is a copy of
    // every post by users ann follows, keyed so one ordered scan returns
    // it time-sorted.
    engine
        .add_join_text(
            "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>",
        )
        .unwrap();

    // Base data: subscriptions and posts.
    engine.put("s|ann|bob", "1");
    engine.put("s|ann|liz", "1");
    engine.put("p|bob|0000000100", "Hi");
    engine.put("p|liz|0000000124", "hello, world!");

    // First read computes the timeline on demand and materializes it.
    show(&mut engine, "after first read (computed on demand)");

    // Later posts are pushed into the materialized timeline eagerly...
    engine.put("p|bob|0000000150", "eagerly maintained");
    show(&mut engine, "after bob posts again (incremental update)");

    // ...subscriptions maintain it too (lazily, applied at next read)...
    engine.put("s|ann|zed", "1");
    engine.put("p|zed|0000000090", "backfilled from before the follow");
    show(&mut engine, "after following zed (lazy backfill)");

    // ...and removals propagate.
    engine.remove(&Key::from("p|bob|0000000100"));
    show(&mut engine, "after bob deletes his first tweet");

    println!(
        "\nengine stats: {} store keys, {} materialized ranges, {} updater entries",
        engine.store_stats().keys,
        engine.materialized_ranges(),
        engine.updater_entries()
    );
}
