//! Twip: the paper's Twitter-like application, including celebrity
//! handling (§2.3) — celebrities' posts are kept in one shared range
//! and merged into timelines on demand by a pull join, saving the
//! memory of copying them into millions of follower timelines.
//!
//! Run with `cargo run --example twip_timelines`.

use pequod::core::{Engine, EngineConfig};
use pequod::workloads::graph::{GraphConfig, SocialGraph};
use pequod::workloads::twip::{run_twip, PequodTwip, TwipMix, TwipWorkload};

fn main() {
    // A small synthetic social graph with celebrity skew.
    let graph = SocialGraph::generate(&GraphConfig {
        users: 1000,
        avg_followees: 20.0,
        zipf_alpha: 1.2,
        seed: 42,
    });
    let celebs = graph.celebrities(5);
    println!(
        "graph: {} users, {} edges; top celebrity has {} followers",
        graph.users(),
        graph.edges(),
        graph.follower_count(celebs[0])
    );

    let mix = TwipMix {
        active_fraction: 0.6,
        checks_per_user: 10,
        ..TwipMix::default()
    };
    let workload = TwipWorkload::generate(&graph, &mix);

    // Plain configuration: every post copied to every follower.
    let mut plain = PequodTwip::new(Engine::new(EngineConfig::default()));
    plain.set_rpc_cost(0, 0);
    let plain_stats = run_twip(&mut plain, &graph, &workload, 2000);

    // Celebrity configuration: the top users' posts go through the
    // shared ct| range instead.
    let mut celeb = PequodTwip::with_celebrities(Engine::new(EngineConfig::default()), celebs);
    celeb.set_rpc_cost(0, 0);
    let celeb_stats = run_twip(&mut celeb, &graph, &workload, 2000);

    println!("\n              plain        celebrity-join");
    println!(
        "runtime       {:>8.2}s    {:>8.2}s",
        plain_stats.elapsed, celeb_stats.elapsed
    );
    println!(
        "memory        {:>8.1}MiB  {:>8.1}MiB",
        plain_stats.memory_bytes as f64 / (1 << 20) as f64,
        celeb_stats.memory_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "entries read  {:>8}     {:>8}",
        plain_stats.entries_returned, celeb_stats.entries_returned
    );
    assert_eq!(plain_stats.entries_returned, celeb_stats.entries_returned);
    println!(
        "\nsame timelines delivered; celebrity join trades a little read
computation for not storing celebrity tweets once per follower (§2.3)."
    );
}
