//! Three-node replicated cluster demo: parse a nodes.toml, write
//! through the cluster client, read back, print a node's status.
//!
//! Run the nodes first (or see docs/REPLICATION.md), then:
//! `cargo run --example cluster_demo -- nodes.toml`

use pequod::cluster::{ClusterClient, ClusterConfig};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "nodes.toml".into());
    let text = std::fs::read_to_string(&path).expect("read cluster file");
    let cfg = ClusterConfig::parse(&text).expect("parse cluster file");
    let mut client = ClusterClient::connect(cfg);
    for i in 0..10u32 {
        client
            .put(format!("p|u{i:02}|post"), format!("hello-{i}"))
            .expect("replicated put");
    }
    for i in 0..10u32 {
        let v = client.get(format!("p|u{i:02}|post")).expect("get");
        println!(
            "p|u{i:02}|post = {:?}",
            v.map(|b| String::from_utf8_lossy(&b).into_owned())
        );
    }
    for (k, v) in client.status(0).expect("status") {
        println!(
            "{} = {}",
            String::from_utf8_lossy(k.as_bytes()),
            String::from_utf8_lossy(&v)
        );
    }
}
