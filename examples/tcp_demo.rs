//! A real Pequod server over TCP: length-prefixed binary frames on a
//! loopback socket, one engine behind the listener, joins installed
//! over the wire.
//!
//! Run with `cargo run --example tcp_demo`.

use pequod::core::Engine;
use pequod::net::{TcpClient, TcpServer};
use pequod::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = TcpServer::spawn("127.0.0.1:0", Engine::new_default())?;
    println!("pequod server listening on {}", server.addr());

    let mut client = TcpClient::connect(server.addr())?;
    client.add_join(
        "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>",
    )?;
    client.put("s|ann|bob", "1")?;
    client.put("p|bob|0000000100", "Hi over TCP")?;

    let timeline = client.scan(KeyRange::prefix("t|ann|"))?;
    for (k, v) in &timeline {
        println!("  {k} = {}", String::from_utf8_lossy(v));
    }
    assert_eq!(timeline.len(), 1);

    // A second client sees the same cache.
    let mut other = TcpClient::connect(server.addr())?;
    let v = other.get("t|ann|0000000100|bob")?;
    println!(
        "second connection read: {:?}",
        v.map(|v| String::from_utf8_lossy(&v).into_owned())
    );
    Ok(())
}
