//! Distributed Pequod (§2.4) on the deterministic cluster simulator:
//! base data lives on a home server; a compute server executes the
//! timeline join, subscribing to the base ranges it needs; updates at
//! the home flow to the replica as notifications.
//!
//! Run with `cargo run --example distributed`.

use pequod::core::{Engine, EngineConfig};
use pequod::net::{Message, ServerId, ServerNode, SimCluster, SimConfig, TablePartition};
use pequod::prelude::*;
use std::sync::Arc;

const TIMELINE: &str =
    "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>";

fn main() {
    // Server 0 is home for all base tables; server 1 computes timelines.
    let part = Arc::new(TablePartition::new(ServerId(0)));
    let nodes = vec![
        ServerNode::new(
            ServerId(0),
            Engine::new(EngineConfig::default()),
            part.clone(),
            &["p|", "s|"],
        ),
        ServerNode::new(
            ServerId(1),
            Engine::new(EngineConfig::default()),
            part,
            &["p|", "s|"],
        ),
    ];
    let mut cluster = SimCluster::new(SimConfig::default(), nodes);
    cluster.add_joins_everywhere(TIMELINE);

    // Writes go to the home server.
    cluster.put(ServerId(0), "s|ann|bob", "1");
    cluster.put(ServerId(0), "p|bob|0000000100", "Hi");

    // The first timeline read on the compute server fetches and
    // subscribes to ann's subscriptions and bob's posts.
    let tl = cluster.scan(ServerId(1), KeyRange::prefix("t|ann|"));
    println!("first read from compute server: {} entries", tl.len());
    println!(
        "home server granted {} subscriptions",
        cluster.node(ServerId(0)).subscriber_count()
    );

    // A new post written at home propagates via Notify — no refetch.
    cluster.put(ServerId(0), "p|bob|0000000150", "pushed to the replica");
    let tl = cluster.scan(ServerId(1), KeyRange::prefix("t|ann|"));
    println!("after home-server write: {} entries", tl.len());
    for (k, v) in &tl {
        println!("  {k} = {}", String::from_utf8_lossy(v));
    }
    assert_eq!(tl.len(), 2);
    println!(
        "traffic: {} client bytes, {} subscription bytes over {} messages",
        cluster.traffic.client_bytes, cluster.traffic.subscription_bytes, cluster.traffic.delivered
    );
    // Demonstrate the request API directly too.
    cluster.request(
        7,
        ServerId(1),
        Message::Get {
            id: 1,
            key: Key::from("t|ann|0000000150|bob"),
        },
    );
    cluster.run_until_quiet();
    let replies = cluster.take_replies();
    println!("async reply to client 7: {:?}", replies[0].1.id());
}
