//! Newp: the Hacker News-like aggregator of Figure 1. Interleaved cache
//! joins collate an article, its vote rank, its comments, and each
//! commenter's karma into one contiguous `page|` range so rendering an
//! article is a single scan.
//!
//! Run with `cargo run --example newp_pages`.

use pequod::core::Engine;
use pequod::prelude::*;
use pequod::workloads::newp::{NewpBackend, PequodNewp};

fn main() {
    let mut site = PequodNewp::new(Engine::new(EngineConfig::default()), true);

    // kat authors an article; people vote and comment.
    site.load(
        "article|n000007|0000001".into(),
        "Cache joins considered delightful",
    );
    site.vote(7, 1, 21);
    site.vote(7, 1, 22);
    site.comment(7, 1, 1, 42, "great read!");
    // commenter 42's karma comes from votes on their own article
    site.load("article|n000042|0000009".into(), "An older post");
    site.vote(42, 9, 7);
    site.vote(42, 9, 21);
    site.vote(42, 9, 22);

    // One ordered scan renders the whole page.
    let page = site.engine.scan(&KeyRange::prefix("page|n000007|0000001|"));
    println!("page|n000007|0000001| scan:");
    for (k, v) in &page.pairs {
        println!("  {k} = {}", String::from_utf8_lossy(v));
    }
    // |a article, |c comment, |k commenter karma, |r rank
    assert_eq!(page.pairs.len(), 4);

    // A new vote updates the rank *inside the page* incrementally.
    site.vote(7, 1, 23);
    let rank = site
        .engine
        .get(&Key::from("page|n000007|0000001|r"))
        .unwrap();
    println!(
        "\nafter one more vote, rank = {}",
        String::from_utf8_lossy(&rank)
    );
    assert_eq!(&rank[..], b"3");

    // And a vote on the commenter's own article updates their karma in
    // every page where they commented.
    site.vote(42, 9, 23);
    let karma = site
        .engine
        .get(&Key::from("page|n000007|0000001|k|000001|n000042"))
        .unwrap();
    println!(
        "commenter karma on the page = {}",
        String::from_utf8_lossy(&karma)
    );
    assert_eq!(&karma[..], b"4");
}
