//! `cargo xtask` — workspace automation for the Pequod reproduction.
//!
//! Subcommands:
//!
//! * `audit` — a hand-rolled, zero-dependency lexical lint pass over
//!   the first-party crates. There is no registry access in the build
//!   environment, so no `syn`; the auditor works on lines and tokens,
//!   the same discipline as the vendored-deps build.
//! * `bench-index` — validates the `BENCH_*.json` artifacts every
//!   bench binary's `--json` flag emits against the shared row schema
//!   (see `bench_index.rs`), so field names can never drift apart
//!   between binaries again.
//!
//! Rules (see `docs/CORRECTNESS.md` for the full contract):
//!
//! * `no-unwrap` — `unwrap()` / `expect()` / `panic!` / `todo!` are
//!   denied in non-test serving-path code (`core`, `net`, `store`,
//!   `join`, `persist`).
//! * `safety-comment` — every `unsafe` occurrence needs a `// SAFETY:`
//!   comment on the same or one of the three preceding lines.
//! * `wall-clock` — `std::time::SystemTime` / `Instant::now` are
//!   forbidden outside `bench` and `workloads`: the serving path must
//!   stay deterministic (the simulator's virtual clock is the only
//!   time source experiments may observe). The rule is *scoped*: the
//!   telemetry crate alone is waived for `Instant::now` (monotonic
//!   latency measurement) while `SystemTime` stays denied even there
//!   (see `docs/OBSERVABILITY.md` for the waiver rationale).
//! * `lock-across-io` — in `net`, a `Mutex` guard bound by `let` must
//!   not be held across a socket I/O call, and no single statement may
//!   both lock and perform I/O.
//!
//! Any rule can be waived per-site with an annotation on the flagged
//! line or anywhere in the contiguous `//` comment block immediately
//! above it:
//!
//! ```text
//! // audit: allow(no-unwrap) — <reason the site is sound>
//! ```
//!
//! The reason is mandatory; a bare `allow` is itself a violation.
//!
//! `cargo xtask audit --self-test` seeds each violation class into a
//! temp directory and asserts the auditor catches it (and that the
//! exemptions — test code, annotations, strings, comments — hold), so
//! a silently broken linter fails CI.

// No first-party unsafe: the whole system is safe Rust over the
// vendored deps. `cargo xtask audit` additionally requires a SAFETY
// comment on any future unsafe block an allow here would admit.
#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};

mod bench_index;
mod lexer;
mod rules;
mod selftest;

pub use lexer::FileText;
pub use rules::{audit_source, CrateRules, Violation};

/// First-party source roots and which rules apply to each.
///
/// `no-unwrap` covers the serving-path crates only; `wall-clock`
/// covers everything except the measurement crates (`bench`,
/// `workloads`); `lock-across-io` covers the transport crate;
/// `safety-comment` applies everywhere.
const ROOTS: &[(&str, CrateRules)] = &[
    // Telemetry is the one root waived for Instant::now (monotonic
    // measurement); every other serving rule still applies to it.
    (
        "crates/telemetry/src",
        CrateRules::serving().allow_instant(),
    ),
    ("crates/store/src", CrateRules::serving()),
    ("crates/join/src", CrateRules::serving()),
    ("crates/core/src", CrateRules::serving()),
    ("crates/persist/src", CrateRules::serving()),
    ("crates/net/src", CrateRules::serving().with_lock_io()),
    ("crates/cluster/src", CrateRules::serving().with_lock_io()),
    ("crates/db/src", CrateRules::deterministic()),
    ("crates/baselines/src", CrateRules::deterministic()),
    ("src", CrateRules::deterministic()),
    ("crates/workloads/src", CrateRules::relaxed()),
    ("crates/bench/src", CrateRules::relaxed()),
    ("xtask/src", CrateRules::relaxed()),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("audit") if args.iter().any(|a| a == "--self-test") => selftest::run(),
        Some("audit") => run_audit(),
        Some("bench-index") => bench_index::run(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask audit [--self-test]");
            eprintln!("       cargo xtask bench-index [BENCH_*.json ...]");
            2
        }
    };
    std::process::exit(code);
}

/// Workspace root: xtask lives at `<root>/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

fn run_audit() -> i32 {
    let root = workspace_root();
    let mut violations = Vec::new();
    let mut files = 0usize;
    let mut suppressed = 0usize;
    for (dir, rules) in ROOTS {
        let dir = root.join(dir);
        if !dir.is_dir() {
            continue;
        }
        for path in rust_files(&dir) {
            files += 1;
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("audit: cannot read {}: {e}", path.display());
                    return 2;
                }
            };
            let report = audit_source(&text, rules);
            suppressed += report.suppressed;
            for v in report.violations {
                violations.push((path.clone(), v));
            }
        }
    }
    for (path, v) in &violations {
        let rel = path.strip_prefix(&root).unwrap_or(path);
        println!("{}:{}: [{}] {}", rel.display(), v.line, v.rule, v.message);
    }
    println!(
        "audit: {} file(s), {} violation(s), {} annotated allow(s)",
        files,
        violations.len(),
        suppressed
    );
    if violations.is_empty() {
        0
    } else {
        1
    }
}

/// All `.rs` files under `dir`, recursively, in stable (sorted) order.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = match std::fs::read_dir(&d) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: [{}] {}", self.line, self.rule, self.message)
    }
}
