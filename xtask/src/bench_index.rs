//! `cargo xtask bench-index` — schema validation for bench artifacts.
//!
//! Every bench binary's `--json PATH` flag writes a `BENCH_*.json`
//! file that CI uploads as an artifact. Nothing previously checked
//! those files against each other, which is exactly how field-name
//! drift (one binary saying `ops_s`, another `ops_per_sec`) sneaks
//! in. This subcommand locks the convention:
//!
//! * the document must be a JSON array of flat objects (one row per
//!   measurement);
//! * every key must come from the shared field allowlist below —
//!   known-bad aliases get a pointed message;
//! * a row carrying any of `ops` / `seconds` / `ops_per_sec` must
//!   carry all three, and the rate must actually equal `ops/seconds`
//!   (0.5% tolerance), so a binary cannot quietly report a rate its
//!   own numbers contradict.
//!
//! Run as `cargo xtask bench-index file...`, or with no arguments to
//! validate every `BENCH_*.json` in the workspace root.

use std::collections::BTreeMap;
use std::path::PathBuf;

/// The shared row vocabulary. Adding a field to a bench binary means
/// adding it here, which is the point: one place to agree on names.
const ALLOWED_FIELDS: &[&str] = &[
    // identity
    "backend",
    "mode",
    "model",
    "phase",
    "sweep",
    // core throughput triple
    "ops",
    "seconds",
    "ops_per_sec",
    // latency (µs, from the swarm histograms)
    "p50_us",
    "p99_us",
    // transport
    "rpcs",
    "rpc_bytes",
    "frames",
    "replies",
    "conns",
    "depth",
    "bytes",
    // memory / eviction
    "peak_memory_bytes",
    "final_memory_bytes",
    "cap",
    "cap_bytes",
    "js_evictions",
    "base_evictions",
    "hit_rate",
    "entries_returned",
    // persistence / recovery
    "wal_records",
    "snapshot_pairs",
    "restore_seconds",
    "first_read_seconds",
    "total_seconds",
    "first_fresh_read_ms",
    "vs_no_wal",
    "answers_digest",
    // telemetry overhead
    "overhead_pct",
];

/// Aliases we know someone will reach for, mapped to the real name.
const BANNED_ALIASES: &[(&str, &str)] = &[
    ("ops_s", "ops_per_sec"),
    ("ops_sec", "ops_per_sec"),
    ("opsPerSec", "ops_per_sec"),
    ("throughput", "ops_per_sec"),
    ("qps", "ops_per_sec"),
    ("elapsed", "seconds"),
    ("duration", "seconds"),
    ("latency_p50", "p50_us"),
    ("latency_p99", "p99_us"),
];

/// Entry point for the subcommand. Returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let files: Vec<PathBuf> = if args.is_empty() {
        default_artifacts()
    } else {
        args.iter().map(PathBuf::from).collect()
    };
    if files.is_empty() {
        println!("bench-index: no BENCH_*.json artifacts found (nothing to validate)");
        return 0;
    }
    let mut failures = 0usize;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-index: cannot read {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        match validate_document(&text) {
            Ok(rows) => println!("bench-index: {} ok ({rows} row(s))", path.display()),
            Err(errors) => {
                for e in &errors {
                    eprintln!("bench-index: {}: {e}", path.display());
                }
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!("bench-index: {} file(s) validated", files.len());
        0
    } else {
        eprintln!("bench-index: {failures} file(s) FAILED");
        1
    }
}

/// `BENCH_*.json` files in the workspace root, sorted.
fn default_artifacts() -> Vec<PathBuf> {
    let root = crate::workspace_root();
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&root) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                out.push(entry.path());
            }
        }
    }
    out.sort();
    out
}

/// Validates one artifact; `Ok` carries the row count.
pub fn validate_document(text: &str) -> Result<usize, Vec<String>> {
    let value = match parse_json(text) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("invalid JSON: {e}")]),
    };
    let Json::Array(rows) = value else {
        return Err(vec!["top level must be an array of row objects".to_string()]);
    };
    let mut errors = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let Json::Object(fields) = row else {
            errors.push(format!("row {i}: not an object"));
            continue;
        };
        for key in fields.keys() {
            if let Some((_, canonical)) = BANNED_ALIASES.iter().find(|(a, _)| a == key) {
                errors.push(format!(
                    "row {i}: field {key:?} — the canonical name is {canonical:?}"
                ));
            } else if !ALLOWED_FIELDS.contains(&key.as_str()) {
                errors.push(format!(
                    "row {i}: unknown field {key:?} — add it to the shared \
                     allowlist in xtask/src/bench_index.rs if it is intentional"
                ));
            }
        }
        // Rows are flat records of numbers and non-empty strings;
        // anything else (nested structure, bools, nulls, "") reads as
        // an emitter bug, not a new schema.
        for (key, value) in fields {
            match value {
                Json::Number(_) => {}
                Json::String(s) if !s.is_empty() => {}
                Json::String(_) => {
                    errors.push(format!("row {i}: field {key:?} is an empty string"));
                }
                Json::Bool(b) => {
                    errors.push(format!(
                        "row {i}: field {key:?} is a bare boolean ({b}) — \
                         encode flags as strings so the schema stays greppable"
                    ));
                }
                other => {
                    errors.push(format!(
                        "row {i}: field {key:?} is not a scalar ({other:?})"
                    ));
                }
            }
        }
        let ops = fields.get("ops").and_then(Json::as_f64);
        let seconds = fields.get("seconds").and_then(Json::as_f64);
        let rate = fields.get("ops_per_sec").and_then(Json::as_f64);
        let present = [ops.is_some(), seconds.is_some(), rate.is_some()];
        if present.iter().any(|&p| p) && !present.iter().all(|&p| p) {
            errors.push(format!(
                "row {i}: ops/seconds/ops_per_sec must travel together \
                 (found ops={} seconds={} ops_per_sec={})",
                present[0], present[1], present[2]
            ));
        } else if let (Some(ops), Some(seconds), Some(rate)) = (ops, seconds, rate) {
            if seconds > 0.0 {
                let implied = ops / seconds;
                let tolerance = implied.abs() * 0.005 + 0.5;
                if (rate - implied).abs() > tolerance {
                    errors.push(format!(
                        "row {i}: ops_per_sec={rate} disagrees with ops/seconds={implied:.1}"
                    ));
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(rows.len())
    } else {
        Err(errors)
    }
}

/// Minimal JSON value tree. Only what bench artifacts need: objects,
/// arrays, strings, numbers, booleans, null.
#[derive(Debug)]
enum Json {
    Object(BTreeMap<String, Json>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload (schema checks only need numbers today, but
    /// phase/backend assertions in tests read strings).
    #[cfg(test)]
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// Hand-rolled recursive-descent JSON parser (no registry access, no
/// serde — same discipline as the rest of the workspace).
fn parse_json(text: &str) -> Result<Json, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(b: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some('{') => parse_object(b, pos),
        Some('[') => parse_array(b, pos),
        Some('"') => Ok(Json::String(parse_string(b, pos)?)),
        Some('t') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some('f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some('n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(b, pos),
        Some(c) => Err(format!("unexpected {c:?} at offset {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[char], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    for expected in lit.chars() {
        if b.get(*pos) != Some(&expected) {
            return Err(format!("bad literal at offset {}", *pos));
        }
        *pos += 1;
    }
    Ok(v)
}

fn parse_number(b: &[char], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&'-') {
        *pos += 1;
    }
    while b
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
    {
        *pos += 1;
    }
    let s: String = b[start..*pos].iter().collect();
    s.parse::<f64>()
        .map(Json::Number)
        .map_err(|e| format!("bad number {s:?}: {e}"))
}

fn parse_string(b: &[char], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let hex: String = b.get(*pos..*pos + 4).unwrap_or(&[]).iter().collect();
                        if hex.len() != 4 {
                            return Err("truncated \\u escape".to_string());
                        }
                        *pos += 4;
                        let code =
                            u32::from_str_radix(&hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape \\{other}")),
                }
            }
            _ => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(b: &[char], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(Json::Array(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(',') => *pos += 1,
            Some(']') => {
                *pos += 1;
                return Ok(Json::Array(out));
            }
            _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
        }
    }
}

fn parse_object(b: &[char], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(Json::Object(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&':') {
            return Err(format!("expected ':' at offset {}", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        out.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(',') => *pos += 1,
            Some('}') => {
                *pos += 1;
                return Ok(Json::Object(out));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_the_fig7_shape() {
        let doc = r#"[
  {"backend": "pequod", "seconds": 1.5, "ops": 3000, "ops_per_sec": 2000.0, "rpcs": 10, "rpc_bytes": 100},
  {"backend": "redis-like", "seconds": 2.0, "ops": 1000, "ops_per_sec": 500.0, "rpcs": 5, "rpc_bytes": 50}
]"#;
        assert_eq!(validate_document(doc), Ok(2));
    }

    #[test]
    fn rejects_banned_alias_with_pointer() {
        let doc = r#"[{"ops_s": 12.0}]"#;
        let errs = validate_document(doc).unwrap_err();
        assert!(errs[0].contains("ops_per_sec"), "{errs:?}");
    }

    #[test]
    fn rejects_unknown_field() {
        let doc = r#"[{"zoomies": 1}]"#;
        let errs = validate_document(doc).unwrap_err();
        assert!(errs[0].contains("unknown field"), "{errs:?}");
    }

    #[test]
    fn rejects_partial_throughput_triple() {
        let doc = r#"[{"ops": 100, "seconds": 2.0}]"#;
        let errs = validate_document(doc).unwrap_err();
        assert!(errs[0].contains("travel together"), "{errs:?}");
    }

    #[test]
    fn rejects_inconsistent_rate() {
        let doc = r#"[{"ops": 1000, "seconds": 1.0, "ops_per_sec": 250.0}]"#;
        let errs = validate_document(doc).unwrap_err();
        assert!(errs[0].contains("disagrees"), "{errs:?}");
    }

    #[test]
    fn rejects_non_array_top_level() {
        let errs = validate_document(r#"{"ops": 1}"#).unwrap_err();
        assert!(errs[0].contains("array"), "{errs:?}");
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = r#"[{"phase": "a\"b\\c\ndA", "ops": 1, "seconds": 1.0, "ops_per_sec": 1.0}]"#;
        assert_eq!(validate_document(doc), Ok(1));
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("[1] trailing").is_err());
        let parsed = parse_json(r#"{"s": "xA", "b": true, "n": null}"#).unwrap();
        let Json::Object(map) = parsed else {
            panic!("expected object")
        };
        assert_eq!(map.get("s").and_then(Json::as_str), Some("xA"));
        assert!(matches!(map.get("b"), Some(Json::Bool(true))));
        assert!(matches!(map.get("n"), Some(Json::Null)));
    }
}
