//! Lexical preprocessing for the auditor: comment/string stripping and
//! `#[cfg(test)]` region tracking, all without a real Rust parser.
//!
//! The stripper is a character-level state machine over the whole file,
//! so multi-line block comments, multi-line string literals, and raw
//! strings (`r#"…"#`) are handled correctly. It produces, per line:
//!
//! * `code` — the line with comment bodies and string/char literal
//!   *contents* blanked to spaces (delimiters kept), so token searches
//!   never match inside prose or data;
//! * the original text (annotations like `// audit: allow(...)` live in
//!   comments and are parsed from the raw line).

/// One source line after preprocessing.
pub struct Line {
    /// Code with comments and literal contents blanked.
    pub code: String,
    /// The raw source line.
    pub raw: String,
    /// Brace depth at the *start* of the line.
    pub depth_before: u32,
    /// True if the line is inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

/// A whole file, preprocessed.
pub struct FileText {
    /// Lines, 0-indexed (line numbers reported are index + 1).
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    Block(u32),
    Str,
    RawStr(u32),
    Char,
}

impl FileText {
    /// Preprocesses `src`.
    pub fn new(src: &str) -> FileText {
        let stripped = strip(src);
        let raw_lines: Vec<&str> = src.split('\n').collect();
        let code_lines: Vec<&str> = stripped.split('\n').collect();

        // Second pass over the blanked code: brace depth and
        // #[cfg(test)] regions. A pending test attribute gates the next
        // block-opening `{`; the region ends when depth returns to the
        // value it had before that brace.
        let mut lines = Vec::with_capacity(raw_lines.len());
        let mut depth: u32 = 0;
        let mut pending_test = false;
        let mut test_until: Option<u32> = None;
        for (i, code) in code_lines.iter().enumerate() {
            let depth_before = depth;
            let in_test_at_start = test_until.is_some();
            if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
                pending_test = true;
            }
            let mut line_in_test = in_test_at_start;
            for ch in code.chars() {
                match ch {
                    '{' => {
                        if pending_test && test_until.is_none() {
                            test_until = Some(depth);
                            pending_test = false;
                            line_in_test = true;
                        }
                        depth += 1;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if let Some(d) = test_until {
                            if depth <= d {
                                test_until = None;
                            }
                        }
                    }
                    _ => {}
                }
            }
            lines.push(Line {
                code: (*code).to_string(),
                raw: raw_lines.get(i).copied().unwrap_or("").to_string(),
                depth_before,
                in_test: line_in_test,
            });
        }
        FileText { lines }
    }
}

/// Blanks comment bodies and string/char literal contents to spaces,
/// preserving newlines and column positions of everything else.
fn strip(src: &str) -> String {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut st = State::Normal;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match st {
            State::Normal => match c {
                '/' if next == Some('/') => {
                    st = State::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    st = State::Block(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    st = State::Str;
                    out.push('"');
                }
                'r' | 'b' => {
                    // Possible raw string r"…", r#"…"#, br#"…"# etc.
                    if let Some(hashes) = raw_string_open(&bytes, i) {
                        // Emit the opener verbatim, then blank contents.
                        let opener_len = raw_opener_len(&bytes, i);
                        for _ in 0..opener_len {
                            out.push(' ');
                        }
                        out.push('"');
                        i += opener_len + 1;
                        st = State::RawStr(hashes);
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: a lifetime is '\''
                    // followed by an identifier NOT closed by another
                    // quote nearby. Treat as char literal when the
                    // pattern 'x' or '\x' closes within a few chars.
                    if is_char_literal(&bytes, i) {
                        st = State::Char;
                    }
                    out.push('\'');
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    st = State::Normal;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::Block(depth) => {
                if c == '/' && next == Some('*') {
                    st = State::Block(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        State::Normal
                    } else {
                        State::Block(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    st = State::Normal;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&bytes, i, hashes) {
                    out.push('"');
                    for _ in 0..hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                    st = State::Normal;
                    continue;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            State::Char => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    st = State::Normal;
                    out.push('\'');
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

/// If position `i` starts a raw string opener (`r"`, `r#"`, `br#"`, …),
/// returns the number of `#`s.
fn raw_string_open(bytes: &[char], i: usize) -> Option<u32> {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if bytes.get(j) != Some(&'r') {
            return None;
        }
    }
    if bytes.get(j) != Some(&'r') {
        return None;
    }
    // Must not be part of a longer identifier (e.g. `for r in ...` has
    // `r` preceded by a space, but `fr"` or `var"` should not match).
    if i > 0 {
        let prev = bytes[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Length of the raw-string opener before the quote: `r##` is 3, `br` is 2.
fn raw_opener_len(bytes: &[char], i: usize) -> usize {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    j += 1; // the 'r'
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    j - i
}

/// True if the `"` at position `i` (inside a raw string with `hashes`
/// `#`s) is followed by exactly that many `#`s.
fn closes_raw(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Distinguishes `'a'` / `'\n'` char literals from `'a` lifetimes.
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some('\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&'\''),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        FileText::new(src)
            .lines
            .into_iter()
            .map(|l| l.code)
            .collect()
    }

    #[test]
    fn strips_line_comments_and_strings() {
        let lines = code_of("let x = \"panic!\"; // unwrap()\nlet y = 1;");
        assert!(!lines[0].contains("panic!"));
        assert!(!lines[0].contains("unwrap"));
        assert!(lines[1].contains("let y = 1;"));
    }

    #[test]
    fn strips_block_comments_across_lines() {
        let lines = code_of("a /* unwrap()\n still unwrap() */ b");
        assert!(!lines[0].contains("unwrap"));
        assert!(!lines[1].contains("unwrap"));
        assert!(lines[1].contains('b'));
    }

    #[test]
    fn strips_raw_strings() {
        let lines = code_of("let s = r#\"x.unwrap()\"#;\nx.unwrap();");
        assert!(!lines[0].contains("unwrap"));
        assert!(lines[1].contains(".unwrap()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = code_of("fn f<'a>(x: &'a str) { let c = '\"'; x.len(); }");
        // The double-quote char literal must not open a string.
        assert!(lines[0].contains("x.len()"));
    }

    #[test]
    fn cfg_test_region_tracked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let f = FileText::new(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test, "inside cfg(test) mod");
        assert!(!f.lines[5].in_test, "after the test mod closes");
    }
}
