//! Auditor self-test: seeds each violation class into a temp directory,
//! runs the real file-auditing path over it, and asserts every class is
//! caught and every exemption holds. `cargo xtask audit --self-test`
//! runs this in CI so a silently broken linter fails the build.

use crate::rules::{audit_source, CrateRules};
use std::path::PathBuf;

#[derive(Clone, Copy)]
struct Case {
    name: &'static str,
    source: &'static str,
    /// Rules expected to fire, in line order.
    expect: &'static [&'static str],
    /// Expected annotated-allow count.
    expect_suppressed: usize,
    /// Rule set the case runs under (most cases use the strict set;
    /// the wall-clock-scoping cases use the telemetry waiver).
    rules: CrateRules,
}

const CASES: &[Case] = &[
    Case {
        name: "unwrap",
        source: "fn serve() { conn.next().unwrap(); }\n",
        expect: &["no-unwrap"],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "expect",
        source: "fn serve() { conn.next().expect(\"always there\"); }\n",
        expect: &["no-unwrap"],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "panic",
        source: "fn serve() { panic!(\"impossible\"); }\n",
        expect: &["no-unwrap"],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "todo",
        source: "fn serve() { todo!() }\n",
        expect: &["no-unwrap"],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "wall-clock-instant",
        source: "fn serve() { let t = std::time::Instant::now(); }\n",
        expect: &["wall-clock"],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "wall-clock-systemtime",
        source: "use std::time::SystemTime;\n",
        expect: &["wall-clock"],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "unsafe-without-safety",
        source: "fn serve() { unsafe { transmute(x) } }\n",
        expect: &["safety-comment"],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "unsafe-with-safety",
        source: "fn serve() {\n    // SAFETY: x is a valid bit pattern by construction\n    unsafe { transmute(x) }\n}\n",
        expect: &[],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "lock-held-across-io",
        source: "fn serve() {\n    let guard = engine.lock();\n    stream.write_all(&frame);\n}\n",
        expect: &["lock-across-io"],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "lock-and-io-one-statement",
        source: "fn serve() { engine.lock().unwrap_or_else(|e| e.into_inner()).flush(); }\n",
        expect: &["lock-across-io"],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "lock-released-before-io",
        source: "fn serve() {\n    let guard = engine.lock();\n    drop(guard);\n    stream.write_all(&frame);\n}\n",
        expect: &[],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "temporary-lock-chain-clean",
        source: "fn serve() {\n    let n = engine\n        .lock()\n        .unwrap_or_else(|e| e.into_inner())\n        .count();\n    stream.write_all(&frame);\n}\n",
        expect: &[],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "test-code-exempt",
        source: "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); panic!(); let t = std::time::Instant::now(); }\n}\n",
        expect: &[],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "strings-and-comments-exempt",
        source: "fn serve() {\n    // a comment may say unwrap() or panic!\n    let s = \"panic! at the .unwrap()\";\n    let r = r#\"Instant::now\"#;\n}\n",
        expect: &[],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "annotation-waives",
        source: "fn serve() {\n    // audit: allow(no-unwrap) — index checked two lines up\n    x.unwrap();\n}\n",
        expect: &[],
        expect_suppressed: 1,
        rules: CrateRules::strict(),
    },
    Case {
        name: "annotation-needs-reason",
        source: "fn serve() {\n    // audit: allow(no-unwrap)\n    x.unwrap();\n}\n",
        expect: &["no-unwrap"],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "annotation-wrong-rule",
        source: "fn serve() {\n    // audit: allow(wall-clock) — not the right rule\n    x.unwrap();\n}\n",
        expect: &["no-unwrap"],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
    Case {
        name: "telemetry-instant-waived",
        source: "fn observe() { let t = std::time::Instant::now(); }\n",
        expect: &[],
        expect_suppressed: 0,
        rules: CrateRules::serving().allow_instant(),
    },
    Case {
        name: "telemetry-systemtime-still-denied",
        source: "fn observe() { let t = std::time::SystemTime::now(); }\n",
        expect: &["wall-clock"],
        expect_suppressed: 0,
        rules: CrateRules::serving().allow_instant(),
    },
    Case {
        name: "telemetry-other-rules-still-apply",
        source: "fn observe() { ring.lock().unwrap(); }\n",
        expect: &["no-unwrap"],
        expect_suppressed: 0,
        rules: CrateRules::serving().allow_instant(),
    },
    Case {
        name: "instant-denied-outside-waiver",
        source: "fn serve() { let t = std::time::Instant::now(); }\n",
        expect: &["wall-clock"],
        expect_suppressed: 0,
        rules: CrateRules::serving(),
    },
    Case {
        name: "clean-file",
        source: "fn serve() -> Result<(), Error> {\n    let v = conn.next().ok_or(Error::Closed)?;\n    Ok(())\n}\n",
        expect: &[],
        expect_suppressed: 0,
        rules: CrateRules::strict(),
    },
];

/// Runs one case through the same entry point `run_audit` uses.
fn check(case: &Case) -> Result<(), String> {
    let report = audit_source(case.source, &case.rules);
    let got: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    if got != case.expect {
        return Err(format!(
            "{}: expected rules {:?}, got {:?}",
            case.name, case.expect, got
        ));
    }
    if report.suppressed != case.expect_suppressed {
        return Err(format!(
            "{}: expected {} suppressed, got {}",
            case.name, case.expect_suppressed, report.suppressed
        ));
    }
    Ok(())
}

/// Seeds every case into a temp directory as real files and audits them
/// from disk (exercising the I/O path too), then checks in-memory.
pub fn run() -> i32 {
    let dir = std::env::temp_dir().join(format!("pequod-audit-selftest-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("self-test: cannot create {}: {e}", dir.display());
        return 2;
    }
    let mut failures = 0;
    for case in CASES {
        let path: PathBuf = dir.join(format!("{}.rs", case.name));
        if let Err(e) = std::fs::write(&path, case.source) {
            eprintln!("self-test: cannot write {}: {e}", path.display());
            failures += 1;
            continue;
        }
        let from_disk = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("self-test: cannot read back {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        let round_trip = Case {
            source: Box::leak(from_disk.into_boxed_str()),
            ..*case
        };
        match check(&round_trip) {
            Ok(()) => println!("self-test: {} ok", case.name),
            Err(msg) => {
                eprintln!("self-test: FAIL {msg}");
                failures += 1;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    if failures == 0 {
        println!("self-test: {} case(s) passed", CASES.len());
        0
    } else {
        eprintln!("self-test: {failures} case(s) FAILED");
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seeded_class_is_caught() {
        for case in CASES {
            check(case).unwrap();
        }
    }
}
