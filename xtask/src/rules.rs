//! The audit rules, applied to a preprocessed [`FileText`].

use crate::lexer::FileText;

/// Scope of the wall-clock rule for a source root.
///
/// The rule is scoped rather than boolean so a single root can hold a
/// narrow waiver: the telemetry crate measures real latencies and is
/// allowed monotonic `Instant::now`, while calendar time
/// (`SystemTime`) stays banned everywhere deterministic.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum WallClock {
    /// Both `SystemTime` and `Instant::now` are violations.
    Deny,
    /// `Instant::now` is permitted (monotonic measurement only);
    /// `SystemTime` is still a violation.
    AllowInstant,
    /// No wall-clock checking (measurement crates).
    Off,
}

/// Which rule families apply to a source root.
#[derive(Clone, Copy)]
pub struct CrateRules {
    /// Deny `unwrap()` / `expect()` / `panic!` / `todo!` outside tests.
    pub no_unwrap: bool,
    /// Wall-clock rule scope (see [`WallClock`]).
    pub wall_clock: WallClock,
    /// Flag mutex guards held across socket I/O.
    pub lock_io: bool,
}

impl CrateRules {
    /// Serving-path crates: every rule except lock tracking.
    pub const fn serving() -> CrateRules {
        CrateRules {
            no_unwrap: true,
            wall_clock: WallClock::Deny,
            lock_io: false,
        }
    }

    /// Adds the lock-across-I/O rule (the transport crate).
    pub const fn with_lock_io(mut self) -> CrateRules {
        self.lock_io = true;
        self
    }

    /// Narrows the wall-clock rule to permit `Instant::now` (the
    /// telemetry crate's waiver; `SystemTime` stays denied).
    pub const fn allow_instant(mut self) -> CrateRules {
        self.wall_clock = WallClock::AllowInstant;
        self
    }

    /// Non-serving but deterministic code (tools, baselines, binaries).
    pub const fn deterministic() -> CrateRules {
        CrateRules {
            no_unwrap: false,
            wall_clock: WallClock::Deny,
            lock_io: false,
        }
    }

    /// Measurement code: only the safety-comment rule applies.
    pub const fn relaxed() -> CrateRules {
        CrateRules {
            no_unwrap: false,
            wall_clock: WallClock::Off,
            lock_io: false,
        }
    }

    /// Every rule on (used by the self-test corpus).
    pub const fn strict() -> CrateRules {
        CrateRules {
            no_unwrap: true,
            wall_clock: WallClock::Deny,
            lock_io: true,
        }
    }
}

/// One finding.
pub struct Violation {
    /// 1-based source line.
    pub line: usize,
    /// Rule name, usable in an `audit: allow(<rule>)` annotation.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// Result of auditing one file.
pub struct Report {
    /// Unsuppressed findings.
    pub violations: Vec<Violation>,
    /// Findings waived by a well-formed allow annotation.
    pub suppressed: usize,
}

/// Socket/stream calls that count as I/O for the lock rule.
const IO_CALLS: &[&str] = &[
    ".write_all(",
    ".write(",
    ".flush(",
    ".read_exact(",
    ".read_to_end(",
    ".read(",
    "TcpStream::connect",
    ".accept(",
];

/// Runs every applicable rule over `src`.
pub fn audit_source(src: &str, rules: &CrateRules) -> Report {
    let text = FileText::new(src);
    let mut raw = Vec::new();

    if rules.no_unwrap {
        check_no_unwrap(&text, &mut raw);
    }
    if rules.wall_clock != WallClock::Off {
        check_wall_clock(&text, rules.wall_clock, &mut raw);
    }
    check_safety(&text, &mut raw);
    if rules.lock_io {
        check_lock_io(&text, &mut raw);
    }

    let mut violations = Vec::new();
    let mut suppressed = 0;
    for v in raw {
        if allowed(&text, v.line, v.rule) {
            suppressed += 1;
        } else {
            violations.push(v);
        }
    }
    violations.sort_by_key(|v| v.line);
    Report {
        violations,
        suppressed,
    }
}

/// True if line `line` (1-based) carries a well-formed
/// `audit: allow(<rule>) — <reason>` annotation, either on the line
/// itself or anywhere in the contiguous `//` comment block immediately
/// above it (so a justification may run to several lines).
fn allowed(text: &FileText, line: usize, rule: &str) -> bool {
    let mut idx = line.checked_sub(1); // 0-based index of the flagged line
    let mut on_flagged_line = true;
    while let Some(i) = idx {
        let Some(l) = text.lines.get(i) else { break };
        if !on_flagged_line && !l.raw.trim_start().starts_with("//") {
            break;
        }
        if annotation_matches(&l.raw, rule) {
            return true;
        }
        on_flagged_line = false;
        idx = i.checked_sub(1);
    }
    false
}

/// True if `raw` contains `audit: allow(<rule>)` followed by a reason
/// (at least a few word characters past any dash/colon separator —
/// a reason is mandatory).
fn annotation_matches(raw: &str, rule: &str) -> bool {
    let Some(pos) = raw.find("audit: allow(") else {
        return false;
    };
    let rest = &raw[pos + "audit: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    if rest[..close].trim() != rule {
        return false;
    }
    let reason = rest[close + 1..]
        .trim_start_matches([' ', '—', '-', ':', '–'])
        .trim();
    reason.chars().filter(|c| c.is_alphanumeric()).count() >= 3
}

/// Finds `needle` in `code` as a whole token: neither the preceding
/// nor the following character may be part of an identifier (so
/// `core_panic!` does not match `panic!`, and `unsafe_helper` does not
/// match `unsafe`).
fn find_token(code: &str, needle: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let abs = start + pos;
        let lead = abs == 0 || !code[..abs].chars().next_back().is_some_and(is_ident);
        let trail = !code[abs + needle.len()..]
            .chars()
            .next()
            .is_some_and(is_ident);
        if lead && trail {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

fn check_no_unwrap(text: &FileText, out: &mut Vec<Violation>) {
    for (i, l) in text.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let hits: &[(&str, &str)] = &[
            (".unwrap()", "unwrap() in serving-path code"),
            (".expect(", "expect() in serving-path code"),
            ("panic!", "panic! in serving-path code"),
            ("todo!", "todo! in serving-path code"),
        ];
        for (pat, msg) in hits {
            let found = if pat.starts_with('.') {
                l.code.contains(pat)
            } else {
                find_token(&l.code, pat)
            };
            if found {
                out.push(Violation {
                    line: i + 1,
                    rule: "no-unwrap",
                    message: format!("{msg} — propagate an error or annotate why it cannot fail"),
                });
            }
        }
    }
}

fn check_wall_clock(text: &FileText, scope: WallClock, out: &mut Vec<Violation>) {
    for (i, l) in text.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        if find_token(&l.code, "SystemTime") {
            let message = match scope {
                WallClock::AllowInstant => {
                    "SystemTime in a crate waived only for Instant::now — telemetry \
                     may read the monotonic clock, never calendar time"
                }
                _ => {
                    "wall-clock time in deterministic code — use the simulator's \
                     virtual clock or move this to bench/workloads"
                }
            };
            out.push(Violation {
                line: i + 1,
                rule: "wall-clock",
                message: message.to_string(),
            });
            continue;
        }
        if scope == WallClock::Deny && l.code.contains("Instant::now") {
            out.push(Violation {
                line: i + 1,
                rule: "wall-clock",
                message: "wall-clock time in deterministic code — use the simulator's \
                          virtual clock or move this to bench/workloads"
                    .to_string(),
            });
        }
    }
}

fn check_safety(text: &FileText, out: &mut Vec<Violation>) {
    for (i, l) in text.lines.iter().enumerate() {
        if !find_token(&l.code, "unsafe") {
            continue;
        }
        // Look for a SAFETY: comment on this line or up to three above.
        let mut ok = false;
        for back in 0..4 {
            if let Some(idx) = i.checked_sub(back) {
                if text.lines[idx].raw.contains("SAFETY:") {
                    ok = true;
                    break;
                }
            }
        }
        if !ok {
            out.push(Violation {
                line: i + 1,
                rule: "safety-comment",
                message: "unsafe without a preceding // SAFETY: comment".to_string(),
            });
        }
    }
}

/// Lock-guard tracking: statements are assembled from code lines
/// (a statement ends when parens are balanced and the line ends with
/// `;`, `{`, or `}`). A statement that both locks and does I/O is a
/// violation; a `let g = ….lock()…;` binding makes the guard live until
/// its block closes (or `drop(g)`), and any I/O inside that window is a
/// violation.
fn check_lock_io(text: &FileText, out: &mut Vec<Violation>) {
    struct Guard {
        name: String,
        depth: u32,
        line: usize,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut stmt = String::new();
    let mut stmt_start = 0usize;
    let mut stmt_depth = 0u32;
    let mut paren: i32 = 0;

    for (i, l) in text.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        if stmt.is_empty() {
            stmt_start = i;
            stmt_depth = l.depth_before;
        }
        for c in l.code.chars() {
            match c {
                '(' | '[' => paren += 1,
                ')' | ']' => paren -= 1,
                _ => {}
            }
        }
        stmt.push_str(l.code.trim());
        stmt.push(' ');
        let trimmed = l.code.trim_end();
        let ends = trimmed.ends_with(';')
            || trimmed.ends_with('{')
            || trimmed.ends_with('}')
            || trimmed.ends_with(',');
        if !(ends && paren <= 0) {
            continue;
        }

        // Statement complete: evaluate it.
        let s = stmt.trim().to_string();
        stmt.clear();
        paren = 0;

        // Guards die when their block closes.
        let depth_now = l.depth_before;
        guards.retain(|g| depth_now >= g.depth);
        // …or when explicitly dropped.
        guards.retain(|g| !s.contains(&format!("drop({})", g.name)));

        let has_lock = s.contains(".lock()");
        let has_io = IO_CALLS.iter().any(|c| s.contains(c));
        if has_lock && has_io {
            out.push(Violation {
                line: stmt_start + 1,
                rule: "lock-across-io",
                message: "statement locks a mutex and performs I/O".to_string(),
            });
            continue;
        }
        if has_io {
            if let Some(g) = guards.first() {
                out.push(Violation {
                    line: stmt_start + 1,
                    rule: "lock-across-io",
                    message: format!(
                        "I/O while mutex guard `{}` (bound on line {}) is held",
                        g.name,
                        g.line + 1
                    ),
                });
                continue;
            }
        }
        if has_lock {
            if let Some(name) = guard_binding(&s) {
                guards.push(Guard {
                    name,
                    depth: stmt_depth,
                    line: stmt_start,
                });
            }
        }
    }
}

/// If `stmt` is `let <name> = <chain ending in the guard>;`, returns
/// the bound name. The chain ends in the guard when nothing but
/// `lock()` / `unwrap()` / `expect(…)` / `unwrap_or_else(…)` follows
/// the lock call.
fn guard_binding(stmt: &str) -> Option<String> {
    let rest = stmt.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    let lock_pos = stmt.find(".lock()")?;
    let mut tail = &stmt[lock_pos + ".lock()".len()..];
    loop {
        tail = tail.trim_start();
        let mut progressed = false;
        for m in [".unwrap", ".expect", ".unwrap_or_else"] {
            if let Some(after) = tail.strip_prefix(m) {
                // Skip one balanced paren group.
                let mut depth = 0i32;
                let mut consumed = None;
                for (j, c) in after.char_indices() {
                    match c {
                        '(' => depth += 1,
                        ')' => {
                            depth -= 1;
                            if depth == 0 {
                                consumed = Some(j + 1);
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if let Some(j) = consumed {
                    tail = &after[j..];
                    progressed = true;
                    break;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    let leftover = tail.trim().trim_end_matches(';').trim();
    if leftover.is_empty() {
        Some(name)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_all() -> CrateRules {
        CrateRules::strict()
    }

    fn lint(src: &str) -> Vec<String> {
        audit_source(src, &rules_all())
            .violations
            .into_iter()
            .map(|v| v.rule.to_string())
            .collect()
    }

    #[test]
    fn catches_unwrap_expect_panic_todo() {
        assert_eq!(lint("fn f() { x.unwrap(); }"), vec!["no-unwrap"]);
        assert_eq!(lint("fn f() { x.expect(\"m\"); }"), vec!["no-unwrap"]);
        assert_eq!(lint("fn f() { panic!(\"m\"); }"), vec!["no-unwrap"]);
        assert_eq!(lint("fn f() { todo!() }"), vec!["no-unwrap"]);
    }

    #[test]
    fn unwrap_or_else_is_fine() {
        assert!(lint("fn f() { x.unwrap_or_else(|| 3); }").is_empty());
        assert!(lint("fn f() { x.unwrap_or_default(); }").is_empty());
        assert!(lint("fn f() { x.expect_err(\"m\"); }").is_empty());
    }

    #[test]
    fn test_code_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); panic!(); }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn strings_and_comments_exempt() {
        assert!(lint("fn f() { let s = \"don't panic!()\"; } // unwrap() here").is_empty());
    }

    #[test]
    fn annotation_waives_with_reason() {
        let src = "fn f() {\n    // audit: allow(no-unwrap) — the index is checked above\n    x.unwrap();\n}\n";
        let r = audit_source(src, &rules_all());
        assert!(r.violations.is_empty());
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn annotation_without_reason_does_not_waive() {
        let src = "fn f() {\n    // audit: allow(no-unwrap)\n    x.unwrap();\n}\n";
        assert_eq!(lint(src), vec!["no-unwrap"]);
    }

    #[test]
    fn annotation_for_other_rule_does_not_waive() {
        let src = "fn f() {\n    // audit: allow(wall-clock) — some reason\n    x.unwrap();\n}\n";
        assert_eq!(lint(src), vec!["no-unwrap"]);
    }

    #[test]
    fn wall_clock_flagged() {
        assert_eq!(
            lint("fn f() { let t = std::time::Instant::now(); }"),
            vec!["wall-clock"]
        );
        assert_eq!(
            lint("fn f() { let t = SystemTime::now(); }"),
            vec!["wall-clock"]
        );
    }

    #[test]
    fn allow_instant_scope_permits_monotonic_only() {
        let rules = CrateRules::serving().allow_instant();
        // Instant::now is waived under the telemetry scope…
        let r = audit_source("fn f() { let t = std::time::Instant::now(); }", &rules);
        assert!(r.violations.is_empty());
        // …but SystemTime is still a violation there…
        let r = audit_source("fn f() { let t = SystemTime::now(); }", &rules);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "wall-clock");
        // …and so are the other serving-path rules.
        let r = audit_source("fn f() { x.unwrap(); }", &rules);
        assert_eq!(r.violations[0].rule, "no-unwrap");
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        assert_eq!(lint("fn f() { unsafe { g() } }"), vec!["safety-comment"]);
        assert!(
            lint("fn f() {\n    // SAFETY: g has no preconditions\n    unsafe { g() }\n}")
                .is_empty()
        );
    }

    #[test]
    fn lock_and_io_in_one_statement() {
        assert_eq!(
            lint("fn f() { s.lock().unwrap_or_else(|e| e.into_inner()).write_all(b\"x\"); }"),
            vec!["lock-across-io"]
        );
    }

    #[test]
    fn guard_held_across_io() {
        let src = "fn f() {\n    let g = m.lock();\n    stream.write_all(buf);\n}\n";
        assert_eq!(lint(src), vec!["lock-across-io"]);
    }

    #[test]
    fn guard_dropped_before_io_is_fine() {
        let src = "fn f() {\n    let g = m.lock();\n    drop(g);\n    stream.write_all(buf);\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn temporary_lock_chain_is_fine() {
        // The tcp.rs idiom: the guard is a temporary inside one
        // statement whose result is not the guard.
        let src = "fn f() {\n    let res = engine\n        .lock()\n        .unwrap_or_else(|e| e.into_inner())\n        .count_result(&range);\n    stream.write_all(buf);\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn guard_scope_ends_with_block() {
        let src = "fn f() {\n    {\n        let g = m.lock();\n        g.touch();\n    }\n    stream.write_all(buf);\n}\n";
        assert!(lint(src).is_empty());
    }
}
