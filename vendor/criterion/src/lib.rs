//! A minimal, API-compatible subset of `criterion`, vendored because
//! the build environment has no network access to crates.io.
//!
//! Benchmarks compile and run: each `bench_function` warms up, then
//! measures batches until the configured measurement time elapses and
//! prints mean ns/iter. There is no statistical analysis, HTML report,
//! or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of measurement samples.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 10, "sample size must be >= 10");
        self.sample_size = n;
        self
    }

    /// Sets how long to measure each benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets how long to warm up each benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks (`group/bench` ids).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion, &mut f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// A benchmark id with a parameter, e.g. `BenchmarkId::new("get", "flat")`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iterations` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, config: &Criterion, f: &mut F) {
    // Warm up and discover a per-sample iteration count.
    let mut iters = 1u64;
    let warm_up_end = Instant::now() + config.warm_up_time;
    let mut per_iter = Duration::from_nanos(50);
    while Instant::now() < warm_up_end {
        let mut b = Bencher {
            iterations: iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed / (iters.max(1) as u32);
        iters = (iters * 2).min(1 << 24);
    }
    // Measure.
    let sample_iters = (Duration::from_millis(10).as_nanos() as u64)
        .checked_div(per_iter.as_nanos().max(1) as u64)
        .unwrap_or(1)
        .clamp(1, 1 << 24);
    let mut total_iters = 0u64;
    let mut total_time = Duration::ZERO;
    let measure_end = Instant::now() + config.measurement_time;
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iterations: sample_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_iters += sample_iters;
        total_time += b.elapsed;
        if Instant::now() >= measure_end {
            break;
        }
    }
    let mean_ns = total_time.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("{id:<40} {mean_ns:>12.1} ns/iter ({total_iters} iters)");
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
