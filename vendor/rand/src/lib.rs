//! A minimal, API-compatible subset of `rand` 0.8, vendored because the
//! build environment has no network access to crates.io.
//!
//! Provides [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), and [`rngs::StdRng`] backed by xoshiro256**.
//! Streams are deterministic given a seed, which is all the workloads
//! require; they do not match upstream `rand`'s byte-for-byte output.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let raw = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`] (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

/// Uniform value in `[0, span)` by rejection sampling (unbiased).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// User-facing random sampling methods; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of an inferred type uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as rand_core recommends for seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A non-cryptographic process-local RNG (deterministic here: workloads
/// must be reproducible; seed explicitly for varied streams).
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::seed_from_u64(0x5eed_5eed_5eed_5eed)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5usize);
            assert!(w <= 5);
            let s = rng.gen_range(-4..4i64);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }
}
