//! A minimal, API-compatible subset of the `zipf` crate, vendored
//! because the build environment has no network access to crates.io.
//!
//! `pequod_workloads::zipf` ships its own rejection-inversion sampler;
//! this crate exists so the workspace can keep the `zipf` dependency
//! pinned (and swap back to the real crate when a registry is
//! available) without code changes.

use rand::Rng;

/// Zipf distribution over `{1, ..., num_elements}` with the given
/// exponent, sampled by rejection-inversion (Hörmann & Derflinger).
#[derive(Clone, Copy, Debug)]
pub struct ZipfDistribution {
    num_elements: f64,
    exponent: f64,
    h_integral_x1: f64,
    h_integral_num_elements: f64,
    s: f64,
}

impl ZipfDistribution {
    /// Creates a sampler; fails if `num_elements == 0` or
    /// `exponent <= 0`.
    pub fn new(num_elements: usize, exponent: f64) -> Result<ZipfDistribution, ()> {
        if num_elements == 0 || exponent <= 0.0 {
            return Err(());
        }
        let n = num_elements as f64;
        let mut d = ZipfDistribution {
            num_elements: n,
            exponent,
            h_integral_x1: 0.0,
            h_integral_num_elements: 0.0,
            s: 0.0,
        };
        d.h_integral_x1 = d.h_integral(1.5) - 1.0;
        d.h_integral_num_elements = d.h_integral(n + 0.5);
        d.s = 2.0 - d.h_integral_inv(d.h_integral(2.5) - d.h(2.0));
        Ok(d)
    }

    fn h(&self, x: f64) -> f64 {
        (-self.exponent * x.ln()).exp()
    }

    fn h_integral(&self, x: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - self.exponent) * log_x) * log_x
    }

    fn h_integral_inv(&self, x: f64) -> f64 {
        let mut t = x * (1.0 - self.exponent);
        if t < -1.0 {
            t = -1.0;
        }
        (helper1(t) * x).exp()
    }

    /// Samples a rank in `1..=num_elements`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        loop {
            let u: f64 = rng.gen::<f64>();
            let u = self.h_integral_num_elements
                + u * (self.h_integral_x1 - self.h_integral_num_elements);
            let x = self.h_integral_inv(u);
            let k64 = x.clamp(1.0, self.num_elements);
            let k = (k64 + 0.5).floor().clamp(1.0, self.num_elements);
            if k - x <= self.s || u >= self.h_integral(k + 0.5) - self.h(k) {
                return k as usize;
            }
        }
    }
}

/// `(exp(x) - 1) / x` stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `(exp(x) - 1) / x` stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let d = ZipfDistribution::new(100, 1.1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((1..=100).contains(&s));
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let d = ZipfDistribution::new(1000, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0u32; 1001];
        for _ in 0..50_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[10]);
        assert!(counts[1] > counts[100] * 5);
    }
}
