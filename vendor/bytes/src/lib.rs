//! A minimal, API-compatible subset of the `bytes` crate, vendored
//! because the build environment has no network access to crates.io.
//!
//! Implements the pieces Pequod uses: [`Bytes`] (cheaply cloneable,
//! sliceable, refcounted byte strings), [`BytesMut`] (a growable buffer
//! with a read cursor), and the [`Buf`]/[`BufMut`] cursor traits.
//! Semantics match the real crate for this subset; `from_static` copies
//! instead of borrowing, which only costs an allocation.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    /// Borrowed from a `'static` slice (no allocation, `const`-friendly).
    Static(&'static [u8]),
    /// A window into a shared allocation.
    Shared {
        data: Arc<[u8]>,
        start: usize,
        end: usize,
    },
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Creates `Bytes` borrowing a static slice, without copying.
    pub const fn from_static(b: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(b),
        }
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(b: &[u8]) -> Bytes {
        Bytes::from_vec(b.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            repr: Repr::Shared {
                data: v.into(),
                start: 0,
                end,
            },
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        match &self.repr {
            Repr::Static(b) => Bytes {
                repr: Repr::Static(&b[lo..hi]),
            },
            Repr::Shared { data, start, .. } => Bytes {
                repr: Repr::Shared {
                    data: data.clone(),
                    start: start + lo,
                    end: start + hi,
                },
            },
        }
    }

    /// Copies self into a new `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(b) => b,
            Repr::Shared { data, start, end } => &data[*start..*end],
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

/// A unique, growable buffer of bytes with a read cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read cursor: bytes before this index have been consumed via
    /// [`Buf::advance`] / [`BytesMut::split_to`].
    read: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(n),
            read: 0,
        }
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.read
    }

    /// True if no readable bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Reserves capacity for at least `n` more bytes.
    pub fn reserve(&mut self, n: usize) {
        self.buf.reserve(n);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.read = 0;
    }

    /// Splits off and returns the first `n` readable bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = self.buf[self.read..self.read + n].to_vec();
        self.read += n;
        self.compact();
        BytesMut { buf: head, read: 0 }
    }

    /// Freezes into an immutable `Bytes`.
    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.buf.drain(..self.read);
        }
        Bytes::from_vec(self.buf)
    }

    /// Copies the readable bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[self.read..]
    }

    fn compact(&mut self) {
        // Reclaim consumed space once it dominates the buffer.
        if self.read > 4096 && self.read * 2 > self.buf.len() {
            self.buf.drain(..self.read);
            self.read = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(b: &[u8]) -> BytesMut {
        BytesMut {
            buf: b.to_vec(),
            read: 0,
        }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Read access to a buffer of bytes.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The current readable chunk.
    fn chunk(&self) -> &[u8];
    /// Advances the read cursor.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice_impl(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice_impl(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Copies bytes into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        self.copy_to_slice_impl(dst)
    }

    #[doc(hidden)]
    fn copy_to_slice_impl(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copies the next `n` bytes into a `Bytes`, advancing.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(self.remaining() >= n, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.read += n;
        self.compact();
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        *self = self.slice(n..);
    }
}

/// Write access to a growable buffer of bytes.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, b: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, b: &[u8]) {
        self.extend_from_slice(b);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, b: &[u8]) {
        self.extend_from_slice(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_basics() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
        let s = b.slice(1..4);
        assert_eq!(&s[..], b"ell");
        assert_eq!(format!("{:?}", s), "b\"ell\"");
    }

    #[test]
    fn bytesmut_cursor() {
        let mut m = BytesMut::new();
        m.put_u32_le(7);
        m.put_u8(9);
        m.extend_from_slice(b"xy");
        assert_eq!(m.len(), 7);
        assert_eq!(m.get_u32_le(), 7);
        let head = m.split_to(1);
        assert_eq!(&head[..], &[9]);
        assert_eq!(&m[..], b"xy");
        assert_eq!(&m.freeze()[..], b"xy");
    }

    #[test]
    fn slice_buf() {
        let mut s: &[u8] = &[1, 0, 0, 0, 2];
        assert_eq!(s.get_u32_le(), 1);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.get_u8(), 2);
    }
}
