//! A minimal, API-compatible subset of `proptest`, vendored because the
//! build environment has no network access to crates.io.
//!
//! Supports the strategy combinators the Pequod test suites use:
//! integer ranges, tuples, [`Just`], `prop_map`, [`prop_oneof!`],
//! [`collection::vec`], [`option::of`], [`string::string_regex`] (the
//! `[class]{m,n}` subset), [`any`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed, and failing inputs are reported but not
//! shrunk. Failure output prints the generated inputs so a failure is
//! still diagnosable and reproducible.

pub mod strategy;
pub mod test_runner;

pub mod collection;
pub mod option;
pub mod string;

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// The glob import all proptest suites start with.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// body runs for `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let test_path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(test_path, case);
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let input_repr = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs:\n{}",
                            test_path, case, config.cases, e, input_repr
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)*), l, r
                        )),
                    );
                }
            }
        }
    }};
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    }};
}

/// Picks uniformly among the given strategies (all must share one value
/// type). Weighted variants of real proptest are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
