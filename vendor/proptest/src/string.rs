//! String strategies from (a subset of) regular expressions.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt;

/// Error for patterns outside the supported subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported regex: {}", self.0)
    }
}

impl std::error::Error for Error {}

#[derive(Clone, Debug)]
struct Atom {
    /// Candidate characters (expanded from the class).
    chars: Vec<char>,
    min: usize,
    max: usize, // inclusive
}

/// Generates strings matching a regex of the form
/// `([class]{m[,n]} | [class] | literal)+`, where `class` supports
/// explicit chars and `a-z` ranges. Covers patterns like `[a-d]{1,3}`
/// and `[0-9]{10}` used by the test suites.
#[derive(Clone, Debug)]
pub struct RegexGeneratorStrategy {
    atoms: Vec<Atom>,
}

/// Parses `pattern` into a string strategy.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .ok_or_else(|| Error(format!("unclosed class in {pattern:?}")))?
                + i;
            let body = &chars[i + 1..close];
            if body.is_empty() || body[0] == '^' {
                return Err(Error(format!("unsupported class in {pattern:?}")));
            }
            let mut set = Vec::new();
            let mut j = 0;
            while j < body.len() {
                if j + 2 < body.len() && body[j + 1] == '-' {
                    let (lo, hi) = (body[j], body[j + 2]);
                    if lo > hi {
                        return Err(Error(format!("bad range {lo}-{hi} in {pattern:?}")));
                    }
                    set.extend(lo..=hi);
                    j += 3;
                } else {
                    set.push(body[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            if "(){}*+?|^$.\\".contains(chars[i]) {
                return Err(Error(format!(
                    "unsupported metacharacter {:?} in {pattern:?}",
                    chars[i]
                )));
            }
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional {m} / {m,n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or_else(|| Error(format!("unclosed quantifier in {pattern:?}")))?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let parse = |s: &str| {
                s.parse::<usize>()
                    .map_err(|_| Error(format!("bad quantifier {body:?} in {pattern:?}")))
            };
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                None => {
                    let n = parse(&body)?;
                    (n, n)
                }
            };
            if lo > hi {
                return Err(Error(format!("bad quantifier {body:?} in {pattern:?}")));
            }
            i = close + 1;
            (lo, hi)
        } else {
            (1, 1)
        };
        atoms.push(Atom {
            chars: class,
            min,
            max,
        });
    }
    Ok(RegexGeneratorStrategy { atoms })
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}
