//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Length specification for [`vec`]: a fixed length or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
