//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case inputs. Unlike real proptest there is no
/// shrinking; `generate` draws one value.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among strategies sharing a value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union; panics on an empty variant list.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        Union { variants }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.variants.len() as u64) as usize;
        self.variants[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy, used via [`any`].
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + rng.below(0x5f) as u8) as char
    }
}

/// The canonical strategy for `T` (uniform over the domain).
#[derive(Clone, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`, e.g. `any::<u8>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
