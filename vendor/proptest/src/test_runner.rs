//! Test-loop configuration, failure type, and the deterministic RNG
//! behind generated inputs.

use std::fmt;

/// How many cases each property runs, overridable per-suite via
/// `proptest_config` or globally via the `PROPTEST_CASES` env var.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed property: carries the reason reported by `prop_assert!` /
/// `prop_assert_eq!` or an explicit `Err` from the test body.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }

    /// Real proptest distinguishes rejects from failures; the subset
    /// treats both as failures.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG for input generation (SplitMix64). Each test case
/// gets a seed derived from the test path and case index, so failures
/// reproduce exactly on re-run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the named test.
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        lo + self.below((hi - lo) as u64) as usize
    }
}
