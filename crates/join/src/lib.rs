//! `pequod-join` — the cache-join language.
//!
//! A *cache join* (Pequod, NSDI '14) declaratively relates computed
//! key-value data to base data: the Twip timeline join
//!
//! ```text
//! t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>
//! ```
//!
//! defines `t|user|time|poster` as a copy of `p|poster|time` whenever the
//! subscription `s|user|poster` exists. This crate provides:
//!
//! * [`Pattern`] — key patterns with delimiter- and fixed-width slots,
//!   key matching, expansion, and slot derivation from scan ranges;
//! * [`SlotTable`] / [`SlotSet`] — interned slot names and partial slot
//!   assignments (§3.1's "slot sets");
//! * [`containing_range`] — the minimal source range that can affect a
//!   requested output range (§3.1's "containing ranges");
//! * [`JoinSpec`] — the parsed and validated join grammar of Figure 2,
//!   including maintenance annotations (`push` / `pull` / `snapshot T`).
//!
//! Query execution and incremental maintenance live in `pequod-core`.

// No first-party unsafe: the whole system is safe Rust over the
// vendored deps. `cargo xtask audit` additionally requires a SAFETY
// comment on any future unsafe block an allow here would admit.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod containing;
pub mod pattern;
pub mod slots;
pub mod spec;

pub use containing::containing_range;
pub use pattern::{Pattern, PatternError, Token};
pub use slots::{SlotId, SlotSet, SlotTable};
pub use spec::{parse_joins, JoinError, JoinSpec, Maintenance, Operator, Source};

#[cfg(test)]
mod proptests {
    use super::*;
    use pequod_store::{Key, KeyRange};
    use proptest::prelude::*;

    /// Key components use a low alphabet so that the `|` delimiter sorts
    /// above every value byte, matching the documented key convention.
    fn component() -> impl Strategy<Value = String> {
        proptest::string::string_regex("[a-d]{1,3}").unwrap()
    }

    fn fixed_component(width: usize) -> impl Strategy<Value = String> {
        proptest::string::string_regex(&format!("[0-9]{{{width}}}")).unwrap()
    }

    proptest! {
        /// match(expand(slots)) binds the same slots back.
        #[test]
        fn expand_match_roundtrip(user in component(), time in fixed_component(3), poster in component()) {
            let mut table = SlotTable::new();
            let pat = Pattern::parse("t|<user>|<time:3>|<poster>", &mut table).unwrap();
            let mut slots = table.empty_set();
            slots.bind(table.lookup("user").unwrap(), user.clone().into_bytes().into());
            slots.bind(table.lookup("time").unwrap(), time.clone().into_bytes().into());
            slots.bind(table.lookup("poster").unwrap(), poster.clone().into_bytes().into());
            let key = pat.expand(&slots).unwrap();
            let mut bound = table.empty_set();
            prop_assert!(pat.match_key(&key, &mut bound));
            prop_assert_eq!(bound.get(table.lookup("user").unwrap()).unwrap().as_ref(), user.as_bytes());
            prop_assert_eq!(bound.get(table.lookup("time").unwrap()).unwrap().as_ref(), time.as_bytes());
            prop_assert_eq!(bound.get(table.lookup("poster").unwrap()).unwrap().as_ref(), poster.as_bytes());
        }

        /// Soundness of containing ranges by enumeration: every source key
        /// whose join output lands in the scanned range must fall inside
        /// the computed containing range — for random scan bounds.
        #[test]
        fn containing_range_sound(
            scan_lo in component(), scan_lo_time in fixed_component(3),
            scan_hi in component(), scan_hi_time in fixed_component(3),
            user in component(), poster in component(),
            times in proptest::collection::vec(fixed_component(3), 1..6),
        ) {
            let mut table = SlotTable::new();
            let output = Pattern::parse("t|<user>|<time:3>|<poster>", &mut table).unwrap();
            let source = Pattern::parse("p|<poster>|<time:3>", &mut table).unwrap();
            let scan = KeyRange::new(
                format!("t|{scan_lo}|{scan_lo_time}"),
                format!("t|{scan_hi}|{scan_hi_time}"),
            );
            let mut slots = table.empty_set();
            slots.bind(table.lookup("user").unwrap(), user.clone().into_bytes().into());
            slots.bind(table.lookup("poster").unwrap(), poster.clone().into_bytes().into());
            let crange = containing_range(&source, &output, &slots, &scan);
            for time in &times {
                let skey = Key::from(format!("p|{poster}|{time}"));
                let okey = Key::from(format!("t|{user}|{time}|{poster}"));
                if scan.contains(&okey) {
                    prop_assert!(
                        crange.contains(&skey),
                        "scan {:?}: {:?} contributes {:?} but containing {:?} misses it",
                        scan, skey, okey, crange
                    );
                }
            }
        }

        /// Same soundness property for a variable-width time slot, where
        /// the range must be conservative.
        #[test]
        fn containing_range_sound_variable(
            scan_lo_time in component(), scan_hi_time in component(),
            user in component(), poster in component(),
            times in proptest::collection::vec(component(), 1..6),
        ) {
            let mut table = SlotTable::new();
            let output = Pattern::parse("t|<user>|<time>|<poster>", &mut table).unwrap();
            let source = Pattern::parse("p|<poster>|<time>", &mut table).unwrap();
            let scan = KeyRange::new(
                format!("t|{user}|{scan_lo_time}"),
                format!("t|{user}|{scan_hi_time}"),
            );
            let mut slots = table.empty_set();
            slots.bind(table.lookup("user").unwrap(), user.clone().into_bytes().into());
            slots.bind(table.lookup("poster").unwrap(), poster.clone().into_bytes().into());
            let crange = containing_range(&source, &output, &slots, &scan);
            for time in &times {
                let skey = Key::from(format!("p|{poster}|{time}"));
                let okey = Key::from(format!("t|{user}|{time}|{poster}"));
                if scan.contains(&okey) {
                    prop_assert!(
                        crange.contains(&skey),
                        "scan {:?}: {:?} contributes {:?} but containing {:?} misses it",
                        scan, skey, okey, crange
                    );
                }
            }
        }

        /// derive_slots never binds a slot to a wrong value: any in-range
        /// key matching the pattern agrees with every derived binding.
        #[test]
        fn derive_slots_consistent(
            user in component(), time in fixed_component(3), poster in component(),
            hi_time in fixed_component(3),
        ) {
            let mut table = SlotTable::new();
            let pat = Pattern::parse("t|<user>|<time:3>|<poster>", &mut table).unwrap();
            let range = KeyRange::new(
                format!("t|{user}|{time}"),
                format!("t|{user}|{hi_time}"),
            );
            if range.is_empty() { return Ok(()); }
            let mut derived = table.empty_set();
            pat.derive_slots(&range, &mut derived);
            let probe = Key::from(format!("t|{user}|{time}|{poster}"));
            if range.contains(&probe) {
                let mut bound = derived.clone();
                prop_assert!(pat.match_key(&probe, &mut bound), "derived bindings conflicted with in-range key");
            }
        }
    }
}
