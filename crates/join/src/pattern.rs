//! Key patterns: the building blocks of cache joins.
//!
//! A pattern like `t|<user>|<time:10>|<poster>` describes a family of
//! keys: literal bytes interleaved with named slots. Slots are either
//! *fixed-width* (`<time:10>` consumes exactly ten bytes) or
//! *variable-width* (`<user>` consumes bytes up to the next literal).
//! This is the paper's "slot definition" machinery (§3): "slot
//! definitions tell Pequod how to unpack a key into its component
//! slots—for example, by looking for vertical bars, or by taking fixed
//! numbers of bytes."
//!
//! Fixed-width slots matter for performance: they let the containing-
//! range computation (see [`crate::containing`]) translate scan bounds
//! through a join precisely, reproducing the paper's
//! `[p|bob|100, p|bob|+)` example. Variable-width slots are matched
//! non-greedily up to the next literal and produce conservative
//! (correct but wider) containing ranges.

use crate::slots::{SlotId, SlotSet, SlotTable};
use bytes::Bytes;
use pequod_store::{Key, KeyRange, UpperBound};
use std::fmt;

/// One element of a pattern.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// Literal bytes that must appear verbatim.
    Lit(Bytes),
    /// A named slot. `width` is `Some(n)` for fixed-width slots.
    Slot {
        /// Which slot this token binds.
        id: SlotId,
        /// Fixed byte width, or `None` for delimiter-terminated slots.
        width: Option<usize>,
    },
}

/// Errors produced while parsing a pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternError {
    /// `<` without a matching `>`.
    UnterminatedSlot,
    /// Slot name was empty or contained invalid characters.
    BadSlotName(String),
    /// Slot width annotation did not parse as a positive integer.
    BadWidth(String),
    /// Two variable-width slots appeared with no literal between them.
    AdjacentVariableSlots,
    /// The pattern was empty.
    Empty,
    /// The same slot appeared twice in one pattern.
    DuplicateSlot(String),
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::UnterminatedSlot => write!(f, "unterminated '<' slot"),
            PatternError::BadSlotName(n) => write!(f, "bad slot name {n:?}"),
            PatternError::BadWidth(w) => write!(f, "bad slot width {w:?}"),
            PatternError::AdjacentVariableSlots => {
                write!(f, "two variable-width slots need a literal between them")
            }
            PatternError::Empty => write!(f, "empty pattern"),
            PatternError::DuplicateSlot(n) => write!(f, "slot {n:?} appears twice"),
        }
    }
}

impl std::error::Error for PatternError {}

/// A compiled key pattern.
#[derive(Clone, PartialEq, Debug)]
pub struct Pattern {
    tokens: Vec<Token>,
    text: String,
}

impl Pattern {
    /// Parses a pattern such as `t|<user>|<time:10>|<poster>`, interning
    /// slot names into `table`.
    pub fn parse(text: &str, table: &mut SlotTable) -> Result<Pattern, PatternError> {
        let mut tokens: Vec<Token> = Vec::new();
        let mut lit = Vec::new();
        let bytes = text.as_bytes();
        let mut i = 0;
        let mut seen: Vec<SlotId> = Vec::new();
        while i < bytes.len() {
            if bytes[i] == b'<' {
                let close = bytes[i + 1..]
                    .iter()
                    .position(|&b| b == b'>')
                    .ok_or(PatternError::UnterminatedSlot)?
                    + i
                    + 1;
                let inner = &text[i + 1..close];
                let (name, width) = match inner.split_once(':') {
                    Some((n, w)) => {
                        let width: usize = w
                            .parse()
                            .map_err(|_| PatternError::BadWidth(w.to_string()))?;
                        if width == 0 {
                            return Err(PatternError::BadWidth(w.to_string()));
                        }
                        (n, Some(width))
                    }
                    None => (inner, None),
                };
                if name.is_empty() || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
                {
                    return Err(PatternError::BadSlotName(name.to_string()));
                }
                if !lit.is_empty() {
                    tokens.push(Token::Lit(Bytes::from(std::mem::take(&mut lit))));
                }
                let id = table.intern(name);
                if seen.contains(&id) {
                    return Err(PatternError::DuplicateSlot(name.to_string()));
                }
                seen.push(id);
                if width.is_none() {
                    if let Some(Token::Slot { width: None, .. }) = tokens.last() {
                        return Err(PatternError::AdjacentVariableSlots);
                    }
                }
                tokens.push(Token::Slot { id, width });
                i = close + 1;
            } else {
                lit.push(bytes[i]);
                i += 1;
            }
        }
        if !lit.is_empty() {
            tokens.push(Token::Lit(Bytes::from(lit)));
        }
        if tokens.is_empty() {
            return Err(PatternError::Empty);
        }
        Ok(Pattern {
            tokens,
            text: text.to_string(),
        })
    }

    /// The pattern's tokens.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// The original pattern text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The slots referenced by this pattern, in order of appearance.
    pub fn slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.tokens.iter().filter_map(|t| match t {
            Token::Slot { id, .. } => Some(*id),
            Token::Lit(_) => None,
        })
    }

    /// The leading literal of the pattern (the table name prefix), empty
    /// if the pattern starts with a slot.
    pub fn leading_lit(&self) -> &[u8] {
        match self.tokens.first() {
            Some(Token::Lit(l)) => l,
            _ => b"",
        }
    }

    /// The range of all keys this pattern could produce, given no slot
    /// bindings: `[leading literal, its prefix end)`.
    pub fn key_space(&self) -> KeyRange {
        let lead = self.leading_lit();
        if lead.is_empty() {
            KeyRange::all()
        } else {
            KeyRange::prefix(lead)
        }
    }

    /// Matches `key` against the pattern, unifying slot values into
    /// `slots`. On success every slot of the pattern is bound and the
    /// whole key was consumed. On failure `slots` may be partially
    /// modified; callers should clone first if that matters.
    pub fn match_key(&self, key: &Key, slots: &mut SlotSet) -> bool {
        let bytes = key.as_bytes();
        let mut pos = 0;
        for (ti, tok) in self.tokens.iter().enumerate() {
            match tok {
                Token::Lit(l) => {
                    if !bytes[pos..].starts_with(l) {
                        return false;
                    }
                    pos += l.len();
                }
                Token::Slot { id, width } => {
                    let extent = match width {
                        Some(w) => {
                            if bytes.len() - pos < *w {
                                return false;
                            }
                            *w
                        }
                        None => match self.next_lit(ti) {
                            Some(delim) => match find(&bytes[pos..], delim) {
                                Some(off) => off,
                                None => return false,
                            },
                            // Slot is the last token: it takes the rest.
                            None => bytes.len() - pos,
                        },
                    };
                    if !slots.unify(*id, &bytes[pos..pos + extent]) {
                        return false;
                    }
                    pos += extent;
                }
            }
        }
        pos == bytes.len()
    }

    /// The first literal token after token index `ti`, skipping nothing
    /// (variable slots must be followed directly by a literal or the
    /// pattern end, enforced at parse time).
    fn next_lit(&self, ti: usize) -> Option<&Bytes> {
        match self.tokens.get(ti + 1) {
            Some(Token::Lit(l)) => Some(l),
            _ => None,
        }
    }

    /// Like [`Pattern::match_key`], but records every newly-bound slot in
    /// `undo` so the caller can unbind them and reuse the slot set for
    /// the next candidate key (the nested-loop hot path). On failure the
    /// new bindings are rolled back before returning.
    pub fn match_key_undo(&self, key: &Key, slots: &mut SlotSet, undo: &mut Vec<SlotId>) -> bool {
        let checkpoint = undo.len();
        let bytes = key.as_bytes();
        let mut pos = 0;
        let mut ok = true;
        for (ti, tok) in self.tokens.iter().enumerate() {
            match tok {
                Token::Lit(l) => {
                    if !bytes[pos..].starts_with(l) {
                        ok = false;
                        break;
                    }
                    pos += l.len();
                }
                Token::Slot { id, width } => {
                    let extent = match width {
                        Some(w) => {
                            if bytes.len() - pos < *w {
                                ok = false;
                                break;
                            }
                            *w
                        }
                        None => match self.next_lit(ti) {
                            Some(delim) => match find(&bytes[pos..], delim) {
                                Some(off) => off,
                                None => {
                                    ok = false;
                                    break;
                                }
                            },
                            None => bytes.len() - pos,
                        },
                    };
                    let was_bound = slots.is_bound(*id);
                    if !slots.unify(*id, &bytes[pos..pos + extent]) {
                        ok = false;
                        break;
                    }
                    if !was_bound {
                        undo.push(*id);
                    }
                    pos += extent;
                }
            }
        }
        if ok && pos == bytes.len() {
            true
        } else {
            for id in undo.drain(checkpoint..) {
                slots.unbind(id);
            }
            false
        }
    }

    /// Expands the pattern into a key using `slots`; `None` if any slot
    /// is unbound or a fixed-width slot's value has the wrong length.
    pub fn expand(&self, slots: &SlotSet) -> Option<Key> {
        let mut out = Vec::new();
        for tok in &self.tokens {
            match tok {
                Token::Lit(l) => out.extend_from_slice(l),
                Token::Slot { id, width } => {
                    let v = slots.get(*id)?;
                    if let Some(w) = width {
                        if v.len() != *w {
                            return None;
                        }
                    }
                    out.extend_from_slice(v);
                }
            }
        }
        Some(Key::from(out))
    }

    /// Emits the longest key prefix determined by `slots`: literals and
    /// bound slots up to (not including) the first unbound slot. Returns
    /// the prefix and the token index of the first unbound slot (or
    /// `tokens.len()` if fully determined).
    pub fn determined_prefix(&self, slots: &SlotSet) -> (Vec<u8>, usize) {
        let mut out = Vec::new();
        for (ti, tok) in self.tokens.iter().enumerate() {
            match tok {
                Token::Lit(l) => out.extend_from_slice(l),
                Token::Slot { id, .. } => match slots.get(*id) {
                    Some(v) => out.extend_from_slice(v),
                    None => return (out, ti),
                },
            }
        }
        (out, self.tokens.len())
    }

    /// The minimal range containing every key the pattern can produce
    /// under `slots` (ignoring any output-range constraint): a single-key
    /// range when fully bound, otherwise the prefix range of the
    /// determined prefix.
    pub fn containing_range_basic(&self, slots: &SlotSet) -> KeyRange {
        let (prefix, ti) = self.determined_prefix(slots);
        let prefix_key = Key::from(prefix);
        if ti == self.tokens.len() {
            KeyRange::single(prefix_key)
        } else {
            KeyRange::prefix(prefix_key)
        }
    }

    /// Derives the slot bindings implied by an output key *range*
    /// (Figure 3's `slotset(t, first, last)`).
    ///
    /// Every key in `[first, end)` shares the longest prefix `p` of
    /// `first` such that the whole range fits inside `[p, prefix_end(p))`.
    /// Slots whose full extent lies within that shared prefix are bound.
    pub fn derive_slots(&self, range: &KeyRange, slots: &mut SlotSet) {
        let shared = shared_prefix(range);
        let mut pos = 0;
        for (ti, tok) in self.tokens.iter().enumerate() {
            match tok {
                Token::Lit(l) => {
                    if shared.len() - pos < l.len() || shared[pos..pos + l.len()] != l[..] {
                        return;
                    }
                    pos += l.len();
                }
                Token::Slot { id, width } => {
                    let extent = match width {
                        Some(w) => {
                            if shared.len() - pos < *w {
                                return;
                            }
                            *w
                        }
                        None => match self.next_lit(ti) {
                            Some(delim) => match find(&shared[pos..], delim) {
                                Some(off) => off,
                                None => return,
                            },
                            // Trailing slot: the shared prefix cannot prove
                            // the key ends here, so do not bind.
                            None => return,
                        },
                    };
                    if !slots.unify(*id, &shared[pos..pos + extent]) {
                        return;
                    }
                    pos += extent;
                }
            }
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// The longest prefix `p` of `range.first` with `range ⊆ [p, prefix_end(p))`.
pub(crate) fn shared_prefix(range: &KeyRange) -> Vec<u8> {
    let first = range.first.as_bytes();
    match &range.end {
        UpperBound::Unbounded => Vec::new(),
        UpperBound::Excluded(end) => {
            // prefix_end(p) shrinks as p grows, so scan from the longest
            // prefix down to the empty one.
            for len in (1..=first.len()).rev() {
                let p = Key::from(&first[..len]);
                match p.prefix_end() {
                    Some(pe) => {
                        if *end <= pe {
                            return first[..len].to_vec();
                        }
                    }
                    None => return first[..len].to_vec(), // all-0xff prefix: unbounded span
                }
            }
            Vec::new()
        }
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() {
        return Some(0);
    }
    if needle.len() > haystack.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline() -> (Pattern, SlotTable) {
        let mut t = SlotTable::new();
        let p = Pattern::parse("t|<user>|<time>|<poster>", &mut t).unwrap();
        (p, t)
    }

    #[test]
    fn parse_tokens() {
        let (p, t) = timeline();
        assert_eq!(p.tokens().len(), 6); // t| user | time | poster
        assert_eq!(t.len(), 3);
        assert_eq!(p.leading_lit(), b"t|");
        let fixed = Pattern::parse("p|<poster>|<time:10>", &mut SlotTable::new()).unwrap();
        assert!(matches!(
            fixed.tokens().last(),
            Some(Token::Slot {
                width: Some(10),
                ..
            })
        ));
    }

    #[test]
    fn parse_errors() {
        let mut t = SlotTable::new();
        assert_eq!(
            Pattern::parse("a|<user", &mut t),
            Err(PatternError::UnterminatedSlot)
        );
        assert_eq!(Pattern::parse("", &mut t), Err(PatternError::Empty));
        assert!(matches!(
            Pattern::parse("a|<>", &mut t),
            Err(PatternError::BadSlotName(_))
        ));
        assert!(matches!(
            Pattern::parse("a|<x:zero>", &mut t),
            Err(PatternError::BadWidth(_))
        ));
        assert!(matches!(
            Pattern::parse("a|<x:0>", &mut t),
            Err(PatternError::BadWidth(_))
        ));
        assert_eq!(
            Pattern::parse("a|<x><y>", &mut t),
            Err(PatternError::AdjacentVariableSlots)
        );
        assert!(matches!(
            Pattern::parse("a|<x>|<x>", &mut t),
            Err(PatternError::DuplicateSlot(_))
        ));
        // fixed-width followed by variable is fine
        assert!(Pattern::parse("a|<x:4><y>", &mut t).is_ok());
    }

    #[test]
    fn match_binds_slots() {
        let (p, t) = timeline();
        let mut s = t.empty_set();
        assert!(p.match_key(&Key::from("t|ann|100|bob"), &mut s));
        assert_eq!(s.get(t.lookup("user").unwrap()).unwrap().as_ref(), b"ann");
        assert_eq!(s.get(t.lookup("time").unwrap()).unwrap().as_ref(), b"100");
        assert_eq!(s.get(t.lookup("poster").unwrap()).unwrap().as_ref(), b"bob");
    }

    #[test]
    fn match_rejects_wrong_shape() {
        let (p, t) = timeline();
        assert!(!p.match_key(&Key::from("p|ann|100|bob"), &mut t.empty_set()));
        assert!(!p.match_key(&Key::from("t|ann|100"), &mut t.empty_set()));
        // extra component is absorbed by the trailing variable slot
        let mut s = t.empty_set();
        assert!(p.match_key(&Key::from("t|ann|100|bob|x"), &mut s));
        assert_eq!(
            s.get(t.lookup("poster").unwrap()).unwrap().as_ref(),
            b"bob|x"
        );
    }

    #[test]
    fn match_respects_existing_bindings() {
        let (p, t) = timeline();
        let mut s = t.empty_set();
        s.bind(t.lookup("user").unwrap(), Bytes::from_static(b"ann"));
        assert!(p.match_key(&Key::from("t|ann|100|bob"), &mut s));
        let mut s2 = t.empty_set();
        s2.bind(t.lookup("user").unwrap(), Bytes::from_static(b"liz"));
        assert!(!p.match_key(&Key::from("t|ann|100|bob"), &mut s2));
    }

    #[test]
    fn fixed_width_matching() {
        let mut t = SlotTable::new();
        let p = Pattern::parse("x|<a:3><b:2>", &mut t).unwrap();
        let mut s = t.empty_set();
        assert!(p.match_key(&Key::from("x|abcde"), &mut s));
        assert_eq!(s.get(t.lookup("a").unwrap()).unwrap().as_ref(), b"abc");
        assert_eq!(s.get(t.lookup("b").unwrap()).unwrap().as_ref(), b"de");
        assert!(!p.match_key(&Key::from("x|abcd"), &mut t.empty_set())); // too short
        assert!(!p.match_key(&Key::from("x|abcdef"), &mut t.empty_set())); // too long
    }

    #[test]
    fn expand_roundtrips_match() {
        let (p, t) = timeline();
        let mut s = t.empty_set();
        let key = Key::from("t|ann|100|bob");
        assert!(p.match_key(&key, &mut s));
        assert_eq!(p.expand(&s).unwrap(), key);
    }

    #[test]
    fn expand_requires_all_slots() {
        let (p, t) = timeline();
        let mut s = t.empty_set();
        s.bind(t.lookup("user").unwrap(), Bytes::from_static(b"ann"));
        assert!(p.expand(&s).is_none());
    }

    #[test]
    fn expand_checks_fixed_width() {
        let mut t = SlotTable::new();
        let p = Pattern::parse("x|<a:3>", &mut t).unwrap();
        let mut s = t.empty_set();
        s.bind(t.lookup("a").unwrap(), Bytes::from_static(b"ab"));
        assert!(p.expand(&s).is_none());
        s.bind(t.lookup("a").unwrap(), Bytes::from_static(b"abc"));
        assert_eq!(p.expand(&s).unwrap(), Key::from("x|abc"));
    }

    #[test]
    fn determined_prefix_stops_at_unbound() {
        let (p, t) = timeline();
        let mut s = t.empty_set();
        s.bind(t.lookup("user").unwrap(), Bytes::from_static(b"ann"));
        let (prefix, ti) = p.determined_prefix(&s);
        assert_eq!(prefix, b"t|ann|".to_vec());
        assert_eq!(ti, 3); // stopped at <time>
        let basic = p.containing_range_basic(&s);
        assert_eq!(basic, KeyRange::prefix("t|ann|"));
    }

    #[test]
    fn shared_prefix_recovers_component_prefix() {
        // [t|ann|100, t|ann|+): everything shares "t|ann|", even though the
        // raw lcp of the endpoint strings is only "t|ann".
        let range = KeyRange::new("t|ann|100", "t|ann}");
        assert_eq!(shared_prefix(&range), b"t|ann|".to_vec());
        // A scan with a narrower end key shares the longer prefix.
        let range = KeyRange::new("t|ann|100", "t|ann|200");
        assert_eq!(shared_prefix(&range), b"t|ann|".to_vec());
        let range = KeyRange::with_bound("t|ann|100", UpperBound::Unbounded);
        assert_eq!(shared_prefix(&range), Vec::<u8>::new());
    }

    #[test]
    fn derive_slots_paper_example() {
        // scan(t|ann|100, t|ann|+) derives {user -> ann} (§3.1)
        let (p, t) = timeline();
        let mut s = t.empty_set();
        p.derive_slots(&KeyRange::new("t|ann|100", "t|ann}"), &mut s);
        assert_eq!(s.get(t.lookup("user").unwrap()).unwrap().as_ref(), b"ann");
        assert!(!s.is_bound(t.lookup("time").unwrap()));
    }

    #[test]
    fn derive_slots_cross_timeline_scan_binds_nothing() {
        let (p, t) = timeline();
        let mut s = t.empty_set();
        p.derive_slots(&KeyRange::new("t|ann|100", "t|bob|200"), &mut s);
        assert_eq!(s.bound_count(), 0);
    }

    #[test]
    fn derive_slots_binds_fixed_width_without_delimiter() {
        let mut t = SlotTable::new();
        let p = Pattern::parse("t|<user>|<time:3>|<poster>", &mut t).unwrap();
        let mut s = t.empty_set();
        // shared prefix is t|ann|123| -> binds user and time
        p.derive_slots(&KeyRange::new("t|ann|123|a", "t|ann|123|q"), &mut s);
        assert_eq!(s.get(t.lookup("user").unwrap()).unwrap().as_ref(), b"ann");
        assert_eq!(s.get(t.lookup("time").unwrap()).unwrap().as_ref(), b"123");
        assert!(!s.is_bound(t.lookup("poster").unwrap()));
    }

    #[test]
    fn derive_slots_never_binds_trailing_variable_slot() {
        let mut t = SlotTable::new();
        let p = Pattern::parse("k|<a>", &mut t).unwrap();
        let mut s = t.empty_set();
        p.derive_slots(&KeyRange::new("k|abc", "k|abd"), &mut s);
        assert_eq!(s.bound_count(), 0);
    }
}
