//! Containing ranges: translating output-range constraints into minimal
//! source-key ranges (§3.1).
//!
//! "Given a slot set, a source pattern, and the requested output key
//! range, Pequod can calculate a minimal range of source keys that might
//! affect the scan's results." For the timeline join, a scan of
//! `[t|ann|100, t|ann|200)` with slots `{user→ann, poster→bob}` yields
//! the post range `[p|bob|100, p|bob|200)`.
//!
//! The computation emits the source pattern's determined prefix, then
//! *walks* the scan bound's remaining bytes through the source and output
//! patterns in lockstep, transferring bytes only while the two token
//! sequences are identical (same literals, same slots). Where they
//! diverge the walk stops and the bound is widened conservatively:
//!
//! * **lower bound** — partial consumption of a variable-width slot is
//!   discarded (a shorter slot value followed by a high delimiter byte
//!   can still produce in-range output keys);
//! * **upper bound** — partial bytes are kept, and a divergence widens
//!   the end to the prefix-end of the bytes consumed so far.
//!
//! Fixed-width slots always transfer exactly, which is why the paper's
//! tight `[p|bob|100, p|bob|+)` range requires fixed-width timestamps.
//! Correctness of variable-width transfer relies on the key convention
//! that slot values contain no byte `≥` the delimiter (true for
//! `|`-separated alphanumeric keys).

use crate::pattern::{Pattern, Token};
use crate::slots::SlotSet;
use pequod_store::{Key, KeyRange, UpperBound};

/// Computes the minimal range of `source` keys that can influence
/// `output` keys within `out_range`, given the bindings in `slots`
/// (Figure 3's `ss.containingrange(source, first, last)`).
pub fn containing_range(
    source: &Pattern,
    output: &Pattern,
    slots: &SlotSet,
    out_range: &KeyRange,
) -> KeyRange {
    let (ps, s_ti) = source.determined_prefix(slots);
    let ps_key = Key::from(ps.clone());
    if s_ti == source.tokens().len() {
        // Source key fully determined.
        return KeyRange::single(ps_key);
    }
    let base = KeyRange::prefix(ps_key.clone());
    let Token::Slot { id: s_id, .. } = &source.tokens()[s_ti] else {
        unreachable!("determined_prefix stops only at slots");
    };

    // Locate the first unbound source slot in the output pattern; every
    // output token before it must be determined for the scan bounds to
    // transfer.
    let mut po: Vec<u8> = Vec::new();
    let mut o_ti = None;
    for (ti, tok) in output.tokens().iter().enumerate() {
        match tok {
            Token::Lit(l) => po.extend_from_slice(l),
            Token::Slot { id, .. } => {
                if id == s_id {
                    o_ti = Some(ti);
                    break;
                }
                match slots.get(*id) {
                    Some(v) => po.extend_from_slice(v),
                    None => return base, // blocked by an earlier unbound slot
                }
            }
        }
    }
    let Some(o_ti) = o_ti else { return base };
    let po_key = Key::from(po.clone());
    let po_end = po_key.prefix_end();

    let src_toks = &source.tokens()[s_ti..];
    let out_toks = &output.tokens()[o_ti..];

    // Lower bound.
    let first = {
        let o1 = &out_range.first;
        if o1 <= &po_key {
            ps_key.clone()
        } else if !o1.starts_with(&po) {
            // o1 > po but shares no prefix: it lies at or above po's span.
            debug_assert!(po_end.as_ref().is_some_and(|pe| o1 >= pe));
            return KeyRange::new(ps_key.clone(), ps_key); // empty
        } else {
            let suffix = &o1.as_bytes()[po.len()..];
            let (consumed, _) = walk(suffix, src_toks, out_toks, Mode::Lower, slots);
            Key::join(&[&ps, &suffix[..consumed]])
        }
    };

    // Upper bound.
    let end = match &out_range.end {
        UpperBound::Unbounded => base.end.clone(),
        UpperBound::Excluded(o2) => {
            if o2 <= &po_key {
                return KeyRange::new(ps_key.clone(), ps_key); // empty
            } else if !o2.starts_with(&po) {
                // o2 lies above po's entire span: no constraint.
                base.end.clone()
            } else {
                let suffix = &o2.as_bytes()[po.len()..];
                let (consumed, outcome) = walk(suffix, src_toks, out_toks, Mode::Upper, slots);
                let bound = Key::join(&[&ps, &suffix[..consumed]]);
                match outcome {
                    Outcome::Exhausted => UpperBound::Excluded(bound),
                    Outcome::Diverged => match bound.prefix_end() {
                        Some(pe) => UpperBound::Excluded(pe),
                        None => UpperBound::Unbounded,
                    },
                }
            }
        }
    };

    KeyRange { first, end }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Lower,
    Upper,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Outcome {
    /// The scan-bound suffix was fully transferred.
    Exhausted,
    /// The token sequences diverged; `consumed` bytes transferred safely.
    Diverged,
}

/// Transfers bytes of `suffix` through the aligned token sequences,
/// returning how many bytes carry over to the source bound.
fn walk(
    suffix: &[u8],
    src: &[Token],
    out: &[Token],
    mode: Mode,
    slots: &SlotSet,
) -> (usize, Outcome) {
    let mut pos = 0usize;
    let mut i = 0usize;
    loop {
        if pos == suffix.len() {
            return (pos, Outcome::Exhausted);
        }
        let (Some(st), Some(ot)) = (src.get(i), out.get(i)) else {
            return (pos, Outcome::Diverged);
        };
        // Resolve bound slots to their literal bytes.
        let lit_of = |tok: &Token| -> Option<Vec<u8>> {
            match tok {
                Token::Lit(l) => Some(l.to_vec()),
                Token::Slot { id, .. } => slots.get(*id).map(|v| v.to_vec()),
            }
        };
        match (lit_of(st), lit_of(ot)) {
            (Some(a), Some(b)) => {
                // Both effectively literal: must be identical to transfer.
                if a != b {
                    return (pos, Outcome::Diverged);
                }
                let n = a.len().min(suffix.len() - pos);
                let m = suffix[pos..pos + n]
                    .iter()
                    .zip(a.iter())
                    .take_while(|(x, y)| x == y)
                    .count();
                if m < n {
                    // Byte mismatch inside the literal: transfer the agreeing
                    // bytes and stop (safe in both modes; see module docs).
                    return (pos + m, Outcome::Diverged);
                }
                if n < a.len() {
                    // Suffix exhausted mid-literal.
                    return (pos + n, Outcome::Exhausted);
                }
                pos += n;
                i += 1;
            }
            (None, None) => {
                // Both unbound slots: must be the same slot, same width.
                let (Token::Slot { id: sa, width: wa }, Token::Slot { id: sb, width: wb }) =
                    (st, ot)
                else {
                    unreachable!()
                };
                if sa != sb || wa != wb {
                    return (pos, Outcome::Diverged);
                }
                match wa {
                    Some(w) => {
                        let n = (*w).min(suffix.len() - pos);
                        if n < *w {
                            // Mid-slot, but fixed width transfers exactly.
                            return (pos + n, Outcome::Exhausted);
                        }
                        pos += w;
                        i += 1;
                    }
                    None => {
                        // Variable-width: extent defined by the next literal,
                        // which must be identical in both patterns.
                        let next_src = src.get(i + 1);
                        let next_out = out.get(i + 1);
                        match (next_src, next_out) {
                            (None, None) => {
                                // Both patterns end here: slot takes the rest.
                                return (suffix.len(), Outcome::Exhausted);
                            }
                            (Some(Token::Lit(a)), Some(Token::Lit(b))) if a == b => {
                                match find(&suffix[pos..], a) {
                                    Some(off) => {
                                        pos += off;
                                        i += 1; // literal verified next turn
                                    }
                                    None => {
                                        // Suffix ends inside the slot value.
                                        return match mode {
                                            Mode::Lower => (pos, Outcome::Exhausted),
                                            Mode::Upper => (suffix.len(), Outcome::Exhausted),
                                        };
                                    }
                                }
                            }
                            _ => return (pos, Outcome::Diverged),
                        }
                    }
                }
            }
            _ => return (pos, Outcome::Diverged),
        }
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() {
        return Some(0);
    }
    if needle.len() > haystack.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slots::SlotTable;
    use bytes::Bytes;

    struct Setup {
        table: SlotTable,
        source_s: Pattern,
        source_p: Pattern,
        output: Pattern,
    }

    fn timeline(fixed_time: bool) -> Setup {
        let mut table = SlotTable::new();
        let time = if fixed_time { "<time:3>" } else { "<time>" };
        let output = Pattern::parse(&format!("t|<user>|{time}|<poster>"), &mut table).unwrap();
        let source_s = Pattern::parse("s|<user>|<poster>", &mut table).unwrap();
        let source_p = Pattern::parse(&format!("p|<poster>|{time}"), &mut table).unwrap();
        Setup {
            table,
            source_s,
            source_p,
            output,
        }
    }

    fn bind(setup: &Setup, pairs: &[(&str, &str)]) -> SlotSet {
        let mut s = setup.table.empty_set();
        for (name, v) in pairs {
            s.bind(
                setup.table.lookup(name).unwrap(),
                Bytes::copy_from_slice(v.as_bytes()),
            );
        }
        s
    }

    #[test]
    fn check_source_blocked_by_unbound_time() {
        // First source of the timeline join: only `user` is bound, and
        // `poster` is blocked in the output by the unbound `time`, so the
        // containing range is the whole subscription list (paper §3.1:
        // `[s|ann|, s|ann|+)`).
        let setup = timeline(true);
        let slots = bind(&setup, &[("user", "ann")]);
        let got = containing_range(
            &setup.source_s,
            &setup.output,
            &slots,
            &KeyRange::new("t|ann|100", "t|ann}"),
        );
        assert_eq!(got, KeyRange::prefix("s|ann|"));
    }

    #[test]
    fn post_source_fixed_width_is_tight() {
        // Paper §3.1: scan [t|ann|100, t|ann|200) with {user→ann,
        // poster→bob} gives the minimal post range [p|bob|100, p|bob|200).
        let setup = timeline(true);
        let slots = bind(&setup, &[("user", "ann"), ("poster", "bob")]);
        let got = containing_range(
            &setup.source_p,
            &setup.output,
            &slots,
            &KeyRange::new("t|ann|100", "t|ann|200"),
        );
        assert_eq!(got, KeyRange::new("p|bob|100", "p|bob|200"));
    }

    #[test]
    fn post_source_open_ended_scan() {
        // [t|ann|100, t|ann|+) -> [p|bob|100, p|bob|+)
        let setup = timeline(true);
        let slots = bind(&setup, &[("user", "ann"), ("poster", "bob")]);
        let got = containing_range(
            &setup.source_p,
            &setup.output,
            &slots,
            &KeyRange::new("t|ann|100", "t|ann}"),
        );
        assert_eq!(got, KeyRange::new("p|bob|100", "p|bob}"));
    }

    #[test]
    fn variable_width_time_is_conservative() {
        // Without fixed-width timestamps the lower bound cannot transfer
        // (a post key `p|bob|1` can produce output `t|ann|1|bob` which
        // sorts above `t|ann|100`), so the range widens to all posts.
        let setup = timeline(false);
        let slots = bind(&setup, &[("user", "ann"), ("poster", "bob")]);
        let got = containing_range(
            &setup.source_p,
            &setup.output,
            &slots,
            &KeyRange::new("t|ann|100", "t|ann|200"),
        );
        assert_eq!(got.first, Key::from("p|bob|"));
        // Upper bound may keep partial bytes (safe) but must cover all
        // posts that can appear in the scan.
        assert!(got.contains(&Key::from("p|bob|1")));
        assert!(got.contains(&Key::from("p|bob|199")));
    }

    #[test]
    fn scan_before_all_outputs_keeps_source_start() {
        let setup = timeline(true);
        let slots = bind(&setup, &[("user", "ann"), ("poster", "bob")]);
        let got = containing_range(
            &setup.source_p,
            &setup.output,
            &slots,
            &KeyRange::new("t|ann", "t|ann|200"),
        );
        assert_eq!(got, KeyRange::new("p|bob|", "p|bob|200"));
    }

    #[test]
    fn scan_outside_bound_prefix_is_empty() {
        let setup = timeline(true);
        let slots = bind(&setup, &[("user", "ann"), ("poster", "bob")]);
        // Scan of bob's timeline with slots bound to ann: no overlap.
        let got = containing_range(
            &setup.source_p,
            &setup.output,
            &slots,
            &KeyRange::new("t|bob|100", "t|bob|200"),
        );
        assert!(got.is_empty());
    }

    #[test]
    fn scan_covering_everything_keeps_prefix_range() {
        let setup = timeline(true);
        let slots = bind(&setup, &[("user", "ann"), ("poster", "bob")]);
        let got = containing_range(
            &setup.source_p,
            &setup.output,
            &slots,
            &KeyRange::new("a", "z"),
        );
        assert_eq!(got, KeyRange::prefix("p|bob|"));
    }

    #[test]
    fn fully_bound_source_is_single_key() {
        let setup = timeline(true);
        let slots = bind(
            &setup,
            &[("user", "ann"), ("poster", "bob"), ("time", "100")],
        );
        let got = containing_range(
            &setup.source_p,
            &setup.output,
            &slots,
            &KeyRange::new("t|ann|100", "t|ann|200"),
        );
        assert_eq!(got, KeyRange::single("p|bob|100"));
    }

    #[test]
    fn cross_timeline_scan_unbound_user() {
        // [t|ann|100, t|bob|200) with nothing bound: the subscription
        // source gets a conservative range covering both users.
        let setup = timeline(true);
        let slots = setup.table.empty_set();
        let got = containing_range(
            &setup.source_s,
            &setup.output,
            &slots,
            &KeyRange::new("t|ann|100", "t|bob|200"),
        );
        // Must contain both users' subscriptions.
        assert!(got.contains(&Key::from("s|ann|bob")));
        assert!(got.contains(&Key::from("s|ann|aaa"))); // poster below 100: still needed
        assert!(got.contains(&Key::from("s|bob|zed")));
        assert!(!got.contains(&Key::from("s|am|zed"))); // user below ann
    }

    #[test]
    fn unbounded_scan_end() {
        let setup = timeline(true);
        let slots = bind(&setup, &[("user", "ann"), ("poster", "bob")]);
        let got = containing_range(
            &setup.source_p,
            &setup.output,
            &slots,
            &KeyRange::with_bound("t|ann|100", UpperBound::Unbounded),
        );
        assert_eq!(got, KeyRange::new("p|bob|100", "p|bob}"));
    }

    /// Brute-force check: enumerate a small universe of source keys, run
    /// the real semantics (which outputs land in the scan range), and
    /// verify every contributing source key falls inside the computed
    /// containing range.
    #[test]
    fn containing_range_is_sound_by_enumeration() {
        for fixed in [true, false] {
            let setup = timeline(fixed);
            let users = ["ann", "bob"];
            let posters = ["ali", "bob", "liz"];
            let times: Vec<String> = if fixed {
                (0..6).map(|i| format!("{:03}", i * 37)).collect()
            } else {
                vec![
                    "1".into(),
                    "12".into(),
                    "123".into(),
                    "2".into(),
                    "20".into(),
                ]
            };
            let scans = [
                KeyRange::new("t|ann|037", "t|ann|112"),
                KeyRange::new("t|ann|1", "t|ann|2"),
                KeyRange::new("t|ann", "t|bob|112"),
                KeyRange::prefix("t|ann|"),
                KeyRange::all(),
            ];
            for scan in &scans {
                for user in users {
                    for poster in posters {
                        let slots = bind(&setup, &[("user", user), ("poster", poster)]);
                        let crange = containing_range(&setup.source_p, &setup.output, &slots, scan);
                        for time in &times {
                            let source_key = Key::from(format!("p|{poster}|{time}"));
                            let out_key = Key::from(format!("t|{user}|{time}|{poster}"));
                            if scan.contains(&out_key) {
                                assert!(
                                    crange.contains(&source_key),
                                    "fixed={fixed} scan={scan:?} slots=({user},{poster}) \
                                     source {source_key:?} contributes {out_key:?} but \
                                     containing range {crange:?} misses it"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Tightness spot check (fixed width): keys outside the minimal range
    /// are excluded.
    #[test]
    fn containing_range_is_tight_for_fixed_width() {
        let setup = timeline(true);
        let slots = bind(&setup, &[("user", "ann"), ("poster", "bob")]);
        let crange = containing_range(
            &setup.source_p,
            &setup.output,
            &slots,
            &KeyRange::new("t|ann|100", "t|ann|200"),
        );
        assert!(!crange.contains(&Key::from("p|bob|099")));
        assert!(!crange.contains(&Key::from("p|bob|200")));
        assert!(!crange.contains(&Key::from("p|liz|150")));
        assert!(crange.contains(&Key::from("p|bob|100")));
        assert!(crange.contains(&Key::from("p|bob|199")));
    }
}
