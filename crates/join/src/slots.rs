//! Slot tables and slot sets.
//!
//! A cache join's patterns share named *slots* (`user`, `time`, `poster`
//! in the timeline join). Slot names are interned per join into a
//! [`SlotTable`]; a [`SlotSet`] is a partial assignment of byte-string
//! values to those slots, built up as query execution matches source keys
//! (§3.1: "a slot set is a set of slot assignments derived from a cache
//! join and a key or key range").

use bytes::Bytes;
use std::fmt;

/// Index of a slot within one join's slot table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SlotId(pub u16);

/// The interned slot names of one join.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SlotTable {
    names: Vec<String>,
}

impl SlotTable {
    /// Creates an empty table.
    pub fn new() -> SlotTable {
        SlotTable::default()
    }

    /// Returns the id for `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> SlotId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            SlotId(i as u16)
        } else {
            self.names.push(name.to_string());
            SlotId((self.names.len() - 1) as u16)
        }
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<SlotId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| SlotId(i as u16))
    }

    /// The name of a slot id.
    pub fn name(&self, id: SlotId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no slots are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Creates a slot set sized for this table.
    pub fn empty_set(&self) -> SlotSet {
        SlotSet {
            values: vec![None; self.names.len()],
        }
    }
}

/// A partial assignment of values to a join's slots.
#[derive(Clone, PartialEq, Eq)]
pub struct SlotSet {
    values: Vec<Option<Bytes>>,
}

impl SlotSet {
    /// The value bound to `id`, if any.
    #[inline]
    pub fn get(&self, id: SlotId) -> Option<&Bytes> {
        self.values.get(id.0 as usize).and_then(|v| v.as_ref())
    }

    /// True if `id` has a value.
    #[inline]
    pub fn is_bound(&self, id: SlotId) -> bool {
        self.get(id).is_some()
    }

    /// Binds `id` to `value`, replacing any previous binding.
    pub fn bind(&mut self, id: SlotId, value: Bytes) {
        let idx = id.0 as usize;
        if idx >= self.values.len() {
            self.values.resize(idx + 1, None);
        }
        self.values[idx] = Some(value);
    }

    /// Attempts to bind `id` to `value`; if already bound, succeeds only
    /// when the existing value matches (the join's consistency rule:
    /// "slots common to multiple source keys have consistent values").
    pub fn unify(&mut self, id: SlotId, value: &[u8]) -> bool {
        match self.get(id) {
            Some(existing) => existing.as_ref() == value,
            None => {
                self.bind(id, Bytes::copy_from_slice(value));
                true
            }
        }
    }

    /// Removes a binding.
    pub fn unbind(&mut self, id: SlotId) {
        if let Some(v) = self.values.get_mut(id.0 as usize) {
            *v = None;
        }
    }

    /// Number of bound slots.
    pub fn bound_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Merges another slot set into this one; returns false on conflict.
    pub fn merge(&mut self, other: &SlotSet) -> bool {
        for (i, v) in other.values.iter().enumerate() {
            if let Some(v) = v {
                if !self.unify(SlotId(i as u16), v) {
                    return false;
                }
            }
        }
        true
    }

    /// Renders the slot set with names from `table` for debugging.
    pub fn display<'a>(&'a self, table: &'a SlotTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a SlotSet, &'a SlotTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{{")?;
                let mut first = true;
                for (i, v) in self.0.values.iter().enumerate() {
                    if let Some(v) = v {
                        if !first {
                            write!(f, ", ")?;
                        }
                        first = false;
                        write!(
                            f,
                            "{} -> {}",
                            self.1.name(SlotId(i as u16)),
                            String::from_utf8_lossy(v)
                        )?;
                    }
                }
                write!(f, "}}")
            }
        }
        D(self, table)
    }
}

impl fmt::Debug for SlotSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slots{{")?;
        let mut first = true;
        for (i, v) in self.values.iter().enumerate() {
            if let Some(v) = v {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "#{i} -> {:?}", String::from_utf8_lossy(v))?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes() {
        let mut t = SlotTable::new();
        let a = t.intern("user");
        let b = t.intern("time");
        let a2 = t.intern("user");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "user");
        assert_eq!(t.lookup("time"), Some(b));
        assert_eq!(t.lookup("poster"), None);
    }

    #[test]
    fn unify_checks_consistency() {
        let mut t = SlotTable::new();
        let user = t.intern("user");
        let mut s = t.empty_set();
        assert!(s.unify(user, b"ann"));
        assert!(s.unify(user, b"ann")); // same value fine
        assert!(!s.unify(user, b"bob")); // conflict
        assert_eq!(s.get(user).map(|b| b.as_ref()), Some(&b"ann"[..]));
    }

    #[test]
    fn merge_detects_conflicts() {
        let mut t = SlotTable::new();
        let user = t.intern("user");
        let time = t.intern("time");
        let mut a = t.empty_set();
        a.bind(user, Bytes::from_static(b"ann"));
        let mut b = t.empty_set();
        b.bind(time, Bytes::from_static(b"100"));
        assert!(a.merge(&b));
        assert_eq!(a.bound_count(), 2);
        let mut c = t.empty_set();
        c.bind(user, Bytes::from_static(b"bob"));
        assert!(!a.merge(&c));
    }

    #[test]
    fn unbind_clears() {
        let mut t = SlotTable::new();
        let user = t.intern("user");
        let mut s = t.empty_set();
        s.bind(user, Bytes::from_static(b"ann"));
        s.unbind(user);
        assert!(!s.is_bound(user));
        assert_eq!(s.bound_count(), 0);
    }
}
