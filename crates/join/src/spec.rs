//! Cache join specifications: the textual grammar of Figure 2 and its
//! validation rules.
//!
//! ```text
//! <cachejoin> ::= <key> "=" ["push" | "pull" | "snapshot" <T>] <sources> [";"]
//! <sources>   ::= <source> | <sources> <source>
//! <source>    ::= <operator> <key>
//! <operator>  ::= "copy" | "min" | "max" | "count" | "sum" | "check"
//! ```
//!
//! Example (the Twip timeline join):
//!
//! ```text
//! t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>
//! ```
//!
//! Validation enforces the paper's technical requirements: in a join with
//! `n` sources exactly `n − 1` operators are `check` (§3); a join must
//! not be self-recursive; every output slot must be bound by some source;
//! a slot must have a consistent fixed width everywhere it appears.

use crate::pattern::{Pattern, PatternError};
use crate::slots::{SlotId, SlotTable};
use std::fmt;
use std::time::Duration;

/// A source operator (Figure 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operator {
    /// Copy the source value to the output key.
    Copy,
    /// The source key must exist; its value is ignored.
    Check,
    /// Count matching source keys.
    Count,
    /// Sum source values parsed as decimal integers.
    Sum,
    /// Lexicographic minimum of source values.
    Min,
    /// Lexicographic maximum of source values.
    Max,
}

impl Operator {
    /// True for aggregate operators (`count`, `sum`, `min`, `max`).
    pub fn is_aggregate(self) -> bool {
        matches!(
            self,
            Operator::Count | Operator::Sum | Operator::Min | Operator::Max
        )
    }

    fn parse(word: &str) -> Option<Operator> {
        Some(match word {
            "copy" => Operator::Copy,
            "check" => Operator::Check,
            "count" => Operator::Count,
            "sum" => Operator::Sum,
            "min" => Operator::Min,
            "max" => Operator::Max,
            _ => return None,
        })
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Operator::Copy => "copy",
            Operator::Check => "check",
            Operator::Count => "count",
            Operator::Sum => "sum",
            Operator::Min => "min",
            Operator::Max => "max",
        };
        write!(f, "{s}")
    }
}

/// A maintenance annotation (§3.4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Maintenance {
    /// Eager incremental maintenance (the default).
    #[default]
    Push,
    /// Recompute from scratch on every query; never cache results.
    Pull,
    /// Compute from scratch, cache without updates for the given number
    /// of engine ticks (the paper's `snapshot T`, with ticks standing in
    /// for seconds so simulations stay deterministic).
    Snapshot(u64),
}

impl Maintenance {
    /// Converts a wall-clock snapshot duration to ticks at one tick per
    /// millisecond, the convention used by the TCP server.
    pub fn snapshot_from_duration(d: Duration) -> Maintenance {
        Maintenance::Snapshot(d.as_millis() as u64)
    }
}

/// One source of a join: an operator applied to a key pattern.
#[derive(Clone, Debug)]
pub struct Source {
    /// The operator applied to matching keys.
    pub op: Operator,
    /// The source key pattern.
    pub pattern: Pattern,
}

/// A validated cache join specification.
#[derive(Clone, Debug)]
pub struct JoinSpec {
    /// The output key pattern.
    pub output: Pattern,
    /// The sources, in execution (loop-nesting) order.
    pub sources: Vec<Source>,
    /// Maintenance annotation.
    pub maintenance: Maintenance,
    /// The join's interned slot names.
    pub slots: SlotTable,
    /// Non-fatal validation warnings (e.g. potentially ambiguous copies).
    pub warnings: Vec<String>,
}

/// Errors from parsing or validating a join specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JoinError {
    /// The text did not match the grammar.
    Syntax(String),
    /// A key pattern failed to parse.
    Pattern(String, PatternError),
    /// The join has no sources.
    NoSources,
    /// The number of `check` operators is not `n − 1`.
    CheckCount {
        /// Sources in the join.
        sources: usize,
        /// `check` operators found.
        checks: usize,
    },
    /// An output slot is not bound by any source.
    UnboundOutputSlot(String),
    /// The output range overlaps a source range (self-recursion).
    Recursive(String),
    /// A slot has inconsistent fixed widths across patterns.
    InconsistentWidth(String),
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::Syntax(s) => write!(f, "syntax error: {s}"),
            JoinError::Pattern(p, e) => write!(f, "bad pattern {p:?}: {e}"),
            JoinError::NoSources => write!(f, "join has no sources"),
            JoinError::CheckCount { sources, checks } => write!(
                f,
                "join with {sources} sources must have exactly {} check operators, found {checks}",
                sources - 1
            ),
            JoinError::UnboundOutputSlot(s) => {
                write!(f, "output slot <{s}> is not bound by any source")
            }
            JoinError::Recursive(p) => {
                write!(f, "source {p:?} overlaps the join's own output range")
            }
            JoinError::InconsistentWidth(s) => {
                write!(f, "slot <{s}> has inconsistent widths across patterns")
            }
        }
    }
}

impl std::error::Error for JoinError {}

impl JoinSpec {
    /// Parses and validates one cache join from text. A trailing `;` is
    /// permitted; `//` and `#` comments are not (strip them with
    /// [`parse_joins`]).
    pub fn parse(text: &str) -> Result<JoinSpec, JoinError> {
        let text = text.trim().trim_end_matches(';').trim();
        let (out_text, rest) = text
            .split_once('=')
            .ok_or_else(|| JoinError::Syntax(format!("missing '=' in {text:?}")))?;
        let out_text = out_text.trim();
        let mut words = rest.split_whitespace().peekable();

        let mut maintenance = Maintenance::Push;
        match words.peek().copied() {
            Some("push") => {
                words.next();
            }
            Some("pull") => {
                maintenance = Maintenance::Pull;
                words.next();
            }
            Some("snapshot") => {
                words.next();
                let t = words
                    .next()
                    .ok_or_else(|| JoinError::Syntax("snapshot needs a duration".into()))?;
                let ticks: u64 = t
                    .parse()
                    .map_err(|_| JoinError::Syntax(format!("bad snapshot duration {t:?}")))?;
                maintenance = Maintenance::Snapshot(ticks);
            }
            _ => {}
        }

        let mut slots = SlotTable::new();
        let output = Pattern::parse(out_text, &mut slots)
            .map_err(|e| JoinError::Pattern(out_text.to_string(), e))?;

        let mut sources = Vec::new();
        while let Some(word) = words.next() {
            let op = Operator::parse(word)
                .ok_or_else(|| JoinError::Syntax(format!("expected operator, found {word:?}")))?;
            let pat_text = words
                .next()
                .ok_or_else(|| JoinError::Syntax(format!("operator {op} needs a key pattern")))?;
            let pattern = Pattern::parse(pat_text, &mut slots)
                .map_err(|e| JoinError::Pattern(pat_text.to_string(), e))?;
            sources.push(Source { op, pattern });
        }

        let mut spec = JoinSpec {
            output,
            sources,
            maintenance,
            slots,
            warnings: Vec::new(),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// The source whose operator produces the output value (the single
    /// non-`check` source).
    #[allow(clippy::expect_used)] // see the audit allow below
    pub fn value_source(&self) -> usize {
        self.sources
            .iter()
            .position(|s| s.op != Operator::Check)
            // audit: allow(no-unwrap) — `parse` runs `validate`, which
            // rejects joins without exactly one non-check source.
            .expect("validated join has a value source")
    }

    /// The value operator of the join.
    pub fn value_op(&self) -> Operator {
        self.sources[self.value_source()].op
    }

    /// True if the output value is an aggregate.
    pub fn is_aggregate(&self) -> bool {
        self.value_op().is_aggregate()
    }

    /// The key range the join's outputs occupy.
    pub fn output_range(&self) -> pequod_store::KeyRange {
        self.output.key_space()
    }

    fn validate(&mut self) -> Result<(), JoinError> {
        if self.sources.is_empty() {
            return Err(JoinError::NoSources);
        }
        let checks = self
            .sources
            .iter()
            .filter(|s| s.op == Operator::Check)
            .count();
        if checks != self.sources.len() - 1 {
            return Err(JoinError::CheckCount {
                sources: self.sources.len(),
                checks,
            });
        }

        // Consistent fixed widths per slot across all patterns.
        let mut widths: Vec<Option<Option<usize>>> = vec![None; self.slots.len()];
        for pat in std::iter::once(&self.output).chain(self.sources.iter().map(|s| &s.pattern)) {
            for tok in pat.tokens() {
                if let crate::pattern::Token::Slot { id, width } = tok {
                    let entry = &mut widths[id.0 as usize];
                    match entry {
                        None => *entry = Some(*width),
                        Some(w) if w == width => {}
                        Some(_) => {
                            return Err(JoinError::InconsistentWidth(
                                self.slots.name(*id).to_string(),
                            ))
                        }
                    }
                }
            }
        }

        // Every output slot must be bound by some source.
        let source_slots: Vec<SlotId> = self
            .sources
            .iter()
            .flat_map(|s| s.pattern.slots())
            .collect();
        for slot in self.output.slots() {
            if !source_slots.contains(&slot) {
                return Err(JoinError::UnboundOutputSlot(
                    self.slots.name(slot).to_string(),
                ));
            }
        }

        // Self-recursion: a source range overlapping the output range.
        let out_range = self.output.key_space();
        for s in &self.sources {
            if s.pattern.key_space().overlaps(&out_range) {
                return Err(JoinError::Recursive(s.pattern.text().to_string()));
            }
        }

        // Ambiguity lint (§3): a copy join whose value source has slots
        // that do not appear in the output can map several source keys to
        // one output key with no way to combine their values. The paper
        // leaves such joins to the user; we warn.
        if self.value_op() == Operator::Copy {
            let out_slots: Vec<SlotId> = self.output.slots().collect();
            let vsrc = &self.sources[self.value_source()];
            for slot in vsrc.pattern.slots() {
                if !out_slots.contains(&slot) {
                    self.warnings.push(format!(
                        "copy source slot <{}> does not appear in the output key; \
                         colliding outputs are undefined",
                        self.slots.name(slot)
                    ));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for JoinSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} =", self.output)?;
        match self.maintenance {
            Maintenance::Push => {}
            Maintenance::Pull => write!(f, " pull")?,
            Maintenance::Snapshot(t) => write!(f, " snapshot {t}")?,
        }
        for s in &self.sources {
            write!(f, " {} {}", s.op, s.pattern)?;
        }
        Ok(())
    }
}

/// Parses a multi-join installation text: joins separated by `;`, with
/// `//` and `#` line comments and blank lines ignored.
pub fn parse_joins(text: &str) -> Result<Vec<JoinSpec>, JoinError> {
    let mut cleaned = String::new();
    for line in text.lines() {
        let line = match line.find("//") {
            Some(i) => &line[..i],
            None => line,
        };
        let line = match line.find('#') {
            Some(i) => &line[..i],
            None => line,
        };
        cleaned.push_str(line);
        cleaned.push('\n');
    }
    cleaned
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(JoinSpec::parse)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TIMELINE: &str =
        "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>";

    #[test]
    fn parse_timeline_join() {
        let j = JoinSpec::parse(TIMELINE).unwrap();
        assert_eq!(j.sources.len(), 2);
        assert_eq!(j.sources[0].op, Operator::Check);
        assert_eq!(j.sources[1].op, Operator::Copy);
        assert_eq!(j.maintenance, Maintenance::Push);
        assert_eq!(j.value_source(), 1);
        assert!(j.warnings.is_empty());
        assert_eq!(j.output_range(), pequod_store::KeyRange::prefix("t|"));
    }

    #[test]
    fn parse_annotations() {
        let j = JoinSpec::parse("a|<x> = pull copy b|<x>;").unwrap();
        assert_eq!(j.maintenance, Maintenance::Pull);
        let j = JoinSpec::parse("a|<x> = snapshot 30 copy b|<x>").unwrap();
        assert_eq!(j.maintenance, Maintenance::Snapshot(30));
        let j = JoinSpec::parse("a|<x> = push copy b|<x>").unwrap();
        assert_eq!(j.maintenance, Maintenance::Push);
    }

    #[test]
    fn parse_aggregate_join() {
        let j = JoinSpec::parse("karma|<author> = count vote|<author>|<id>|<voter>").unwrap();
        assert!(j.is_aggregate());
        assert_eq!(j.value_op(), Operator::Count);
        assert_eq!(j.sources.len(), 1);
    }

    #[test]
    fn check_count_rule() {
        // two value operators
        assert!(matches!(
            JoinSpec::parse("a|<x> = copy b|<x> copy c|<x>"),
            Err(JoinError::CheckCount {
                sources: 2,
                checks: 0
            })
        ));
        // all checks
        assert!(matches!(
            JoinSpec::parse("a|<x> = check b|<x> check c|<x>"),
            Err(JoinError::CheckCount { .. })
        ));
        assert!(matches!(
            JoinSpec::parse("a|<x> ="),
            Err(JoinError::NoSources)
        ));
    }

    #[test]
    fn unbound_output_slot_rejected() {
        assert!(matches!(
            JoinSpec::parse("a|<x>|<y> = copy b|<x>"),
            Err(JoinError::UnboundOutputSlot(s)) if s == "y"
        ));
    }

    #[test]
    fn recursive_join_rejected() {
        assert!(matches!(
            JoinSpec::parse("t|<x> = copy t|<x>|old"),
            Err(JoinError::Recursive(_))
        ));
    }

    #[test]
    fn inconsistent_widths_rejected() {
        assert!(matches!(
            JoinSpec::parse("a|<t:4> = copy b|<t:8>"),
            Err(JoinError::InconsistentWidth(_))
        ));
    }

    #[test]
    fn ambiguous_copy_warns() {
        // Missing |poster in output: the paper's example of an ambiguous
        // join that should warn, not fail (§3).
        let j = JoinSpec::parse("t|<user>|<time> = check s|<user>|<poster> copy p|<poster>|<time>")
            .unwrap();
        assert_eq!(j.warnings.len(), 1);
        assert!(j.warnings[0].contains("poster"));
    }

    #[test]
    fn syntax_errors() {
        assert!(matches!(
            JoinSpec::parse("nonsense"),
            Err(JoinError::Syntax(_))
        ));
        assert!(matches!(
            JoinSpec::parse("a|<x> = frobnicate b|<x>"),
            Err(JoinError::Syntax(_))
        ));
        assert!(matches!(
            JoinSpec::parse("a|<x> = copy"),
            Err(JoinError::Syntax(_))
        ));
        assert!(matches!(
            JoinSpec::parse("a|<x> = snapshot copy b|<x>"),
            Err(JoinError::Syntax(_))
        ));
    }

    #[test]
    fn parse_joins_with_comments() {
        let text = r#"
            // timeline join for ordinary users
            t|<user>|<time:10>|<poster> = check s|<user>|<poster>
                copy p|<poster>|<time:10>;
            # celebrity helper
            ct|<time:10>|<poster> = copy cp|<poster>|<time:10>;
        "#;
        let joins = parse_joins(text).unwrap();
        assert_eq!(joins.len(), 2);
        assert_eq!(joins[1].output.text(), "ct|<time:10>|<poster>");
    }

    #[test]
    fn malformed_patterns_return_err() {
        use crate::pattern::PatternError;
        // Unterminated slot, in the output and in a source.
        assert!(matches!(
            JoinSpec::parse("t|<user = copy p|<user>"),
            Err(JoinError::Pattern(_, PatternError::UnterminatedSlot))
        ));
        assert!(matches!(
            JoinSpec::parse("t|<user> = copy p|<user"),
            Err(JoinError::Pattern(_, PatternError::UnterminatedSlot))
        ));
        // Widths must be positive integers.
        assert!(matches!(
            JoinSpec::parse("t|<t:xx> = copy p|<t:xx>"),
            Err(JoinError::Pattern(_, PatternError::BadWidth(_)))
        ));
        assert!(matches!(
            JoinSpec::parse("t|<t:0> = copy p|<t:0>"),
            Err(JoinError::Pattern(_, PatternError::BadWidth(_)))
        ));
        // Slot names must be nonempty [A-Za-z0-9_]+.
        assert!(matches!(
            JoinSpec::parse("t|<> = copy p|<x>"),
            Err(JoinError::Pattern(_, PatternError::BadSlotName(_)))
        ));
        assert!(matches!(
            JoinSpec::parse("t|<a-b> = copy p|<x>"),
            Err(JoinError::Pattern(_, PatternError::BadSlotName(_)))
        ));
        // Two variable-width slots with no separating literal.
        assert!(matches!(
            JoinSpec::parse("t|<a><b> = check s|<a> copy p|<b>"),
            Err(JoinError::Pattern(_, PatternError::AdjacentVariableSlots))
        ));
        // A slot may not repeat within one pattern.
        assert!(matches!(
            JoinSpec::parse("t|<a>|<a> = copy p|<a>"),
            Err(JoinError::Pattern(_, PatternError::DuplicateSlot(_)))
        ));
        // Empty output pattern.
        assert!(matches!(
            JoinSpec::parse("= copy p|<x>"),
            Err(JoinError::Pattern(_, PatternError::Empty))
        ));
    }

    #[test]
    fn malformed_text_never_panics() {
        // Adversarial inputs must all produce Err (or Ok), never panic.
        let nasty = [
            "",
            " ",
            ";",
            "=",
            "==",
            "= =",
            "a|<x> = = copy b|<x>",
            "<",
            ">",
            "<>",
            "<<<>>>",
            "a|<x> = copy <",
            "a|<x> = snapshot 99999999999999999999999 copy b|<x>",
            "a|<x> = snapshot -3 copy b|<x>",
            "a|<x:99999999999999999999> = copy b|<x>",
            "ключ|<слот> = copy p|<слот>",
            "a|<x>\u{0}|<y> = check s|<x> copy p|<y>",
            "a|<x> = copy b|<x> ;;; c|<y> = copy d|<y>",
            "🦀|<x> = copy 🦀🦀|<x>",
        ];
        for text in nasty {
            let _ = JoinSpec::parse(text);
            let _ = parse_joins(text);
        }
        // A long pathological input exercises the literal/slot scanner.
        let long = format!("a|{} = copy b|<x>", "<".repeat(4096));
        let _ = JoinSpec::parse(&long);
    }

    #[test]
    fn display_roundtrips() {
        let j = JoinSpec::parse(TIMELINE).unwrap();
        let j2 = JoinSpec::parse(&j.to_string()).unwrap();
        assert_eq!(j2.sources.len(), 2);
        let j = JoinSpec::parse("a|<x> = snapshot 5 count b|<x>|<y>").unwrap();
        assert!(j.to_string().contains("snapshot 5"));
    }
}
