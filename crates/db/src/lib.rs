//! `pequod-db` — the persistent backing store substrate.
//!
//! The paper deploys Pequod in front of a database (§2): "a convenient
//! way to do this is to connect Pequod with a database shard, instructing
//! Pequod that some keys can be found in the database and instructing the
//! database that updates to relevant tables should be forwarded to Pequod
//! (e.g., using Postgres's notify statement)."
//!
//! This crate implements that substrate: an ordered [`Database`] with
//! range subscriptions that enqueue [`Notification`]s on every write
//! (the NOTIFY analogue), and a [`WriteAround`] deployment that wires a
//! database to a `pequod_core::Engine`: application writes go to the
//! database, reads go to the cache, and the cache lazily loads and
//! subscribes to the ranges it needs (§3.3).

// No first-party unsafe: the whole system is safe Rust over the
// vendored deps. `cargo xtask audit` additionally requires a SAFETY
// comment on any future unsafe block an allow here would admit.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pequod_core::{Client, Command, Engine, Response, ScanResult};
use pequod_store::{Key, KeyRange, Value};
use std::collections::{BTreeMap, VecDeque};
use std::ops::Bound;

/// Identifies a subscriber (e.g. one cache server).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SubscriberId(pub u32);

/// A change notification forwarded to a subscriber.
#[derive(Clone, Debug, PartialEq)]
pub struct Notification {
    /// Who should receive it.
    pub subscriber: SubscriberId,
    /// The modified key.
    pub key: Key,
    /// The new value, or `None` for a deletion.
    pub value: Option<Value>,
}

/// Database operation counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct DbStats {
    /// Row writes (insert or update).
    pub writes: u64,
    /// Row deletions.
    pub deletes: u64,
    /// Range queries served.
    pub queries: u64,
    /// Rows returned by queries.
    pub rows_read: u64,
    /// Notifications enqueued.
    pub notifications: u64,
}

/// An ordered persistent store with range subscriptions.
#[derive(Default)]
pub struct Database {
    rows: BTreeMap<Key, Value>,
    subs: Vec<(KeyRange, SubscriberId)>,
    queue: VecDeque<Notification>,
    stats: DbStats,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the database holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Operation counters.
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }

    /// Inserts or updates a row, notifying matching subscribers.
    pub fn insert(&mut self, key: impl Into<Key>, value: impl Into<Value>) {
        let key = key.into();
        let value = value.into();
        self.stats.writes += 1;
        self.rows.insert(key.clone(), value.clone());
        self.notify(&key, Some(value));
    }

    /// Deletes a row, notifying matching subscribers.
    pub fn delete(&mut self, key: &Key) {
        if self.rows.remove(key).is_some() {
            self.stats.deletes += 1;
            self.notify(key, None);
        }
    }

    fn notify(&mut self, key: &Key, value: Option<Value>) {
        for (range, sub) in &self.subs {
            if range.contains(key) {
                self.queue.push_back(Notification {
                    subscriber: *sub,
                    key: key.clone(),
                    value: value.clone(),
                });
                self.stats.notifications += 1;
            }
        }
    }

    /// Reads all rows in a range.
    pub fn query(&mut self, range: &KeyRange) -> Vec<(Key, Value)> {
        self.stats.queries += 1;
        if range.is_empty() {
            return vec![];
        }
        let upper = match range.end.as_key() {
            Some(k) => Bound::Excluded(k.clone()),
            None => Bound::Unbounded,
        };
        let rows: Vec<(Key, Value)> = self
            .rows
            .range((Bound::Included(range.first.clone()), upper))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        self.stats.rows_read += rows.len() as u64;
        rows
    }

    /// Reads a range and registers the subscriber for future changes to
    /// it (query + NOTIFY setup in one step, as a cache fetch would do).
    pub fn query_subscribe(
        &mut self,
        range: &KeyRange,
        subscriber: SubscriberId,
    ) -> Vec<(Key, Value)> {
        let rows = self.query(range);
        // Avoid exact-duplicate subscriptions.
        if !self
            .subs
            .iter()
            .any(|(r, s)| r == range && *s == subscriber)
        {
            self.subs.push((range.clone(), subscriber));
        }
        rows
    }

    /// Removes all subscriptions of a subscriber overlapping `range`
    /// (used when a cache evicts the data).
    pub fn unsubscribe(&mut self, range: &KeyRange, subscriber: SubscriberId) {
        self.subs
            .retain(|(r, s)| !(*s == subscriber && r.overlaps(range)));
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subs.len()
    }

    /// Drains pending notifications (the NOTIFY channel).
    pub fn drain_notifications(&mut self) -> Vec<Notification> {
        self.queue.drain(..).collect()
    }
}

/// A write-around deployment (§2): application writes go to the
/// database; reads go to the Pequod cache, which loads and subscribes to
/// database ranges on demand.
pub struct WriteAround {
    /// The backing database.
    pub db: Database,
    /// The cache engine.
    pub cache: Engine,
    id: SubscriberId,
    /// Fetch round-trips performed on behalf of reads.
    pub fetches: u64,
}

impl WriteAround {
    /// Wires a cache to a database. `db_tables` lists the table prefixes
    /// that live in the database (e.g. `["p|", "s|"]` for Twip).
    pub fn new(mut cache: Engine, db_tables: &[&str]) -> WriteAround {
        for t in db_tables {
            cache.mark_remote_table(*t);
        }
        WriteAround {
            db: Database::new(),
            cache,
            id: SubscriberId(0),
            fetches: 0,
        }
    }

    /// An application write: goes to the database, which notifies the
    /// cache about subscribed ranges.
    pub fn write(&mut self, key: impl Into<Key>, value: impl Into<Value>) {
        self.db.insert(key, value);
        self.pump();
    }

    /// An application delete.
    pub fn delete(&mut self, key: &Key) {
        self.db.delete(key);
        self.pump();
    }

    /// Forwards pending database notifications into the cache.
    ///
    /// Notification delivery is asynchronous in a real deployment; call
    /// sites that want to observe the update delay can batch calls.
    pub fn pump(&mut self) {
        for n in self.db.drain_notifications() {
            match n.value {
                Some(v) => self.cache.put(n.key, v),
                None => self.cache.remove(&n.key),
            }
        }
    }

    /// An application read: scans the cache, resolving missing base data
    /// from the database (with subscription) and restarting until the
    /// result is complete (§3.3).
    pub fn read(&mut self, range: &KeyRange) -> ScanResult {
        loop {
            let res = self.cache.scan(range);
            if res.is_complete() {
                return res;
            }
            for miss in &res.missing {
                self.fetches += 1;
                let rows = self.db.query_subscribe(miss, self.id);
                self.cache.install_base(miss, rows);
            }
        }
    }

    /// Point read through the cache.
    pub fn read_key(&mut self, key: &Key) -> Option<Value> {
        self.read(&KeyRange::single(key.clone()))
            .pairs
            .pop()
            .map(|(_, v)| v)
    }

    /// Range count through the cache: missing base data is fetched and
    /// subscribed exactly as [`WriteAround::read`] does, but the count
    /// is produced server-side — the pairs are never materialized for
    /// the caller.
    pub fn count(&mut self, range: &KeyRange) -> usize {
        loop {
            let res = self.cache.count_result(range);
            if res.is_complete() {
                return res.count;
            }
            for miss in &res.missing {
                self.fetches += 1;
                let rows = self.db.query_subscribe(miss, self.id);
                self.cache.install_base(miss, rows);
            }
        }
    }
}

/// The write-around deployment as a unified-API backend: writes go to
/// the database, reads go to the cache, and — matching the asynchronous
/// NOTIFY channel of a real deployment — pending database notifications
/// are pumped into the cache *between* batches (and before any read
/// inside a batch, so a batch observes its own writes), not after every
/// single write.
impl Client for WriteAround {
    fn backend_name(&self) -> &'static str {
        "writearound"
    }

    fn execute_batch(&mut self, commands: Vec<Command>) -> Vec<Response> {
        let mut dirty = false;
        let flush = |wa: &mut WriteAround, dirty: &mut bool| {
            if *dirty {
                wa.pump();
                *dirty = false;
            }
        };
        let out = commands
            .into_iter()
            .map(|command| match command {
                // Writes to tables the database owns go around the
                // cache; writes to any other table have no database
                // home, so the cache itself is the authority — routing
                // them there keeps this backend a drop-in for scripts
                // that touch undeclared tables.
                Command::Put(key, value) => {
                    if self.cache.is_remote_table(&key.table_prefix()) {
                        self.db.insert(key, value);
                        dirty = true;
                    } else {
                        self.cache.put(key, value);
                    }
                    Response::Ok
                }
                Command::Remove(key) => {
                    if self.cache.is_remote_table(&key.table_prefix()) {
                        self.db.delete(&key);
                        dirty = true;
                    } else {
                        self.cache.remove(&key);
                    }
                    Response::Ok
                }
                Command::Get(key) => {
                    flush(self, &mut dirty);
                    Response::Value(self.read_key(&key))
                }
                Command::Scan(range) => {
                    flush(self, &mut dirty);
                    Response::Pairs(self.read(&range).pairs)
                }
                Command::Count(range) => {
                    flush(self, &mut dirty);
                    Response::Count(self.count(&range) as u64)
                }
                Command::AddJoin(text) => match self.cache.add_joins_text(&text) {
                    Ok(_) => Response::Ok,
                    Err(e) => Response::Error(e.to_string()),
                },
                Command::Stats => {
                    flush(self, &mut dirty);
                    // Rows live in the database, cache-owned tables in
                    // the cache; the resident maximum approximates the
                    // authoritative key count without double-counting
                    // cached replicas.
                    let mut stats = self.cache.backend_stats();
                    stats.keys = stats.keys.max(self.db.len() as u64);
                    Response::Stats(stats)
                }
            })
            .collect();
        // Deliver the batch's remaining notifications so the next batch
        // (or direct cache access) starts from a caught-up replica.
        flush(self, &mut dirty);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pequod_core::EngineConfig;

    #[test]
    fn insert_query_delete() {
        let mut db = Database::new();
        db.insert("p|bob|100", "Hi");
        db.insert("p|bob|120", "again");
        db.insert("p|liz|124", "hello");
        assert_eq!(db.len(), 3);
        let rows = db.query(&KeyRange::prefix("p|bob|"));
        assert_eq!(rows.len(), 2);
        db.delete(&Key::from("p|bob|100"));
        assert_eq!(db.query(&KeyRange::prefix("p|bob|")).len(), 1);
        // deleting a missing row is a no-op (no notification)
        db.delete(&Key::from("p|bob|999"));
        assert_eq!(db.stats().deletes, 1);
    }

    #[test]
    fn subscriptions_notify_in_range_only() {
        let mut db = Database::new();
        db.query_subscribe(&KeyRange::prefix("p|bob|"), SubscriberId(7));
        db.insert("p|bob|100", "Hi"); // in range
        db.insert("p|liz|100", "no"); // out of range
        db.delete(&Key::from("p|bob|100"));
        let ns = db.drain_notifications();
        assert_eq!(ns.len(), 2);
        assert_eq!(ns[0].subscriber, SubscriberId(7));
        assert_eq!(ns[0].value.as_deref(), Some(&b"Hi"[..]));
        assert_eq!(ns[1].value, None);
        assert!(db.drain_notifications().is_empty());
    }

    #[test]
    fn duplicate_subscriptions_collapse() {
        let mut db = Database::new();
        db.query_subscribe(&KeyRange::prefix("p|"), SubscriberId(1));
        db.query_subscribe(&KeyRange::prefix("p|"), SubscriberId(1));
        assert_eq!(db.subscription_count(), 1);
        db.unsubscribe(&KeyRange::prefix("p|"), SubscriberId(1));
        assert_eq!(db.subscription_count(), 0);
    }

    #[test]
    fn write_around_timeline_end_to_end() {
        let mut engine = Engine::new(EngineConfig::default());
        engine
            .add_join_text(
                "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>",
            )
            .unwrap();
        let mut wa = WriteAround::new(engine, &["p|", "s|"]);

        // Application writes go to the DB only.
        wa.write("s|ann|bob", "1");
        wa.write("p|bob|0000000100", "Hi");
        assert_eq!(wa.cache.store_stats().keys, 0);

        // A timeline read pulls base data from the DB and computes.
        let tl = wa.read(&KeyRange::prefix("t|ann|"));
        assert_eq!(tl.pairs.len(), 1);
        assert!(wa.fetches >= 2); // subscriptions + posts

        // A later DB write is forwarded via NOTIFY and incrementally
        // maintained — no further fetches.
        let fetches = wa.fetches;
        wa.write("p|bob|0000000120", "again");
        let tl = wa.read(&KeyRange::prefix("t|ann|"));
        assert_eq!(tl.pairs.len(), 2);
        assert_eq!(wa.fetches, fetches);
    }

    #[test]
    fn write_around_deletion_propagates() {
        let mut engine = Engine::new(EngineConfig::default());
        engine
            .add_join_text(
                "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>",
            )
            .unwrap();
        let mut wa = WriteAround::new(engine, &["p|", "s|"]);
        wa.write("s|ann|bob", "1");
        wa.write("p|bob|0000000100", "Hi");
        assert_eq!(wa.read(&KeyRange::prefix("t|ann|")).pairs.len(), 1);
        wa.delete(&Key::from("p|bob|0000000100"));
        assert_eq!(wa.read(&KeyRange::prefix("t|ann|")).pairs.len(), 0);
    }

    #[test]
    fn client_api_batches_and_counts_server_side() {
        let mut engine = Engine::new(EngineConfig::default());
        engine
            .add_join_text(
                "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>",
            )
            .unwrap();
        let mut wa = WriteAround::new(engine, &["p|", "s|"]);
        let responses = wa.execute_batch(vec![
            Command::Put(Key::from("s|ann|bob"), Value::from_static(b"1")),
            Command::Put(Key::from("p|bob|0000000100"), Value::from_static(b"Hi")),
            // A read inside the batch observes the batch's own writes.
            Command::Count(KeyRange::prefix("t|ann|")),
            Command::Get(Key::from("t|ann|0000000100|bob")),
        ]);
        assert_eq!(responses[0], Response::Ok);
        assert_eq!(responses[2], Response::Count(1));
        assert_eq!(
            responses[3],
            Response::Value(Some(Value::from_static(b"Hi")))
        );
        // The write-only tail of a batch is pumped at batch end.
        wa.execute_batch(vec![Command::Put(
            Key::from("p|bob|0000000120"),
            Value::from_static(b"again"),
        )]);
        assert_eq!(wa.cache.count(&KeyRange::prefix("t|ann|")), 2);
        assert_eq!(Client::count(&mut wa, &KeyRange::prefix("t|ann|")), 2);
    }

    #[test]
    fn write_around_point_reads() {
        let engine = Engine::new(EngineConfig::default());
        let mut wa = WriteAround::new(engine, &["acct|"]);
        wa.write("acct|ann", "1000");
        assert_eq!(
            wa.read_key(&Key::from("acct|ann")).as_deref(),
            Some(&b"1000"[..])
        );
        assert_eq!(wa.read_key(&Key::from("acct|zed")), None);
        // Cached now: a DB update still reaches the cache via notify.
        wa.write("acct|ann", "900");
        assert_eq!(
            wa.read_key(&Key::from("acct|ann")).as_deref(),
            Some(&b"900"[..])
        );
    }
}
