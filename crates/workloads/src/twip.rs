//! Twip: the Twitter-like microblogging application (§2.1, §5.1).
//!
//! Key schema (fixed-width 10-digit decimal timestamps so containing
//! ranges translate exactly):
//!
//! * `p|poster|time → tweet` — posts
//! * `s|user|poster → "1"` — subscriptions
//! * `t|user|time|poster → tweet` — computed timelines
//! * `cp|`/`ct|` — celebrity posts and the time-primary helper range
//!
//! The module defines the join texts, the [`TwipBackend`] abstraction
//! the comparison systems implement, the Pequod-backed implementation,
//! and the §5.1 client model: sessions of 5% login scans, 9% new
//! subscriptions, 85% incremental timeline checks, and 1% posts, with
//! post probability proportional to the log of the poster's follower
//! count.

use crate::graph::SocialGraph;
use crate::rpc::RpcMeter;
use pequod_core::{Client, Command, Engine, Response};
use pequod_net::Message;
use pequod_store::{Key, KeyRange, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Timestamp width in digits.
pub const TIME_WIDTH: usize = 10;

/// The ordinary timeline join (§2.2).
pub const TIMELINE_JOIN: &str =
    "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>";

/// The celebrity joins (§2.3): a push helper collating celebrity posts
/// in time-primary order, plus a pull join filtering them through the
/// reader's subscriptions.
pub const CELEBRITY_JOINS: &str = r#"
    ct|<time:10>|<poster> = copy cp|<poster>|<time:10>;
    t|<user>|<time:10>|<poster> = pull copy ct|<time:10>|<poster> check s|<user>|<poster>
"#;

/// Formats a user id.
pub fn user_name(u: u32) -> String {
    format!("u{u:07}")
}

/// `p|poster|time` (or `cp|` for celebrities).
pub fn post_key(poster: u32, time: u64, celebrity: bool) -> String {
    let table = if celebrity { "cp" } else { "p" };
    format!("{table}|{}|{time:0w$}", user_name(poster), w = TIME_WIDTH)
}

/// `s|user|poster`.
pub fn sub_key(user: u32, poster: u32) -> String {
    format!("s|{}|{}", user_name(user), user_name(poster))
}

/// The half-open timeline range for checks since `since`.
pub fn timeline_range(user: u32, since: u64) -> KeyRange {
    let first = format!("t|{}|{since:0w$}", user_name(user), w = TIME_WIDTH);
    let end = Key::from(format!("t|{}|", user_name(user)))
        .prefix_end()
        .expect("timeline prefix has an end");
    KeyRange::new(first, end)
}

/// The operations a Twip serving system must support. Every comparison
/// system in the Figure 7 experiment implements this.
pub trait TwipBackend {
    /// Human-readable system name.
    fn name(&self) -> &'static str;
    /// Bulk-load the social graph (untimed setup).
    fn load_graph(&mut self, graph: &SocialGraph);
    /// Bulk-load an initial post (untimed setup).
    fn load_post(&mut self, poster: u32, time: u64, text: &str);
    /// A user posts a tweet.
    fn post(&mut self, poster: u32, time: u64, text: &str);
    /// A user subscribes to a poster.
    fn subscribe(&mut self, user: u32, poster: u32);
    /// A timeline check: return the number of entries at or after
    /// `since`.
    fn check(&mut self, user: u32, since: u64) -> usize;
    /// RPCs issued since the last reset.
    fn rpcs(&self) -> u64;
    /// Wire bytes metered since the last reset.
    fn rpc_bytes(&self) -> u64;
    /// Resets the meter (after untimed setup).
    fn reset_meter(&mut self);
    /// Estimated resident memory.
    fn memory_bytes(&mut self) -> usize;
}

/// Twip served by a Pequod engine with the timeline cache join:
/// clients write posts and subscriptions and scan timelines; the cache
/// does everything else.
pub struct PequodTwip {
    /// The engine (exposed for stats).
    pub engine: Engine,
    meter: RpcMeter,
    /// Users whose posts go to the celebrity tables.
    celebrities: Vec<u32>,
    rpc_cost: (u64, u64),
}

impl PequodTwip {
    /// Creates the backend and installs the timeline join.
    pub fn new(engine: Engine) -> PequodTwip {
        Self::with_celebrities(engine, Vec::new())
    }

    /// Creates the backend with celebrity handling (§2.3) for the given
    /// users.
    pub fn with_celebrities(mut engine: Engine, celebrities: Vec<u32>) -> PequodTwip {
        engine.add_joins_text(TIMELINE_JOIN).expect("timeline join");
        if !celebrities.is_empty() {
            engine
                .add_joins_text(CELEBRITY_JOINS)
                .expect("celebrity joins");
        }
        PequodTwip {
            engine,
            meter: RpcMeter::new(),
            celebrities,
            rpc_cost: (
                crate::rpc::DEFAULT_RPC_COST_NS,
                crate::rpc::DEFAULT_RPC_COST_PER_KB_NS,
            ),
        }
    }

    fn is_celebrity(&self, u: u32) -> bool {
        self.celebrities.contains(&u)
    }

    /// Overrides the RPC cost model (0 measures pure engine work).
    pub fn set_rpc_cost(&mut self, cost_ns: u64, per_kb_ns: u64) {
        self.meter.set_cost(cost_ns, per_kb_ns);
        self.rpc_cost = (cost_ns, per_kb_ns);
    }
}

impl TwipBackend for PequodTwip {
    fn name(&self) -> &'static str {
        "pequod"
    }

    fn load_graph(&mut self, graph: &SocialGraph) {
        for u in 0..graph.users() {
            for &p in graph.followees(u) {
                self.engine.put(sub_key(u, p), "1");
            }
        }
    }

    fn load_post(&mut self, poster: u32, time: u64, text: &str) {
        let celeb = self.is_celebrity(poster);
        self.engine
            .put(post_key(poster, time, celeb), text.to_string());
    }

    fn post(&mut self, poster: u32, time: u64, text: &str) {
        let celeb = self.is_celebrity(poster);
        let key = Key::from(post_key(poster, time, celeb));
        let value = pequod_store::Value::from(text.as_bytes().to_vec());
        self.meter.put(&key, &value);
        self.engine.put(key, value);
    }

    fn subscribe(&mut self, user: u32, poster: u32) {
        let key = Key::from(sub_key(user, poster));
        let value = pequod_store::Value::from_static(b"1");
        self.meter.put(&key, &value);
        self.engine.put(key, value);
    }

    fn check(&mut self, user: u32, since: u64) -> usize {
        let range = timeline_range(user, since);
        let res = self.engine.scan(&range);
        debug_assert!(res.is_complete());
        self.meter.scan_with_reply(&range.first, &res.pairs);
        res.pairs.len()
    }

    fn rpcs(&self) -> u64 {
        self.meter.rpcs
    }

    fn rpc_bytes(&self) -> u64 {
        self.meter.bytes
    }

    fn reset_meter(&mut self) {
        self.meter = RpcMeter::new();
        self.meter.set_cost(self.rpc_cost.0, self.rpc_cost.1);
    }

    fn memory_bytes(&mut self) -> usize {
        self.engine.memory_bytes()
    }
}

/// How a deployment keeps timelines fresh when Twip is driven through
/// the unified [`Client`] API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TwipStrategy {
    /// The backend supports cache joins: install [`TIMELINE_JOIN`] and
    /// let the server maintain timelines (Pequod deployments).
    ServerJoins,
    /// No server-side computation: the client fans each post out to
    /// every follower's timeline and backfills new subscriptions itself
    /// (the paper's "client Pequod" discipline, which also fits the
    /// Redis-like, memcached-like, and relational baselines).
    ClientFanout,
}

/// Twip driven entirely through the unified [`Client`] API: the same
/// driver runs against the in-process engine, the write-around
/// deployment, the simulated cluster, and every Figure 7 baseline.
///
/// Multi-key operations (fan-out, backfill) are issued as one
/// [`Client::execute_batch`] call, so backends that own a network
/// pipeline them; timeline checks use [`Command::Count`], so backends
/// count server-side instead of shipping pairs that the driver would
/// only count. Every logical RPC is metered through the real wire codec
/// (one request frame per command, plus reply frames for reads),
/// identically for every backend.
pub struct ClientTwip {
    client: Box<dyn Client>,
    strategy: TwipStrategy,
    name: &'static str,
    meter: RpcMeter,
    rpc_cost: (u64, u64),
}

impl ClientTwip {
    /// Wraps a backend. Under [`TwipStrategy::ServerJoins`] the timeline
    /// join is installed immediately (panics if the backend rejects
    /// joins — use [`TwipStrategy::ClientFanout`] for join-less
    /// backends).
    pub fn new(mut client: Box<dyn Client>, strategy: TwipStrategy) -> ClientTwip {
        if strategy == TwipStrategy::ServerJoins {
            client
                .add_join(TIMELINE_JOIN)
                .expect("backend rejected the timeline join; use TwipStrategy::ClientFanout");
        }
        ClientTwip {
            name: client.backend_name(),
            client,
            strategy,
            meter: RpcMeter::new(),
            rpc_cost: (
                crate::rpc::DEFAULT_RPC_COST_NS,
                crate::rpc::DEFAULT_RPC_COST_PER_KB_NS,
            ),
        }
    }

    /// Overrides the RPC cost model (0 measures pure backend work).
    pub fn set_rpc_cost(&mut self, cost_ns: u64, per_kb_ns: u64) {
        self.meter.set_cost(cost_ns, per_kb_ns);
        self.rpc_cost = (cost_ns, per_kb_ns);
    }

    /// The wrapped backend (stats, direct inspection).
    pub fn client_mut(&mut self) -> &mut dyn Client {
        &mut *self.client
    }

    fn reverse_key(poster: u32, user: u32) -> String {
        format!("rs|{}|{}", user_name(poster), user_name(user))
    }

    /// The followers of `poster` via the reverse index (fan-out mode).
    fn followers(&mut self, poster: u32, metered: bool) -> Vec<String> {
        let range = KeyRange::prefix(format!("rs|{}|", user_name(poster)));
        let pairs = self.client.scan(&range);
        if metered {
            self.meter.scan_with_reply(&range.first, &pairs);
        }
        pairs
            .iter()
            .map(|(k, _)| String::from_utf8_lossy(k.components().last().unwrap()).into_owned())
            .collect()
    }

    /// Issues a batch of puts as one pipelined `execute_batch` call,
    /// metering one request frame per put.
    fn put_batch(&mut self, puts: Vec<(Key, Value)>, metered: bool) {
        if puts.is_empty() {
            return;
        }
        if metered {
            for (k, v) in &puts {
                self.meter.put(k, v);
            }
        }
        let commands = puts.into_iter().map(|(k, v)| Command::Put(k, v)).collect();
        for r in self.client.execute_batch(commands) {
            debug_assert!(matches!(r, Response::Ok), "put failed: {r:?}");
        }
    }
}

impl TwipBackend for ClientTwip {
    fn name(&self) -> &'static str {
        self.name
    }

    fn load_graph(&mut self, graph: &SocialGraph) {
        for u in 0..graph.users() {
            let mut puts: Vec<(Key, Value)> = Vec::new();
            for &p in graph.followees(u) {
                puts.push((Key::from(sub_key(u, p)), Value::from_static(b"1")));
                if self.strategy == TwipStrategy::ClientFanout {
                    puts.push((Key::from(Self::reverse_key(p, u)), Value::from_static(b"1")));
                }
            }
            self.put_batch(puts, false);
        }
    }

    fn load_post(&mut self, poster: u32, time: u64, text: &str) {
        let value = Value::from(text.as_bytes().to_vec());
        let mut puts = vec![(Key::from(post_key(poster, time, false)), value.clone())];
        if self.strategy == TwipStrategy::ClientFanout {
            for f in self.followers(poster, false) {
                puts.push((
                    Key::from(format!("t|{f}|{time:010}|{}", user_name(poster))),
                    value.clone(),
                ));
            }
        }
        self.put_batch(puts, false);
    }

    fn post(&mut self, poster: u32, time: u64, text: &str) {
        let value = Value::from(text.as_bytes().to_vec());
        let pkey = Key::from(post_key(poster, time, false));
        match self.strategy {
            TwipStrategy::ServerJoins => {
                self.meter.put(&pkey, &value);
                self.client.put(&pkey, &value);
            }
            TwipStrategy::ClientFanout => {
                let mut puts = vec![(pkey, value.clone())];
                for f in self.followers(poster, true) {
                    puts.push((
                        Key::from(format!("t|{f}|{time:010}|{}", user_name(poster))),
                        value.clone(),
                    ));
                }
                self.put_batch(puts, true);
            }
        }
    }

    fn subscribe(&mut self, user: u32, poster: u32) {
        let skey = Key::from(sub_key(user, poster));
        let one = Value::from_static(b"1");
        match self.strategy {
            TwipStrategy::ServerJoins => {
                self.meter.put(&skey, &one);
                self.client.put(&skey, &one);
            }
            TwipStrategy::ClientFanout => {
                let mut puts = vec![
                    (skey, one.clone()),
                    (Key::from(Self::reverse_key(poster, user)), one),
                ];
                // Backfill from the poster's existing tweets.
                let prange = KeyRange::prefix(format!("p|{}|", user_name(poster)));
                let posts = self.client.scan(&prange);
                self.meter.scan_with_reply(&prange.first, &posts);
                for (k, v) in posts {
                    let time = k.components().nth(2).unwrap().to_vec();
                    puts.push((
                        Key::from(
                            [
                                b"t|".as_slice(),
                                user_name(user).as_bytes(),
                                b"|",
                                &time,
                                b"|",
                                user_name(poster).as_bytes(),
                            ]
                            .concat(),
                        ),
                        v,
                    ));
                }
                self.put_batch(puts, true);
            }
        }
    }

    fn check(&mut self, user: u32, since: u64) -> usize {
        // Server-side count: the timeline length comes back as one small
        // reply, not as the materialized pairs.
        let range = timeline_range(user, since);
        let n = self.client.count(&range);
        self.meter.rpc(&Message::Count {
            id: 0,
            range: range.clone(),
        });
        self.meter.rpc(&Message::count_reply(0, n));
        n as usize
    }

    fn rpcs(&self) -> u64 {
        self.meter.rpcs
    }

    fn rpc_bytes(&self) -> u64 {
        self.meter.bytes
    }

    fn reset_meter(&mut self) {
        self.meter = RpcMeter::new();
        self.meter.set_cost(self.rpc_cost.0, self.rpc_cost.1);
    }

    fn memory_bytes(&mut self) -> usize {
        self.client.stats().memory_bytes as usize
    }
}

/// One workload operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TwipOp {
    /// Full timeline scan ("log in").
    Login(u32),
    /// Incremental timeline check.
    Check(u32),
    /// Follow a new poster.
    Subscribe(u32, u32),
    /// Post a tweet.
    Post(u32),
}

/// Client-model parameters (§5.1).
#[derive(Clone, Debug)]
pub struct TwipMix {
    /// Fraction of users that are active.
    pub active_fraction: f64,
    /// Incremental checks per active user (drives total op count).
    pub checks_per_user: u32,
    /// Percent of operations that are logins / subscriptions / checks /
    /// posts; must sum to 100.
    pub mix: [f64; 4],
    /// RNG seed.
    pub seed: u64,
}

impl Default for TwipMix {
    fn default() -> Self {
        TwipMix {
            active_fraction: 0.7,
            checks_per_user: 50,
            mix: [5.0, 9.0, 85.0, 1.0],
            seed: 0x7717,
        }
    }
}

/// A pre-generated deterministic operation stream.
pub struct TwipWorkload {
    /// Users logged in (full timeline scan) during untimed warm-up,
    /// matching the paper's cache warming (§5.5: "each active user is
    /// logged into the system prior to the experiment").
    pub warm: Vec<u32>,
    /// The operations in execution order.
    pub ops: Vec<TwipOp>,
}

impl TwipWorkload {
    /// Generates the §5.1 session stream over a social graph.
    pub fn generate(graph: &SocialGraph, mix: &TwipMix) -> TwipWorkload {
        let mut rng = StdRng::seed_from_u64(mix.seed);
        let n = graph.users();
        let active_count = ((n as f64) * mix.active_fraction).round().max(1.0) as u32;
        // Active users: a deterministic sample.
        let mut users: Vec<u32> = (0..n).collect();
        for i in (1..n as usize).rev() {
            let j = rng.gen_range(0..=i);
            users.swap(i, j);
        }
        let active = &users[..active_count as usize];
        let total_ops =
            ((active_count as u64) * (mix.checks_per_user as u64)) as f64 / (mix.mix[2] / 100.0);
        let total_ops = total_ops.round() as u64;
        // Posters weighted by log(follower count).
        let weights: Vec<f64> = (0..n).map(|u| graph.post_weight(u)).collect();
        let total_weight: f64 = weights.iter().sum();
        let mut ops = Vec::with_capacity(total_ops as usize);
        let warm = active.to_vec();
        for _ in 0..total_ops {
            let r = rng.gen::<f64>() * 100.0;
            let op = if r < mix.mix[0] {
                TwipOp::Login(active[rng.gen_range(0..active.len())])
            } else if r < mix.mix[0] + mix.mix[1] {
                let user = active[rng.gen_range(0..active.len())];
                let poster = rng.gen_range(0..n);
                TwipOp::Subscribe(user, poster)
            } else if r < mix.mix[0] + mix.mix[1] + mix.mix[2] {
                TwipOp::Check(active[rng.gen_range(0..active.len())])
            } else {
                // Weighted poster selection.
                let mut pick = rng.gen::<f64>() * total_weight;
                let mut poster = 0u32;
                for (u, w) in weights.iter().enumerate() {
                    pick -= w;
                    if pick <= 0.0 {
                        poster = u as u32;
                        break;
                    }
                }
                TwipOp::Post(poster)
            };
            ops.push(op);
        }
        TwipWorkload { warm, ops }
    }

    /// Counts ops by kind: `[logins, subscribes, checks, posts]`.
    pub fn histogram(&self) -> [u64; 4] {
        let mut h = [0u64; 4];
        for op in &self.ops {
            match op {
                TwipOp::Login(_) => h[0] += 1,
                TwipOp::Subscribe(..) => h[1] += 1,
                TwipOp::Check(_) => h[2] += 1,
                TwipOp::Post(_) => h[3] += 1,
            }
        }
        h
    }
}

/// Result of driving a workload through a backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct TwipRunStats {
    /// Wall-clock seconds for the timed phase.
    pub elapsed: f64,
    /// Operations executed.
    pub ops: u64,
    /// Timeline entries returned across all checks.
    pub entries_returned: u64,
    /// RPCs issued by the backend.
    pub rpcs: u64,
    /// Wire bytes metered.
    pub rpc_bytes: u64,
    /// Backend memory after the run.
    pub memory_bytes: usize,
}

/// Drives a workload against a backend: untimed setup (graph + initial
/// posts), then the timed op stream.
pub fn run_twip(
    backend: &mut dyn TwipBackend,
    graph: &SocialGraph,
    workload: &TwipWorkload,
    initial_posts: u64,
) -> TwipRunStats {
    // Setup: graph plus initial posts distributed by post weight.
    backend.load_graph(graph);
    let mut rng = StdRng::seed_from_u64(0xbeef);
    let weights: Vec<f64> = (0..graph.users()).map(|u| graph.post_weight(u)).collect();
    let total_weight: f64 = weights.iter().sum();
    let mut time = 1u64;
    for _ in 0..initial_posts {
        let mut pick = rng.gen::<f64>() * total_weight;
        let mut poster = 0u32;
        for (u, w) in weights.iter().enumerate() {
            pick -= w;
            if pick <= 0.0 {
                poster = u as u32;
                break;
            }
        }
        backend.load_post(poster, time, "an initial tweet of reasonable length!");
        time += 1;
    }
    // Warm-up: log every active user in, untimed (§5.5).
    let mut last_seen = vec![0u64; graph.users() as usize];
    for &u in &workload.warm {
        backend.check(u, 0);
        last_seen[u as usize] = time;
    }
    backend.reset_meter();

    // Timed phase.
    let mut stats = TwipRunStats::default();
    let start = std::time::Instant::now();
    for op in &workload.ops {
        match *op {
            TwipOp::Login(u) => {
                stats.entries_returned += backend.check(u, 0) as u64;
                last_seen[u as usize] = time;
            }
            TwipOp::Check(u) => {
                stats.entries_returned += backend.check(u, last_seen[u as usize]) as u64;
                last_seen[u as usize] = time;
            }
            TwipOp::Subscribe(u, p) => backend.subscribe(u, p),
            TwipOp::Post(p) => {
                backend.post(p, time, "a brand new tweet, fresh off the press");
                time += 1;
            }
        }
        stats.ops += 1;
    }
    stats.elapsed = start.elapsed().as_secs_f64();
    stats.rpcs = backend.rpcs();
    stats.rpc_bytes = backend.rpc_bytes();
    stats.memory_bytes = backend.memory_bytes();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphConfig;
    use pequod_core::EngineConfig;

    fn small_graph() -> SocialGraph {
        SocialGraph::generate(&GraphConfig {
            users: 300,
            avg_followees: 8.0,
            zipf_alpha: 1.2,
            seed: 3,
        })
    }

    #[test]
    fn workload_matches_requested_mix() {
        let g = small_graph();
        let mix = TwipMix {
            active_fraction: 0.5,
            checks_per_user: 20,
            ..TwipMix::default()
        };
        let w = TwipWorkload::generate(&g, &mix);
        let h = w.histogram();
        assert_eq!(w.warm.len(), 150);
        let total: u64 = h.iter().sum::<u64>();
        // checks ≈ 85%
        let checks_pct = h[2] as f64 / total as f64 * 100.0;
        assert!((80.0..90.0).contains(&checks_pct), "checks {checks_pct}%");
        // subs ≈ 9%
        let subs_pct = h[1] as f64 / total as f64 * 100.0;
        assert!((6.0..12.0).contains(&subs_pct), "subs {subs_pct}%");
        // posts ≈ 1%
        let posts_pct = h[3] as f64 / total as f64 * 100.0;
        assert!((0.3..2.5).contains(&posts_pct), "posts {posts_pct}%");
    }

    #[test]
    fn pequod_backend_serves_workload() {
        let g = small_graph();
        let mix = TwipMix {
            active_fraction: 0.4,
            checks_per_user: 5,
            seed: 5,
            ..TwipMix::default()
        };
        let w = TwipWorkload::generate(&g, &mix);
        let mut backend = PequodTwip::new(Engine::new(EngineConfig::default()));
        let stats = run_twip(&mut backend, &g, &w, 500);
        assert_eq!(stats.ops, w.ops.len() as u64);
        assert!(stats.entries_returned > 0, "timelines should have tweets");
        assert!(stats.rpcs >= stats.ops, "every op costs at least one rpc");
        assert!(backend.engine.materialized_ranges() > 0);
    }

    #[test]
    fn celebrity_backend_saves_memory() {
        let g = small_graph();
        let celebs = g.celebrities(3);
        let mix = TwipMix {
            active_fraction: 0.4,
            checks_per_user: 5,
            seed: 6,
            ..TwipMix::default()
        };
        let w = TwipWorkload::generate(&g, &mix);
        let mut plain = PequodTwip::new(Engine::new(EngineConfig::default()));
        let plain_stats = run_twip(&mut plain, &g, &w, 500);
        let mut celeb = PequodTwip::with_celebrities(Engine::new(EngineConfig::default()), celebs);
        let celeb_stats = run_twip(&mut celeb, &g, &w, 500);
        // Same timeline entries delivered either way.
        assert_eq!(plain_stats.entries_returned, celeb_stats.entries_returned);
        // Celebrity posts are not copied into every follower's timeline,
        // so the celebrity configuration stores less.
        assert!(
            celeb_stats.memory_bytes < plain_stats.memory_bytes,
            "celebrity {} vs plain {}",
            celeb_stats.memory_bytes,
            plain_stats.memory_bytes
        );
    }

    #[test]
    fn unified_driver_matches_direct_backend() {
        let g = small_graph();
        let mix = TwipMix {
            active_fraction: 0.4,
            checks_per_user: 5,
            seed: 5,
            ..TwipMix::default()
        };
        let w = TwipWorkload::generate(&g, &mix);
        let mut direct = PequodTwip::new(Engine::new(EngineConfig::default()));
        let s_direct = run_twip(&mut direct, &g, &w, 500);
        let mut unified = ClientTwip::new(
            Box::new(Engine::new(EngineConfig::default())),
            TwipStrategy::ServerJoins,
        );
        let s_unified = run_twip(&mut unified, &g, &w, 500);
        // The unified command path serves the identical timelines.
        assert_eq!(s_direct.entries_returned, s_unified.entries_returned);
        assert_eq!(unified.name(), "engine");
    }

    #[test]
    fn client_fanout_matches_server_joins() {
        let g = small_graph();
        let mix = TwipMix {
            active_fraction: 0.4,
            checks_per_user: 4,
            seed: 7,
            ..TwipMix::default()
        };
        let w = TwipWorkload::generate(&g, &mix);
        let mut joins = ClientTwip::new(
            Box::new(Engine::new(EngineConfig::default())),
            TwipStrategy::ServerJoins,
        );
        let s_joins = run_twip(&mut joins, &g, &w, 300);
        // The same backend type without joins: the driver fans out.
        let mut fanout = ClientTwip::new(
            Box::new(Engine::new(EngineConfig::default())),
            TwipStrategy::ClientFanout,
        );
        let s_fanout = run_twip(&mut fanout, &g, &w, 300);
        assert_eq!(s_joins.entries_returned, s_fanout.entries_returned);
        // ...and pays many more RPCs for it.
        assert!(
            s_fanout.rpcs > s_joins.rpcs,
            "fanout {} vs joins {}",
            s_fanout.rpcs,
            s_joins.rpcs
        );
    }

    #[test]
    fn timeline_range_formats_fixed_width() {
        let r = timeline_range(12, 34);
        assert_eq!(r.first, Key::from("t|u0000012|0000000034"));
        assert!(r.contains(&Key::from("t|u0000012|0000000100|u0000001")));
        assert!(!r.contains(&Key::from("t|u0000012|0000000033")));
        assert!(!r.contains(&Key::from("t|u0000013|0000000100|x")));
    }
}
