//! Synthetic social graph generation.
//!
//! **Substitution for the 2009 Twitter graph** (Kwak et al. \[21\], 40M
//! users / 1.4B edges; the paper's single-machine experiments use a
//! sampled subgraph of 1.8M users / 72M edges). The graph is proprietary
//! at that scale, so we generate a power-law follower graph with the
//! properties the experiments exercise: heavy-tailed in-degree
//! (celebrities), tens of followees per user on average, and
//! deterministic regeneration from a seed. Scale is a knob; the
//! benchmark harness keeps the paper's ratios (edges/users ≈ 40).

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Graph generation parameters.
#[derive(Clone, Debug)]
pub struct GraphConfig {
    /// Number of users.
    pub users: u32,
    /// Mean followees per user.
    pub avg_followees: f64,
    /// Zipf exponent for target popularity (higher = more celebrity
    /// skew). The Twitter in-degree distribution fits α ≈ 1.0–1.3.
    pub zipf_alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            users: 10_000,
            avg_followees: 40.0,
            zipf_alpha: 1.2,
            seed: 0x7e90d,
        }
    }
}

/// A generated follower graph.
pub struct SocialGraph {
    /// Adjacency: `followees[u]` lists the users `u` follows.
    followees: Vec<Vec<u32>>,
    /// In-degree: `followers[u]` counts how many users follow `u`.
    followers: Vec<u32>,
    /// Total edges.
    edges: usize,
}

impl SocialGraph {
    /// Generates a graph.
    pub fn generate(config: &GraphConfig) -> SocialGraph {
        let n = config.users as usize;
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Popularity rank: a fixed random permutation so user ids are not
        // correlated with popularity.
        let mut by_rank: Vec<u32> = (0..config.users).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            by_rank.swap(i, j);
        }
        let zipf = Zipf::new(n.max(2) as u64, config.zipf_alpha);
        let mut followees: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut followers = vec![0u32; n];
        let mut edges = 0usize;
        for (u, mine) in followees.iter_mut().enumerate() {
            // Followee count: geometric around the mean, min 1, so some
            // users follow a handful and some follow hundreds.
            let mut k = 1usize;
            let p = 1.0 / config.avg_followees.max(1.0);
            while rng.gen::<f64>() > p && k < n.saturating_sub(1).max(1) && k < 4096 {
                k += 1;
            }
            for _ in 0..k {
                let rank = zipf.sample(&mut rng) as usize - 1;
                let target = by_rank[rank.min(n - 1)];
                if target as usize != u && !mine.contains(&target) {
                    mine.push(target);
                    followers[target as usize] += 1;
                    edges += 1;
                }
            }
            mine.sort_unstable();
        }
        SocialGraph {
            followees,
            followers,
            edges,
        }
    }

    /// Number of users.
    pub fn users(&self) -> u32 {
        self.followees.len() as u32
    }

    /// Number of follow edges.
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// The users `u` follows.
    pub fn followees(&self, u: u32) -> &[u32] {
        &self.followees[u as usize]
    }

    /// How many users follow `u`.
    pub fn follower_count(&self, u: u32) -> u32 {
        self.followers[u as usize]
    }

    /// The maximum in-degree (the biggest celebrity).
    pub fn max_followers(&self) -> u32 {
        self.followers.iter().copied().max().unwrap_or(0)
    }

    /// Users sorted by follower count, descending (for celebrity joins).
    pub fn celebrities(&self, top: usize) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.users()).collect();
        ids.sort_by_key(|&u| std::cmp::Reverse(self.followers[u as usize]));
        ids.truncate(top);
        ids
    }

    /// Post weight ∝ log of follower count (§5.1: "the probability that
    /// a user posts a message is proportional to the log of their
    /// follower count").
    pub fn post_weight(&self, u: u32) -> f64 {
        ((self.follower_count(u) as f64) + 2.0).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SocialGraph {
        SocialGraph::generate(&GraphConfig {
            users: 2000,
            avg_followees: 10.0,
            zipf_alpha: 1.2,
            seed: 1,
        })
    }

    #[test]
    fn graph_has_requested_shape() {
        let g = small();
        assert_eq!(g.users(), 2000);
        // Average followees near the mean (deduping shaves a little).
        let avg = g.edges() as f64 / 2000.0;
        assert!(avg > 4.0 && avg < 12.0, "avg followees {avg}");
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let g = small();
        let max = g.max_followers();
        let avg = g.edges() as f64 / 2000.0;
        assert!(
            (max as f64) > avg * 10.0,
            "celebrity skew expected: max {max}, avg {avg}"
        );
        let celebs = g.celebrities(5);
        assert_eq!(celebs.len(), 5);
        assert!(g.follower_count(celebs[0]) >= g.follower_count(celebs[4]));
    }

    #[test]
    fn no_self_follows_or_duplicates() {
        let g = small();
        for u in 0..g.users() {
            let f = g.followees(u);
            assert!(!f.contains(&u));
            let mut dedup = f.to_vec();
            dedup.dedup();
            assert_eq!(dedup.len(), f.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.followees(7), b.followees(7));
        let c = SocialGraph::generate(&GraphConfig {
            seed: 2,
            users: 2000,
            avg_followees: 10.0,
            zipf_alpha: 1.2,
        });
        assert_ne!(a.followees(7), c.followees(7));
    }

    #[test]
    fn post_weight_grows_with_popularity() {
        let g = small();
        let celeb = g.celebrities(1)[0];
        let nobody = (0..g.users()).min_by_key(|&u| g.follower_count(u)).unwrap();
        assert!(g.post_weight(celeb) > g.post_weight(nobody));
    }
}
