//! `pequod-workloads` — the applications and workload generators of the
//! Pequod evaluation (§5).
//!
//! * [`graph`] — synthetic power-law social graphs (the substitution for
//!   the proprietary 2009 Twitter crawl; see DESIGN.md).
//! * [`twip`] — the Twitter-like application: key schema, joins
//!   (including celebrity handling), the [`twip::TwipBackend`] trait the
//!   comparison systems implement, and the §5.1 client model.
//! * [`newp`] — the Hacker News-like application with interleaved and
//!   non-interleaved configurations (Figures 1 and 9).
//! * [`rpc`] — per-RPC cost metering through the real wire codec, so
//!   in-process backends pay proportionally for the RPCs they would
//!   issue.
//! * [`zipf`] — the Zipf sampler behind graph popularity.

#![warn(missing_docs)]

pub mod graph;
pub mod newp;
pub mod rpc;
pub mod twip;
pub mod zipf;

pub use graph::{GraphConfig, SocialGraph};
pub use newp::{run_newp, NewpBackend, NewpConfig, NewpRunStats, PequodNewp};
pub use rpc::RpcMeter;
pub use twip::{
    run_twip, PequodTwip, TwipBackend, TwipMix, TwipOp, TwipRunStats, TwipWorkload,
};
pub use zipf::Zipf;
