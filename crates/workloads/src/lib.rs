//! `pequod-workloads` — the applications and workload generators of the
//! Pequod evaluation (§5).
//!
//! The paper evaluates Pequod with two applications: **Twip**, a
//! Twitter-like service whose timelines are the canonical cache join,
//! and **Newp**, a Hacker News-like service whose front page composes
//! articles, votes, and karma. This crate reproduces both as
//! deterministic, seed-keyed workloads so every figure binary produces
//! the same op stream on every machine.
//!
//! # Modules
//!
//! * [`graph`] — synthetic power-law social graphs (the substitution for
//!   the proprietary 2009 Twitter crawl; see DESIGN.md): heavy-tailed
//!   in-degree (celebrities), ~tens of followees per user, explicit
//!   seeds.
//! * [`twip`] — the Twitter-like application: key schema
//!   (`p|poster|time`, `s|user|poster`, `t|user|time|poster`), the
//!   timeline join (including celebrity handling), the
//!   [`twip::TwipBackend`] trait the comparison systems implement, the
//!   §5.1 client model (login / subscribe / check / post mix), and
//!   [`twip::run_twip`], the harness that warms, runs, and meters one
//!   experiment.
//! * [`newp`] — the Hacker News-like application with interleaved and
//!   non-interleaved configurations (Figures 1 and 9).
//! * [`rpc`] — per-RPC cost metering through the real wire codec, so
//!   in-process backends pay proportionally for the RPCs they would
//!   issue.
//! * [`zipf`] — the Zipf sampler behind graph popularity.
//!
//! # One driver, every backend
//!
//! [`twip::ClientTwip`] and [`newp::ClientNewp`] drive the same
//! workloads through the unified `pequod_core::Client` trait, so a
//! single driver runs unchanged against the in-process engine, the
//! multi-core sharded engine, the write-around deployment, the
//! simulated cluster, and the join-less baseline stores (which fall
//! back to client-side fan-out). This is what gives the figure
//! binaries their `--backend` flag: same commands, same meter, any
//! deployment shape.
//!
//! # Determinism
//!
//! Workload generation never consults ambient randomness: graphs, op
//! streams, and run outcomes are pure functions of the seeds in
//! [`GraphConfig`] and [`twip::TwipMix`] (the `determinism` tests
//! assert byte-identical regeneration), so results compare across runs
//! and machines.

// No first-party unsafe: the whole system is safe Rust over the
// vendored deps. `cargo xtask audit` additionally requires a SAFETY
// comment on any future unsafe block an allow here would admit.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod newp;
pub mod rpc;
pub mod twip;
pub mod zipf;

pub use graph::{GraphConfig, SocialGraph};
pub use newp::{run_newp, ClientNewp, NewpBackend, NewpConfig, NewpRunStats, PequodNewp};
pub use rpc::RpcMeter;
pub use twip::{
    run_twip, ClientTwip, PequodTwip, TwipBackend, TwipMix, TwipOp, TwipRunStats, TwipStrategy,
    TwipWorkload,
};
pub use zipf::Zipf;

#[cfg(test)]
mod determinism {
    //! Workload generation is keyed entirely by explicit seeds (no
    //! `thread_rng`): the same config must yield byte-identical graphs,
    //! op streams, and run outcomes, or experiment results cannot be
    //! compared across runs and machines.

    use super::*;
    use crate::twip::{run_twip, PequodTwip, TwipMix, TwipOp, TwipWorkload};
    use pequod_core::{Engine, EngineConfig};

    fn small_graph() -> GraphConfig {
        GraphConfig {
            users: 60,
            ..GraphConfig::default()
        }
    }

    #[test]
    fn social_graph_is_deterministic() {
        let cfg = small_graph();
        let a = SocialGraph::generate(&cfg);
        let b = SocialGraph::generate(&cfg);
        assert_eq!(a.users(), b.users());
        assert_eq!(a.edges(), b.edges());
        for u in 0..a.users() {
            assert_eq!(a.followees(u), b.followees(u), "followees of {u} diverged");
        }
    }

    #[test]
    fn graph_differs_across_seeds() {
        let cfg = small_graph();
        let mut other = small_graph();
        other.seed ^= 1;
        let a = SocialGraph::generate(&cfg);
        let b = SocialGraph::generate(&other);
        let diverges =
            (0..a.users()).any(|u| a.followees(u) != b.followees(u)) || a.edges() != b.edges();
        assert!(diverges, "different seeds produced identical graphs");
    }

    #[test]
    fn twip_op_stream_is_deterministic() {
        let graph = SocialGraph::generate(&small_graph());
        let mix = TwipMix {
            checks_per_user: 10,
            seed: 42,
            ..TwipMix::default()
        };
        let a = TwipWorkload::generate(&graph, &mix);
        let b = TwipWorkload::generate(&graph, &mix);
        assert_eq!(a.warm, b.warm);
        assert_eq!(a.ops, b.ops);
        assert!(a.ops.iter().any(|op| matches!(op, TwipOp::Check(_))));
    }

    #[test]
    fn twip_run_outcome_is_deterministic() {
        let graph = SocialGraph::generate(&small_graph());
        let mix = TwipMix {
            checks_per_user: 5,
            seed: 9,
            ..TwipMix::default()
        };
        let workload = TwipWorkload::generate(&graph, &mix);
        let run = || {
            let mut backend = PequodTwip::new(Engine::new(EngineConfig::default()));
            let stats = run_twip(&mut backend, &graph, &workload, 200);
            (
                stats.ops,
                stats.entries_returned,
                stats.rpcs,
                stats.rpc_bytes,
            )
        };
        assert_eq!(run(), run());
    }
}
