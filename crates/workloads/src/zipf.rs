//! A Zipf(α) sampler over ranks `1..=n`.
//!
//! Social-graph popularity is heavy-tailed; the Twip experiments sample
//! follow targets from a Zipf distribution so a few "celebrities"
//! accumulate millions of followers, matching the shape of the 2009
//! Twitter graph the paper uses. Implementation: the standard
//! rejection-inversion method (Hörmann & Derflinger), deterministic
//! given the caller's RNG.

use rand::Rng;

/// Zipf distribution over `{1, ..., n}` with exponent `alpha > 0`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    // Precomputed constants for rejection-inversion.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a sampler for ranks `1..=n` with the given exponent.
    pub fn new(n: u64, alpha: f64) -> Zipf {
        assert!(n >= 1, "need at least one rank");
        assert!(alpha > 0.0 && alpha != 1.0, "alpha must be > 0 and != 1");
        let h = |x: f64| -> f64 { ((1.0 - alpha) * x.ln()).exp_m1() / (1.0 - alpha) + x };
        // H(x) = integral of x^-alpha; using the shifted form keeps
        // precision for alpha near 1.
        let hh = |x: f64| -> f64 { ((1.0 - alpha) * (1.0 + x).ln()).exp() / (1.0 - alpha) };
        let _ = h;
        let h_x1 = hh(1.5) - 1.0f64.powf(-alpha);
        let h_n = hh(n as f64 + 0.5);
        let s = 2.0 - hinv(hh(2.5) - (2.0f64).powf(-alpha), alpha);
        return Zipf {
            n,
            alpha,
            h_x1,
            h_n,
            s,
        };

        fn hinv(x: f64, alpha: f64) -> f64 {
            ((1.0 - alpha) * x).powf(1.0 / (1.0 - alpha)) - 1.0
        }
    }

    fn hh(&self, x: f64) -> f64 {
        ((1.0 - self.alpha) * (1.0 + x).ln()).exp() / (1.0 - self.alpha)
    }

    fn hinv(&self, x: f64) -> f64 {
        ((1.0 - self.alpha) * x).powf(1.0 / (1.0 - self.alpha)) - 1.0
    }

    /// Samples a rank in `1..=n`.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = self.hinv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.s || u >= self.hh(k - 0.5) - (-self.alpha * k.ln()).exp() {
                return k as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let s = z.sample(&mut rng);
            assert!((1..=100).contains(&s));
        }
    }

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u32; 1001];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[1] > counts[100] * 10);
        // The tail still gets hit.
        let tail: u32 = counts[500..].iter().sum();
        assert!(tail > 0);
    }

    #[test]
    fn single_rank_degenerate() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(500, 0.9);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
