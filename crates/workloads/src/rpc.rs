//! RPC cost metering.
//!
//! The Figure 7 comparison turns on how many RPCs each system needs per
//! application operation (client-managed systems fan a post out as many
//! RPCs; Pequod does it server-side). To compare in-process backends
//! honestly, every backend routes each logical RPC through this meter,
//! which encodes a representative wire frame with the real codec — so a
//! system that issues more or bigger RPCs pays proportionally more CPU,
//! as it would on a real network stack.

use bytes::BytesMut;
use pequod_net::codec::encode;
use pequod_net::Message;
use pequod_store::{Key, Value};

/// Default fixed cost per RPC, in nanoseconds. Calibrated to the low
/// end of a loopback TCP round trip's CPU cost (syscalls, TCP stack,
/// event-loop dispatch on both sides); override with
/// [`RpcMeter::set_cost`] or the figure binaries' `--rpc-cost-us` flag.
pub const DEFAULT_RPC_COST_NS: u64 = 10_000;

/// Default per-KiB payload cost in nanoseconds (copies and checksums).
pub const DEFAULT_RPC_COST_PER_KB_NS: u64 = 3_000;

/// Counts and costs logical RPCs.
pub struct RpcMeter {
    /// RPCs issued.
    pub rpcs: u64,
    /// Wire bytes that would have been sent.
    pub bytes: u64,
    cost_ns: u64,
    cost_per_kb_ns: u64,
    scratch: BytesMut,
}

impl Default for RpcMeter {
    fn default() -> Self {
        RpcMeter::new()
    }
}

impl RpcMeter {
    /// Creates a meter with the default per-RPC cost model.
    pub fn new() -> RpcMeter {
        RpcMeter {
            rpcs: 0,
            bytes: 0,
            cost_ns: DEFAULT_RPC_COST_NS,
            cost_per_kb_ns: DEFAULT_RPC_COST_PER_KB_NS,
            scratch: BytesMut::with_capacity(4096),
        }
    }

    /// Overrides the cost model. `cost_ns = 0` counts RPCs without
    /// burning CPU (pure software comparison).
    pub fn set_cost(&mut self, cost_ns: u64, cost_per_kb_ns: u64) {
        self.cost_ns = cost_ns;
        self.cost_per_kb_ns = cost_per_kb_ns;
    }

    /// Busy-waits for the deadline, modelling network-stack CPU.
    fn burn(&self, ns: u64) {
        if ns == 0 {
            return;
        }
        let start = std::time::Instant::now();
        let target = std::time::Duration::from_nanos(ns);
        while start.elapsed() < target {
            std::hint::spin_loop();
        }
    }

    /// Meters one request frame: encodes it with the real codec and
    /// charges the per-RPC and per-byte network-stack cost.
    pub fn rpc(&mut self, msg: &Message) {
        self.scratch.clear();
        encode(msg, &mut self.scratch);
        self.rpcs += 1;
        let frame = 4 + self.scratch.len() as u64;
        self.bytes += frame;
        self.burn(self.cost_ns + frame * self.cost_per_kb_ns / 1024);
    }

    /// Meters a write request (`Put`) without building a `Message`
    /// by hand at every call site.
    pub fn put(&mut self, key: &Key, value: &Value) {
        let msg = Message::Put {
            id: 0,
            key: key.clone(),
            value: value.clone(),
        };
        self.rpc(&msg);
    }

    /// Meters a scan request plus its reply payload.
    pub fn scan_with_reply(&mut self, first: &Key, pairs: &[(Key, Value)]) {
        let req = Message::Scan {
            id: 0,
            range: pequod_store::KeyRange::prefix(first.clone()),
        };
        self.rpc(&req);
        let reply = Message::Reply {
            id: 0,
            pairs: pairs.to_vec(),
            error: None,
        };
        self.rpc(&reply);
    }

    /// Meters a point get and its reply.
    pub fn get_with_reply(&mut self, key: &Key, value: Option<&Value>) {
        self.rpc(&Message::Get {
            id: 0,
            key: key.clone(),
        });
        let reply = Message::Reply {
            id: 0,
            pairs: value
                .map(|v| vec![(key.clone(), v.clone())])
                .unwrap_or_default(),
            error: None,
        };
        self.rpc(&reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn meter_counts_and_sizes() {
        let mut m = RpcMeter::new();
        m.put(&Key::from("p|bob|1"), &Bytes::from_static(b"Hi"));
        assert_eq!(m.rpcs, 1);
        let b1 = m.bytes;
        assert!(b1 > 10);
        m.get_with_reply(&Key::from("k"), Some(&Bytes::from_static(b"v")));
        assert_eq!(m.rpcs, 3);
        assert!(m.bytes > b1);
    }

    #[test]
    fn bigger_payloads_cost_more() {
        let mut a = RpcMeter::new();
        let mut b = RpcMeter::new();
        a.put(&Key::from("k"), &Bytes::from_static(b"x"));
        b.put(&Key::from("k"), &Bytes::from(vec![b'x'; 1000]));
        assert!(b.bytes > a.bytes + 900);
    }
}
