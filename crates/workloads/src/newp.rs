//! Newp: the Hacker News-like aggregator with user karma (§2.3, §5.4).
//!
//! Key schema:
//!
//! * `article|author|id → text`
//! * `comment|author|id|cid|commenter → text`
//! * `vote|author|id|voter → "1"`
//! * `karma|author → count` — votes across all of an author's articles
//! * `rank|author|id → count` — votes on one article
//! * `page|author|id|… ` — the interleaved page range of Figure 1
//!
//! Two configurations reproduce the Figure 9 comparison: *interleaved*
//! (one `page|` scan returns everything needed to render an article) and
//! *non-interleaved* (the application issues separate reads for the
//! article, its rank, its comments, and each commenter's karma).

use crate::rpc::RpcMeter;
use pequod_core::{Client, Engine};
use pequod_store::{Key, KeyRange, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Joins shared by both configurations: per-article rank and per-author
/// karma.
pub const NEWP_BASE_JOINS: &str = r#"
    karma|<author> = count vote|<author>|<id>|<voter>;
    rank|<author>|<id> = count vote|<author>|<id>|<voter>
"#;

/// The interleaved page joins of Figure 1.
pub const NEWP_PAGE_JOINS: &str = r#"
    page|<author>|<id>|a = copy article|<author>|<id>;
    page|<author>|<id>|r = copy rank|<author>|<id>;
    page|<author>|<id>|c|<cid>|<commenter> = copy comment|<author>|<id>|<cid>|<commenter>;
    page|<author>|<id>|k|<cid>|<commenter> =
        check comment|<author>|<id>|<cid>|<commenter> copy karma|<commenter>
"#;

/// Formats a user id.
pub fn user(u: u32) -> String {
    format!("n{u:06}")
}

/// Formats an article id.
pub fn article_id(a: u32) -> String {
    format!("{a:07}")
}

/// The operations of a Newp serving system.
pub trait NewpBackend {
    /// System name.
    fn name(&self) -> &'static str;
    /// Renders an article page; returns the number of data items read.
    fn read_article(&mut self, author: u32, id: u32) -> usize;
    /// Records a vote.
    fn vote(&mut self, author: u32, id: u32, voter: u32);
    /// Adds a comment.
    fn comment(&mut self, author: u32, id: u32, cid: u32, commenter: u32, text: &str);
    /// Loads a pre-population row without metering.
    fn load(&mut self, key: String, value: &str);
    /// RPCs issued.
    fn rpcs(&self) -> u64;
    /// Resets the RPC meter.
    fn reset_meter(&mut self);
}

/// Newp on Pequod, in either configuration.
pub struct PequodNewp {
    /// The engine.
    pub engine: Engine,
    meter: RpcMeter,
    interleaved: bool,
    rpc_cost: (u64, u64),
}

impl PequodNewp {
    /// Creates the backend; `interleaved` selects the Figure 1 page
    /// joins versus separate per-range reads.
    pub fn new(mut engine: Engine, interleaved: bool) -> PequodNewp {
        engine.add_joins_text(NEWP_BASE_JOINS).expect("base joins");
        if interleaved {
            engine.add_joins_text(NEWP_PAGE_JOINS).expect("page joins");
        }
        PequodNewp {
            engine,
            meter: RpcMeter::new(),
            interleaved,
            rpc_cost: (
                crate::rpc::DEFAULT_RPC_COST_NS,
                crate::rpc::DEFAULT_RPC_COST_PER_KB_NS,
            ),
        }
    }

    /// Overrides the RPC cost model (0 measures pure engine work).
    pub fn set_rpc_cost(&mut self, cost_ns: u64, per_kb_ns: u64) {
        self.meter.set_cost(cost_ns, per_kb_ns);
        self.rpc_cost = (cost_ns, per_kb_ns);
    }
}

impl NewpBackend for PequodNewp {
    fn name(&self) -> &'static str {
        if self.interleaved {
            "pequod-interleaved"
        } else {
            "pequod-separate"
        }
    }

    fn read_article(&mut self, author: u32, id: u32) -> usize {
        let author_s = user(author);
        let id_s = article_id(id);
        if self.interleaved {
            // One scan returns the article, rank, comments, and karma.
            let range = KeyRange::prefix(format!("page|{author_s}|{id_s}|"));
            let res = self.engine.scan(&range);
            self.meter.scan_with_reply(&range.first, &res.pairs);
            res.pairs.len()
        } else {
            // Separate reads: article, rank, comments, then karma per
            // commenter (two round trips; many RPCs).
            let mut items = 0;
            let akey = Key::from(format!("article|{author_s}|{id_s}"));
            let a = self.engine.get(&akey);
            self.meter.get_with_reply(&akey, a.as_ref());
            items += a.is_some() as usize;
            let rkey = Key::from(format!("rank|{author_s}|{id_s}"));
            let r = self.engine.get(&rkey);
            self.meter.get_with_reply(&rkey, r.as_ref());
            items += r.is_some() as usize;
            let crange = KeyRange::prefix(format!("comment|{author_s}|{id_s}|"));
            let comments = self.engine.scan(&crange);
            self.meter.scan_with_reply(&crange.first, &comments.pairs);
            items += comments.pairs.len();
            for (ckey, _) in &comments.pairs {
                // last component is the commenter
                let commenter = ckey.components().last().unwrap().to_vec();
                let kkey = Key::from([b"karma|".as_slice(), &commenter].concat());
                let k = self.engine.get(&kkey);
                self.meter.get_with_reply(&kkey, k.as_ref());
                items += k.is_some() as usize;
            }
            items
        }
    }

    fn vote(&mut self, author: u32, id: u32, voter: u32) {
        let key = Key::from(format!(
            "vote|{}|{}|{}",
            user(author),
            article_id(id),
            user(voter)
        ));
        let value = pequod_store::Value::from_static(b"1");
        self.meter.put(&key, &value);
        self.engine.put(key, value);
    }

    fn comment(&mut self, author: u32, id: u32, cid: u32, commenter: u32, text: &str) {
        let key = Key::from(format!(
            "comment|{}|{}|{cid:06}|{}",
            user(author),
            article_id(id),
            user(commenter)
        ));
        let value = pequod_store::Value::from(text.as_bytes().to_vec());
        self.meter.put(&key, &value);
        self.engine.put(key, value);
    }

    fn load(&mut self, key: String, value: &str) {
        self.engine.put(key, value.to_string());
    }

    fn rpcs(&self) -> u64 {
        self.meter.rpcs
    }

    fn reset_meter(&mut self) {
        self.meter = RpcMeter::new();
        self.meter.set_cost(self.rpc_cost.0, self.rpc_cost.1);
    }
}

/// Newp driven through the unified [`Client`] API: the same driver runs
/// against the in-process engine, the write-around deployment, or the
/// simulated cluster (Newp needs cache joins, so join-less baselines
/// are out of scope). Interleaved or separate configurations mirror
/// [`PequodNewp`].
pub struct ClientNewp {
    client: Box<dyn Client>,
    name: &'static str,
    meter: RpcMeter,
    interleaved: bool,
    rpc_cost: (u64, u64),
}

impl ClientNewp {
    /// Wraps a join-capable backend; `interleaved` selects the Figure 1
    /// page joins versus separate per-range reads.
    pub fn new(mut client: Box<dyn Client>, interleaved: bool) -> ClientNewp {
        client
            .add_join(NEWP_BASE_JOINS)
            .expect("backend rejected the Newp base joins");
        if interleaved {
            client
                .add_join(NEWP_PAGE_JOINS)
                .expect("backend rejected the Newp page joins");
        }
        ClientNewp {
            name: client.backend_name(),
            client,
            meter: RpcMeter::new(),
            interleaved,
            rpc_cost: (
                crate::rpc::DEFAULT_RPC_COST_NS,
                crate::rpc::DEFAULT_RPC_COST_PER_KB_NS,
            ),
        }
    }

    /// Overrides the RPC cost model (0 measures pure backend work).
    pub fn set_rpc_cost(&mut self, cost_ns: u64, per_kb_ns: u64) {
        self.meter.set_cost(cost_ns, per_kb_ns);
        self.rpc_cost = (cost_ns, per_kb_ns);
    }

    /// The wrapped backend (stats, direct inspection).
    pub fn client_mut(&mut self) -> &mut dyn Client {
        &mut *self.client
    }
}

impl NewpBackend for ClientNewp {
    fn name(&self) -> &'static str {
        self.name
    }

    fn read_article(&mut self, author: u32, id: u32) -> usize {
        let author_s = user(author);
        let id_s = article_id(id);
        if self.interleaved {
            let range = KeyRange::prefix(format!("page|{author_s}|{id_s}|"));
            let pairs = self.client.scan(&range);
            self.meter.scan_with_reply(&range.first, &pairs);
            pairs.len()
        } else {
            let mut items = 0;
            let akey = Key::from(format!("article|{author_s}|{id_s}"));
            let a = self.client.get(&akey);
            self.meter.get_with_reply(&akey, a.as_ref());
            items += a.is_some() as usize;
            let rkey = Key::from(format!("rank|{author_s}|{id_s}"));
            let r = self.client.get(&rkey);
            self.meter.get_with_reply(&rkey, r.as_ref());
            items += r.is_some() as usize;
            let crange = KeyRange::prefix(format!("comment|{author_s}|{id_s}|"));
            let comments = self.client.scan(&crange);
            self.meter.scan_with_reply(&crange.first, &comments);
            items += comments.len();
            for (ckey, _) in &comments {
                let commenter = ckey.components().last().unwrap().to_vec();
                let kkey = Key::from([b"karma|".as_slice(), &commenter].concat());
                let k = self.client.get(&kkey);
                self.meter.get_with_reply(&kkey, k.as_ref());
                items += k.is_some() as usize;
            }
            items
        }
    }

    fn vote(&mut self, author: u32, id: u32, voter: u32) {
        let key = Key::from(format!(
            "vote|{}|{}|{}",
            user(author),
            article_id(id),
            user(voter)
        ));
        let value = Value::from_static(b"1");
        self.meter.put(&key, &value);
        self.client.put(&key, &value);
    }

    fn comment(&mut self, author: u32, id: u32, cid: u32, commenter: u32, text: &str) {
        let key = Key::from(format!(
            "comment|{}|{}|{cid:06}|{}",
            user(author),
            article_id(id),
            user(commenter)
        ));
        let value = Value::from(text.as_bytes().to_vec());
        self.meter.put(&key, &value);
        self.client.put(&key, &value);
    }

    fn load(&mut self, key: String, value: &str) {
        self.client
            .put(&Key::from(key), &Value::from(value.as_bytes().to_vec()));
    }

    fn rpcs(&self) -> u64 {
        self.meter.rpcs
    }

    fn reset_meter(&mut self) {
        self.meter = RpcMeter::new();
        self.meter.set_cost(self.rpc_cost.0, self.rpc_cost.1);
    }
}

/// Newp pre-population and session parameters (§5.4: 100K articles, 50K
/// users, 1M comments, 2M votes; 20M sessions — scaled by the harness).
#[derive(Clone, Debug)]
pub struct NewpConfig {
    /// Number of articles.
    pub articles: u32,
    /// Number of users.
    pub users: u32,
    /// Pre-populated comments.
    pub comments: u32,
    /// Pre-populated votes.
    pub votes: u32,
    /// Sessions to run.
    pub sessions: u32,
    /// Probability a session votes (the Figure 9 x-axis).
    pub vote_rate: f64,
    /// Probability a session comments.
    pub comment_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NewpConfig {
    fn default() -> Self {
        NewpConfig {
            articles: 1000,
            users: 500,
            comments: 10_000,
            votes: 20_000,
            sessions: 20_000,
            vote_rate: 0.1,
            comment_rate: 0.01,
            seed: 0x9e99,
        }
    }
}

/// Result of a Newp run.
#[derive(Clone, Copy, Debug, Default)]
pub struct NewpRunStats {
    /// Wall-clock seconds for the timed phase.
    pub elapsed: f64,
    /// Sessions executed.
    pub sessions: u64,
    /// Data items read across all article renders.
    pub items_read: u64,
    /// RPCs issued.
    pub rpcs: u64,
}

/// Article authorship is deterministic: article `a` belongs to user
/// `a % users`.
pub fn author_of(article: u32, users: u32) -> u32 {
    article % users
}

/// Pre-populates and runs Newp sessions: each session reads a random
/// article, votes with probability `vote_rate`, and comments with
/// probability `comment_rate` (§5.4).
pub fn run_newp(backend: &mut dyn NewpBackend, cfg: &NewpConfig) -> NewpRunStats {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Pre-population (untimed).
    for a in 0..cfg.articles {
        let author = author_of(a, cfg.users);
        backend.load(
            format!("article|{}|{}", user(author), article_id(a)),
            "Breaking: ordered key-value caches considered useful",
        );
    }
    for c in 0..cfg.comments {
        let a = rng.gen_range(0..cfg.articles);
        let author = author_of(a, cfg.users);
        let commenter = rng.gen_range(0..cfg.users);
        backend.load(
            format!(
                "comment|{}|{}|{c:06}|{}",
                user(author),
                article_id(a),
                user(commenter)
            ),
            "insightful remark",
        );
    }
    for _ in 0..cfg.votes {
        let a = rng.gen_range(0..cfg.articles);
        let author = author_of(a, cfg.users);
        let voter = rng.gen_range(0..cfg.users);
        backend.load(
            format!("vote|{}|{}|{}", user(author), article_id(a), user(voter)),
            "1",
        );
    }
    backend.reset_meter();

    // Timed sessions.
    let mut stats = NewpRunStats::default();
    let mut next_cid = cfg.comments;
    let start = std::time::Instant::now();
    for _ in 0..cfg.sessions {
        let a = rng.gen_range(0..cfg.articles);
        let author = author_of(a, cfg.users);
        let visitor = rng.gen_range(0..cfg.users);
        stats.items_read += backend.read_article(author, a) as u64;
        if rng.gen::<f64>() < cfg.vote_rate {
            backend.vote(author, a, visitor);
        }
        if rng.gen::<f64>() < cfg.comment_rate {
            backend.comment(author, a, next_cid, visitor, "late to the thread");
            next_cid += 1;
        }
        stats.sessions += 1;
    }
    stats.elapsed = start.elapsed().as_secs_f64();
    stats.rpcs = backend.rpcs();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use pequod_core::EngineConfig;

    fn tiny() -> NewpConfig {
        NewpConfig {
            articles: 50,
            users: 20,
            comments: 200,
            votes: 400,
            sessions: 300,
            vote_rate: 0.2,
            comment_rate: 0.05,
            seed: 11,
        }
    }

    #[test]
    fn interleaved_and_separate_read_the_same_data() {
        let cfg = tiny();
        let mut il = PequodNewp::new(Engine::new(EngineConfig::default()), true);
        let s1 = run_newp(&mut il, &cfg);
        let mut sep = PequodNewp::new(Engine::new(EngineConfig::default()), false);
        let s2 = run_newp(&mut sep, &cfg);
        assert_eq!(s1.sessions, s2.sessions);
        // Interleaved pages contain the same logical items: article +
        // rank + comments + karma-per-comment. Renders agree as long as
        // both sides saw the same vote/comment history. (Item counts can
        // differ by the rank/karma rows that only exist when votes
        // exist, so compare loosely.)
        assert!(s1.items_read > 0 && s2.items_read > 0);
        // Interleaved issues far fewer RPCs per read.
        assert!(
            s1.rpcs < s2.rpcs,
            "interleaved {} should be < separate {}",
            s1.rpcs,
            s2.rpcs
        );
    }

    #[test]
    fn unified_newp_driver_matches_direct_backend() {
        let cfg = tiny();
        let mut direct = PequodNewp::new(Engine::new(EngineConfig::default()), true);
        let s_direct = run_newp(&mut direct, &cfg);
        let mut unified = ClientNewp::new(Box::new(Engine::new(EngineConfig::default())), true);
        let s_unified = run_newp(&mut unified, &cfg);
        assert_eq!(s_direct.sessions, s_unified.sessions);
        assert_eq!(s_direct.items_read, s_unified.items_read);
        assert_eq!(s_direct.rpcs, s_unified.rpcs);
    }

    #[test]
    fn page_scan_contains_all_item_classes() {
        let mut b = PequodNewp::new(Engine::new(EngineConfig::default()), true);
        b.load("article|n000001|0000003".into(), "the article");
        b.load("comment|n000001|0000003|000001|n000002".into(), "hi");
        b.load("vote|n000001|0000003|n000005".into(), "1");
        b.load("vote|n000002|0000009|n000005".into(), "1"); // commenter's karma
                                                            // commenter n000002 has an article with a vote? karma counts
                                                            // votes on n000002's articles:
        let items = b.read_article(1, 3);
        // a, r, c, k = 4 items
        assert_eq!(items, 4);
        let page = b.engine.scan(&KeyRange::prefix("page|n000001|0000003|"));
        let keys: Vec<String> = page.pairs.iter().map(|(k, _)| k.to_string()).collect();
        assert!(keys.iter().any(|k| k.ends_with("|a")));
        assert!(keys.iter().any(|k| k.ends_with("|r")));
        assert!(keys.iter().any(|k| k.contains("|c|")));
        assert!(keys.iter().any(|k| k.contains("|k|")));
    }

    #[test]
    fn votes_update_rank_and_karma_in_pages() {
        let mut b = PequodNewp::new(Engine::new(EngineConfig::default()), true);
        b.load("article|n000001|0000003".into(), "the article");
        b.read_article(1, 3);
        b.vote(1, 3, 7);
        b.vote(1, 3, 8);
        let page = b.engine.scan(&KeyRange::prefix("page|n000001|0000003|"));
        let rank = page
            .pairs
            .iter()
            .find(|(k, _)| k.to_string().ends_with("|r"))
            .expect("rank row");
        assert_eq!(&rank.1[..], b"2");
    }
}
