//! Cluster bench: what replication costs in steady state, and what a
//! primary failure costs in availability.
//!
//! Runs a real 3-node TCP cluster (replication factor 2) in-process
//! and measures three things:
//!
//! 1. **Steady-state ops/s** — a mixed put/get load through
//!    [`ClusterClient`], every write semi-synchronously replicated
//!    (acked only after all followers confirm).
//! 2. **Failover-to-first-fresh-read** — SIGKILL-equivalent halt of
//!    node 0 (`halt_abrupt`: no finalization, no goodbye), then the
//!    time until a key whose slot node 0 owned is readable again —
//!    i.e. until a follower promotes and serves it.
//! 3. **Catch-up bytes** — a blank replacement node 0 rejoins and the
//!    survivors stream it back to parity; reported as snapshot bytes +
//!    delta bytes from the replication counters.
//!
//! ```text
//! cluster [--scale S] [--json PATH]
//! ```
//!
//! CI's `cluster-smoke` job publishes `BENCH_cluster_smoke.json` per
//! push (the availability counterpart of the recovery-smoke artifact).

use pequod_bench::{arg_value, print_table, Scale};
use pequod_cluster::{ClusterClient, ClusterConfig, ClusterServer};
use pequod_core::{Engine, EngineConfig};
use pequod_store::Key;
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Reserves `n` distinct loopback ports by binding and dropping
/// listeners; the servers rebind them immediately after.
fn free_ports(n: usize) -> Vec<u16> {
    let held: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind probe"))
        .collect();
    held.iter()
        .map(|l| l.local_addr().expect("local addr").port())
        .collect()
}

fn cluster_cfg(ports: &[u16]) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(ports.len() as u32, 2);
    for (node, port) in cfg.nodes.iter_mut().zip(ports) {
        node.addr = format!("127.0.0.1:{port}");
    }
    cfg
}

fn spawn_node(cfg: &ClusterConfig, id: u32) -> ClusterServer {
    ClusterServer::spawn(cfg.clone(), id, Engine::new(EngineConfig::default()), None)
        .unwrap_or_else(|e| panic!("spawn node {id}: {e}"))
}

fn stat_of(pairs: &[(Key, pequod_store::Value)], name: &str) -> u64 {
    let want = format!("stat|{name}");
    pairs
        .iter()
        .find(|(k, _)| k.as_bytes() == want.as_bytes())
        .and_then(|(_, v)| std::str::from_utf8(v).ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Total catch-up payload streamed by the survivors so far.
fn catchup_bytes(client: &mut ClusterClient, survivors: &[u32]) -> u64 {
    survivors
        .iter()
        .filter_map(|&n| client.status(n).ok())
        .map(|pairs| stat_of(&pairs, "snap_bytes_sent") + stat_of(&pairs, "delta_bytes_sent"))
        .sum()
}

fn main() {
    let scale = Scale::from_args();
    let steady_ops = scale.count(4_000) as usize;
    let ports = free_ports(3);
    let cfg = cluster_cfg(&ports);
    let mut servers: Vec<Option<ClusterServer>> =
        (0..3).map(|id| Some(spawn_node(&cfg, id))).collect();
    // Let the mesh form (heartbeats flowing, no spurious promotions).
    std::thread::sleep(Duration::from_millis(200));
    let mut client = ClusterClient::connect(cfg.clone());

    // --- Phase 1: steady state ----------------------------------------
    let keyspace = 512u64;
    let key_of = |i: u64| format!("p|u{:03}|{:010}", i % keyspace, 1_000_000 + i);
    let t0 = Instant::now();
    for i in 0..steady_ops as u64 {
        let key = key_of(i);
        if i % 4 == 3 {
            // 25% reads of an already-written key.
            let probe = key_of(i / 2);
            client
                .get(probe.clone())
                .unwrap_or_else(|e| panic!("get {probe}: {e}"));
        } else {
            client
                .put(key.clone(), format!("row-{i}"))
                .unwrap_or_else(|e| panic!("put {key}: {e}"));
        }
    }
    let steady_secs = t0.elapsed().as_secs_f64();
    let steady_ops_per_sec = steady_ops as f64 / steady_secs.max(1e-9);

    // --- Phase 2: failover --------------------------------------------
    // A key node 0 is primary for: the first slot whose initial replica
    // set leads with 0 (slot assignment is round-robin, so slot 0).
    let victim_slot = (0..cfg.slots)
        .find(|&s| cfg.initial_replicas(s)[0] == 0)
        .expect("node 0 owns a slot");
    let victim_key = (0..keyspace)
        .map(|u| format!("p|u{u:03}|{:010}", 1_000_000u64))
        .find(|k| cfg.slot_of(&Key::from(k.clone())) == victim_slot)
        .expect("a key in the victim slot");
    client
        .put(victim_key.clone(), "pre-crash")
        .expect("seed victim key");

    if let Some(mut s) = servers[0].take() {
        s.halt_abrupt();
    }
    let t1 = Instant::now();
    loop {
        match client.get(victim_key.clone()) {
            Ok(Some(_)) => break,
            Ok(None) => panic!("acked write vanished during failover"),
            Err(_) if t1.elapsed() < Duration::from_secs(20) => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("failover never completed: {e}"),
        }
    }
    let failover_ms = t1.elapsed().as_secs_f64() * 1e3;

    // --- Phase 3: catch-up --------------------------------------------
    // A blank node 0 rejoins; survivors stream it back via snapshot +
    // delta. Measure the payload the counters attribute to catch-up.
    let survivors = [1u32, 2u32];
    let bytes_before = catchup_bytes(&mut client, &survivors);
    servers[0] = Some(spawn_node(&cfg, 0));
    let t2 = Instant::now();
    let caught_up = |client: &mut ClusterClient| {
        client.status(0).map(|pairs| {
            stat_of(&pairs, "snap_installs") > 0 || stat_of(&pairs, "notifies_applied") > 0
        })
    };
    while !caught_up(&mut client).unwrap_or(false) {
        assert!(
            t2.elapsed() < Duration::from_secs(30),
            "replacement node never caught up"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Let the stream quiesce so the byte counters settle.
    std::thread::sleep(Duration::from_millis(500));
    let catchup = catchup_bytes(&mut client, &survivors).saturating_sub(bytes_before);

    print_table(
        "Cluster smoke — 3 nodes, replication factor 2",
        &["metric", "value"],
        &[
            vec![
                "steady-state ops/s".to_string(),
                format!("{steady_ops_per_sec:.0}"),
            ],
            vec![
                "failover to first fresh read (ms)".to_string(),
                format!("{failover_ms:.1}"),
            ],
            vec![
                "catch-up bytes (replacement node)".to_string(),
                format!("{catchup}"),
            ],
        ],
    );

    if let Some(path) = arg_value("--json") {
        // Hand-rolled JSON, same convention as fig7/recovery (no serde
        // offline).
        let json = format!(
            "[\n  {{\"phase\": \"steady\", \"ops\": {steady_ops}, \"seconds\": {steady_secs:.6}, \
             \"ops_per_sec\": {steady_ops_per_sec:.1}}},\n  \
             {{\"phase\": \"failover\", \"first_fresh_read_ms\": {failover_ms:.3}}},\n  \
             {{\"phase\": \"catchup\", \"bytes\": {catchup}}}\n]\n"
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    }

    for slot in servers.iter_mut() {
        if let Some(mut s) = slot.take() {
            s.halt();
        }
    }
}
