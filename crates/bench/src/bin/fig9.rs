//! Figure 9: Newp interleaved cache joins versus separate reads, as the
//! vote rate varies.
//!
//! Paper: "interleaved cache joins perform better than fetching article
//! data in separate RPCs, except when writes are very common"; the
//! non-interleaved version wins only above ~90% vote rate, where the
//! cost of precomputing page entries on every vote outweighs saving
//! read RPCs.

use pequod_bench::{arg_value, pequod_client_or_exit, print_table, secs, Scale};
use pequod_core::EngineConfig;
use pequod_workloads::newp::{run_newp, ClientNewp, NewpConfig};

/// The Newp base tables (partitioned/database-resident in non-engine
/// deployments).
const NEWP_TABLES: &[&str] = &["article|", "comment|", "vote|"];

fn main() {
    let scale = Scale::from_args();
    // Driven through the unified client API: `--backend
    // {engine,writearound,cluster}` selects the deployment.
    let backend = arg_value("--backend").unwrap_or_else(|| "engine".to_string());
    let make = |interleaved: bool| -> ClientNewp {
        let client = pequod_client_or_exit(&backend, EngineConfig::default(), NEWP_TABLES);
        ClientNewp::new(client, interleaved)
    };
    let base = NewpConfig {
        articles: scale.count(2000) as u32,
        users: scale.count(1000) as u32,
        comments: scale.count(20_000) as u32,
        votes: scale.count(40_000) as u32,
        sessions: scale.count(20_000) as u32,
        comment_rate: 0.01,
        vote_rate: 0.0,
        seed: 0xf19,
    };
    let mut rows = Vec::new();
    for vote_pct in [0u32, 10, 25, 50, 75, 90, 100] {
        let cfg = NewpConfig {
            vote_rate: vote_pct as f64 / 100.0,
            ..base.clone()
        };
        let mut inter = make(true);
        let s_inter = run_newp(&mut inter, &cfg);
        let mut sep = make(false);
        let s_sep = run_newp(&mut sep, &cfg);
        let winner = if s_inter.elapsed < s_sep.elapsed {
            "interleaved"
        } else {
            "separate"
        };
        rows.push(vec![
            format!("{vote_pct}%"),
            secs(s_sep.elapsed),
            secs(s_inter.elapsed),
            s_sep.rpcs.to_string(),
            s_inter.rpcs.to_string(),
            winner.to_string(),
        ]);
    }
    print_table(
        &format!(
            "Figure 9 — Newp runtime (s): non-interleaved vs interleaved page joins [{backend}]"
        ),
        &[
            "vote rate",
            "separate (s)",
            "interleaved (s)",
            "sep rpcs",
            "inter rpcs",
            "best",
        ],
        &rows,
    );
    println!(
        "\npaper shape: interleaved wins at low-to-moderate vote rates (fewer RPCs\n\
         per article read); the crossover where precomputation outweighs read\n\
         savings appears around a 90% vote rate."
    );
}
