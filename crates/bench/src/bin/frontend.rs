//! Front-end bench: what the event-driven reactor buys over the
//! blocking thread-per-connection server.
//!
//! Two sweeps, both driven by [`Swarm`] (a single-threaded pipelined
//! many-connection client over the same `epoll` wrapper the server
//! uses), against both network models on a fresh single [`Engine`]:
//!
//! 1. **Open-connection sweep** — 100 → 5000 concurrent pipelined
//!    connections (scaled by `--scale`, capped by the process fd
//!    limit), a fixed total frame budget split across them. The
//!    thread-per-connection server pays one OS thread per socket; the
//!    reactor pays one.
//! 2. **Pipeline-depth sweep** — a fixed connection count with 1 → 64
//!    unacked frames per connection, measuring what request batching
//!    in flight is worth on each model.
//!
//! Traffic is an even put/get mix over a small keyspace (`id` = frame
//! sequence). Any server-side error reply fails the run.
//!
//! ```text
//! frontend [--scale S] [--json PATH]
//! ```
//!
//! CI's `frontend-smoke` job publishes `BENCH_frontend_smoke.json` per
//! push, so reactor-vs-threads capacity is recorded per commit.

use pequod_bench::{arg_value, print_table, Scale};
use pequod_core::{Engine, EngineConfig};
use pequod_net::{FrontendConfig, FrontendServer, Message, Swarm, SwarmConfig, TcpServer};
use pequod_store::{Key, Value};
use std::net::SocketAddr;
use std::time::Instant;

/// One measured run.
struct Row {
    sweep: &'static str,
    model: &'static str,
    conns: usize,
    depth: usize,
    frames: u64,
    replies: u64,
    secs: f64,
    /// Client-observed per-frame latency (queued to last reply), µs.
    p50_us: u64,
    p99_us: u64,
}

impl Row {
    fn ops_per_sec(&self) -> f64 {
        self.replies as f64 / self.secs.max(1e-9)
    }
}

/// Per-process open-file limit, from `/proc/self/limits`; generous
/// fallback if the file is unreadable (non-Linux dev box).
fn fd_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3).map(str::to_string))
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or(65_536)
}

/// A server of the given model around a fresh engine; returns its
/// address and a shutdown closure.
#[allow(clippy::type_complexity)]
fn spawn(model: &str) -> (SocketAddr, Box<dyn FnOnce()>) {
    let engine = Engine::new(EngineConfig::default());
    match model {
        "reactor" => {
            let mut s = FrontendServer::spawn("127.0.0.1:0", engine, FrontendConfig::default())
                .expect("spawn reactor front-end");
            let addr = s.addr();
            (addr, Box::new(move || s.shutdown()))
        }
        "threads" => {
            let mut s = TcpServer::spawn("127.0.0.1:0", engine).expect("spawn threads front-end");
            let addr = s.addr();
            (addr, Box::new(move || s.shutdown()))
        }
        other => panic!("unknown model {other}"),
    }
}

/// Runs one swarm of `conns × frames_per_conn` put/get frames against
/// a fresh server of `model`.
fn run_one(
    sweep: &'static str,
    model: &'static str,
    conns: usize,
    depth: usize,
    frames_per_conn: usize,
) -> Row {
    let (addr, stop) = spawn(model);
    let swarm = Swarm::new(SwarmConfig {
        conns,
        depth,
        frames_per_conn,
        wait_ms: 1_000,
        max_stalls: 60,
    });
    let t0 = Instant::now();
    let report = swarm
        .run(
            addr,
            |conn, seq| {
                let key = Key::from(format!("p|u{:04}|{seq:06}", conn % 512));
                if seq % 2 == 0 {
                    Message::Put {
                        id: seq as u64,
                        key,
                        value: Value::from(b"row".to_vec()),
                    }
                } else {
                    Message::Get {
                        id: seq as u64,
                        key,
                    }
                }
            },
            |_, _| {},
        )
        .unwrap_or_else(|e| panic!("{model} swarm ({conns} conns, depth {depth}): {e}"));
    let secs = t0.elapsed().as_secs_f64();
    stop();
    assert_eq!(
        report.reply_errors, 0,
        "{model} returned error replies under load"
    );
    Row {
        sweep,
        model,
        conns,
        depth,
        frames: report.frames_sent,
        replies: report.replies,
        secs,
        p50_us: report.latency.p50(),
        p99_us: report.latency.p99(),
    }
}

fn main() {
    let scale = Scale::from_args();
    // Each swarm connection costs two fds in this process (client end +
    // server end); leave headroom for listeners, wake pipes, std fds.
    let conn_cap = (fd_limit().saturating_sub(128)) / 2;
    let mut rows: Vec<Row> = Vec::new();

    // --- Sweep 1: open connections ------------------------------------
    // Roughly constant total frame budget, split across the swarm.
    let total_frames = scale.count(120_000);
    let mut conn_levels: Vec<usize> = [100u64, 500, 1000, 2000, 5000]
        .iter()
        .map(|&c| (scale.count(c) as usize).clamp(8, conn_cap))
        .collect();
    conn_levels.dedup();
    for &conns in &conn_levels {
        let per_conn = ((total_frames as usize) / conns).max(4);
        for model in ["reactor", "threads"] {
            rows.push(run_one("conns", model, conns, 8, per_conn));
        }
    }

    // --- Sweep 2: pipeline depth --------------------------------------
    let depth_conns = (scale.count(64) as usize).clamp(4, conn_cap);
    let depth_frames = (scale.count(40_000) as usize / depth_conns).max(8);
    for depth in [1usize, 4, 16, 64] {
        for model in ["reactor", "threads"] {
            rows.push(run_one("depth", model, depth_conns, depth, depth_frames));
        }
    }

    print_table(
        "Front-end smoke — reactor vs thread-per-connection",
        &[
            "sweep", "model", "conns", "depth", "frames", "ops/s", "p50 µs", "p99 µs",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.sweep.to_string(),
                    r.model.to_string(),
                    r.conns.to_string(),
                    r.depth.to_string(),
                    r.frames.to_string(),
                    format!("{:.0}", r.ops_per_sec()),
                    r.p50_us.to_string(),
                    r.p99_us.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    if let Some(path) = arg_value("--json") {
        // Hand-rolled JSON, same convention as fig7/cluster (no serde
        // offline).
        let mut json = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            let sep = if i + 1 < rows.len() { "," } else { "" };
            json.push_str(&format!(
                "  {{\"sweep\": \"{}\", \"model\": \"{}\", \"conns\": {}, \"depth\": {}, \
                 \"frames\": {}, \"replies\": {}, \"seconds\": {:.6}, \
                 \"ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}{sep}\n",
                r.sweep,
                r.model,
                r.conns,
                r.depth,
                r.frames,
                r.replies,
                r.secs,
                r.ops_per_sec(),
                r.p50_us,
                r.p99_us,
            ));
        }
        json.push_str("]\n");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    }
}
