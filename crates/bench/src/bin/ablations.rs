//! Ablations of Pequod's implementation optimizations, reproducing the
//! in-text factors of §4 and the maintenance-policy claim of §3.2:
//!
//! * **A1 — subtables** (§4.1): hash-indexed subtables speed up the Twip
//!   benchmark 1.55x at a 1.17x memory cost.
//! * **A2 — output hints** (§4.2): last-output pointers on aggregate
//!   maintenance, 1.11x on Twip (here measured on the count-heavy Newp
//!   vote path as well).
//! * **A3 — value sharing** (§4.3): refcounted copy outputs cut memory
//!   1.14x on Twip.
//! * **M1 — lazy checks** (§3.2): logging subscription changes and
//!   applying them at read time beats eager application under
//!   subscription churn.

use pequod_bench::{
    arg_value, mib, pequod_client_or_exit, print_table, ratio, secs, twip_graph, Scale,
};
use pequod_core::{Client, EngineConfig};
use pequod_store::StoreConfig;
use pequod_workloads::newp::{run_newp, ClientNewp, NewpConfig};
use pequod_workloads::twip::{
    run_twip, ClientTwip, TwipBackend, TwipMix, TwipRunStats, TwipStrategy, TwipWorkload,
};
use pequod_workloads::SocialGraph;

/// Builds the selected deployment behind the unified client API
/// (`--backend {engine,sharded,writearound,cluster}`; engine by default).
fn backend_client(cfg: EngineConfig, tables: &[&str]) -> Box<dyn Client> {
    let backend = arg_value("--backend").unwrap_or_else(|| "engine".to_string());
    pequod_client_or_exit(&backend, cfg, tables)
}

fn twip_backend(cfg: EngineConfig) -> ClientTwip {
    let mut backend = ClientTwip::new(
        backend_client(cfg, &["p|", "s|"]),
        TwipStrategy::ServerJoins,
    );
    // Ablations isolate engine internals: no simulated network cost.
    backend.set_rpc_cost(0, 0);
    backend
}

fn twip_run(graph: &SocialGraph, workload: &TwipWorkload, cfg: EngineConfig) -> TwipRunStats {
    let mut backend = twip_backend(cfg);
    run_twip(&mut backend, graph, workload, 3000)
}

fn main() {
    let scale = Scale::from_args();
    let users = scale.count(2500) as u32;
    let graph = twip_graph(users, 0xab1);
    let mix = TwipMix {
        active_fraction: 0.7,
        checks_per_user: 12,
        seed: 0xab17,
        ..TwipMix::default()
    };
    let workload = TwipWorkload::generate(&graph, &mix);
    let mut rows = Vec::new();

    // A1: subtables on/off.
    let split = twip_run(
        &graph,
        &workload,
        EngineConfig::with_store(
            StoreConfig::flat()
                .with_subtable("t|", 2)
                .with_subtable("p|", 2),
        ),
    );
    let flat = twip_run(
        &graph,
        &workload,
        EngineConfig::with_store(StoreConfig::flat()),
    );
    rows.push(vec![
        "A1 subtables (§4.1)".into(),
        format!("{} / {}", secs(flat.elapsed), secs(split.elapsed)),
        ratio(flat.elapsed / split.elapsed),
        "1.55x faster".into(),
        format!(
            "mem {} -> {} ({})",
            mib(flat.memory_bytes),
            mib(split.memory_bytes),
            ratio(split.memory_bytes as f64 / flat.memory_bytes as f64)
        ),
    ]);

    // A2: output hints on/off (Twip + count-heavy Newp votes).
    let hints_on = twip_run(&graph, &workload, EngineConfig::default());
    let cfg = EngineConfig {
        output_hints: false,
        ..EngineConfig::default()
    };
    let hints_off = twip_run(&graph, &workload, cfg);
    rows.push(vec![
        "A2 output hints, Twip (§4.2)".into(),
        format!("{} / {}", secs(hints_off.elapsed), secs(hints_on.elapsed)),
        ratio(hints_off.elapsed / hints_on.elapsed),
        "1.11x faster".into(),
        String::new(),
    ]);
    let newp_cfg = NewpConfig {
        articles: scale.count(1500) as u32,
        users: scale.count(800) as u32,
        comments: scale.count(8000) as u32,
        votes: scale.count(16000) as u32,
        sessions: scale.count(12000) as u32,
        vote_rate: 0.6,
        comment_rate: 0.01,
        seed: 0xab19,
    };
    let newp_tables: &[&str] = &["article|", "comment|", "vote|"];
    let mut b = ClientNewp::new(backend_client(EngineConfig::default(), newp_tables), true);
    b.set_rpc_cost(0, 0);
    let nh_on = run_newp(&mut b, &newp_cfg);
    let cfg = EngineConfig {
        output_hints: false,
        ..EngineConfig::default()
    };
    let mut b = ClientNewp::new(backend_client(cfg, newp_tables), true);
    b.set_rpc_cost(0, 0);
    let nh_off = run_newp(&mut b, &newp_cfg);
    rows.push(vec![
        "A2 output hints, Newp votes".into(),
        format!("{} / {}", secs(nh_off.elapsed), secs(nh_on.elapsed)),
        ratio(nh_off.elapsed / nh_on.elapsed),
        "(count-heavy)".into(),
        String::new(),
    ]);

    // A3: value sharing on/off (memory).
    let share_on = twip_run(&graph, &workload, EngineConfig::default());
    let cfg = EngineConfig {
        value_sharing: false,
        ..EngineConfig::default()
    };
    let share_off = twip_run(&graph, &workload, cfg);
    rows.push(vec![
        "A3 value sharing (§4.3)".into(),
        format!(
            "mem {} / {}",
            mib(share_off.memory_bytes),
            mib(share_on.memory_bytes)
        ),
        ratio(share_off.memory_bytes as f64 / share_on.memory_bytes as f64),
        "1.14x less memory".into(),
        String::new(),
    ]);

    // M1: lazy vs eager check maintenance — lazy maintenance moves the
    // subscription-change cost off the write path onto later reads
    // (§3.2). Measure the write path and the read path separately.
    let m1 = |lazy: bool| -> (f64, f64) {
        let cfg = EngineConfig {
            lazy_checks: lazy,
            ..EngineConfig::default()
        };
        let mut backend = twip_backend(cfg);
        backend.load_graph(&graph);
        for t in 0..3000u64 {
            backend.load_post((t % users as u64) as u32, t, "warm tweet");
        }
        for u in 0..users / 2 {
            backend.check(u, 0); // materialize timelines
        }
        // Write path: a burst of new subscriptions.
        let start = std::time::Instant::now();
        for u in 0..users / 2 {
            backend.subscribe(u, (u + 13) % users);
            backend.subscribe(u, (u + 29) % users);
        }
        let write_path = start.elapsed().as_secs_f64();
        // Read path: the checks that absorb the deferred work.
        let start = std::time::Instant::now();
        for u in 0..users / 2 {
            backend.check(u, 0);
        }
        let read_path = start.elapsed().as_secs_f64();
        (write_path, read_path)
    };
    let (lazy_w, lazy_r) = m1(true);
    let (eager_w, eager_r) = m1(false);
    rows.push(vec![
        "M1 lazy checks: write path (§3.2)".into(),
        format!("{} / {}", secs(eager_w), secs(lazy_w)),
        ratio(eager_w / lazy_w.max(1e-9)),
        "shifts work off writes".into(),
        format!("read path {} / {}", secs(eager_r), secs(lazy_r)),
    ]);

    print_table(
        "Ablations — disabled / enabled runtime (factor > 1 means the optimization helps)",
        &["ablation", "off / on", "factor", "paper", "notes"],
        &rows,
    );
}
