//! Recovery bench: what durability costs on the write path, and what
//! it buys at restart.
//!
//! Two measurements, both on the zipf-skewed Twip-shaped base load:
//!
//! 1. **Logging overhead** — the same base ingest (subscriptions +
//!    posts through full incremental maintenance) with no WAL versus a
//!    WAL under each fsync policy (`never`, `every:64`, `always`).
//!    Reported as ops/s and a slowdown ratio against the volatile
//!    engine.
//! 2. **Restart-to-first-fresh-read** — after the durable run, a fresh
//!    process recovers from snapshot + log (`attach`) and serves its
//!    first timeline read (which lazily re-derives that computed
//!    range); versus a *cold* start that must re-ingest every base
//!    pair from a backing store before it can serve the same read.
//!    Both paths must answer the read byte-identically — the binary
//!    exits non-zero if they diverge.
//!
//! ```text
//! recovery [--scale S] [--json PATH]
//! ```
//!
//! CI's `recovery-smoke` job publishes `BENCH_recovery_smoke.json` per
//! push (the durability counterpart of the eviction-smoke artifact).

use pequod_bench::{arg_value, mib, print_table, ratio, secs, Scale};
use pequod_core::{Engine, EngineConfig};
use pequod_persist::{attach, FsyncPolicy, PersistOptions};
use pequod_store::{Key, KeyRange, StoreConfig, Value};
use std::path::PathBuf;
use std::time::Instant;

const TIMELINE: &str =
    "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>";

struct Load {
    users: u32,
    /// (key, value) base writes: follow edges then posts, zipf-skewed
    /// posters so timelines have real fan-in.
    writes: Vec<(Key, Value)>,
}

fn load(scale: &Scale) -> Load {
    let users = scale.count(400) as u32;
    let posts = scale.count(20_000);
    let mut writes = Vec::with_capacity(posts as usize + users as usize * 4);
    // Deterministic follower graph: user u follows 4 accounts skewed
    // toward low ids (the celebrities).
    let mut state = 0x5eed_f00du64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for u in 0..users {
        for f in 0..4 {
            let skew = (rng() % ((u as u64 + 2) * (f + 1))) as u32 % users;
            writes.push((
                Key::from(format!("s|u{u:04}|u{skew:04}")),
                Value::from_static(b"1"),
            ));
        }
    }
    for i in 0..posts {
        let poster = ((rng() % users as u64) * (rng() % users as u64) / users as u64) as u32;
        writes.push((
            Key::from(format!("p|u{poster:04}|{:010}", 1_000_000 + i)),
            Value::from(format!("post-{i}").into_bytes()),
        ));
    }
    Load { users, writes }
}

fn engine() -> Engine {
    let mut e = Engine::new(EngineConfig::with_store(
        StoreConfig::flat()
            .with_subtable("t|", 2)
            .with_subtable("p|", 2),
    ));
    e.add_join_text(TIMELINE).unwrap();
    e
}

struct IngestRun {
    label: String,
    seconds: f64,
    ops: u64,
}

fn ingest(label: &str, dir: Option<(&PathBuf, FsyncPolicy)>, loadset: &Load) -> IngestRun {
    let mut e = engine();
    if let Some((dir, fsync)) = dir {
        let _ = std::fs::remove_dir_all(dir);
        attach(
            &mut e,
            dir,
            PersistOptions {
                fsync,
                snapshot_every: None,
            },
        )
        .unwrap_or_else(|err| panic!("attach {}: {err}", dir.display()));
    }
    let t0 = Instant::now();
    for (k, v) in &loadset.writes {
        e.put(k.clone(), v.clone());
    }
    IngestRun {
        label: label.to_string(),
        seconds: t0.elapsed().as_secs_f64(),
        ops: loadset.writes.len() as u64,
    }
}

/// First fresh read: the hottest user's whole timeline (computed — a
/// warm restart must re-derive it, a cold start must first own the
/// base data).
fn first_read(e: &mut Engine) -> Vec<(Key, Value)> {
    e.scan(&KeyRange::prefix("t|u0000|")).pairs
}

fn main() {
    let scale = Scale::from_args();
    let loadset = load(&scale);
    println!(
        "recovery: {} users, {} base writes",
        loadset.users,
        loadset.writes.len()
    );
    let base = std::env::temp_dir().join(format!("pequod-recovery-bench-{}", std::process::id()));
    let wal_dir = base.join("sweep");
    let keep_dir = base.join("restart");

    // --- Phase 1: logging overhead sweep -------------------------------
    let mut runs = vec![ingest("no-wal", None, &loadset)];
    for (label, fsync) in [
        ("wal+never", FsyncPolicy::Never),
        ("wal+every:64", FsyncPolicy::EveryN(64)),
        ("wal+always", FsyncPolicy::Always),
    ] {
        runs.push(ingest(label, Some((&wal_dir, fsync)), &loadset));
    }
    let base_secs = runs[0].seconds;
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                secs(r.seconds),
                format!("{:.0}", r.ops as f64 / r.seconds.max(1e-9)),
                ratio(r.seconds / base_secs),
            ]
        })
        .collect();
    print_table(
        "Logging overhead — base ingest, volatile vs WAL fsync policies",
        &["mode", "runtime (s)", "ops/s", "vs no-wal"],
        &rows,
    );

    // --- Phase 2: restart-to-first-fresh-read vs cold recompute --------
    // Build the durable state once (fsync irrelevant for this phase).
    let reference_read;
    {
        let mut e = engine();
        let _ = std::fs::remove_dir_all(&keep_dir);
        attach(&mut e, &keep_dir, PersistOptions::default())
            .unwrap_or_else(|err| panic!("attach: {err}"));
        for (k, v) in &loadset.writes {
            e.put(k.clone(), v.clone());
        }
        reference_read = first_read(&mut e);
    }

    // Warm restart: snapshot + log replay, then the first read
    // re-derives the timeline.
    let t0 = Instant::now();
    let mut warm = engine();
    let report = attach(&mut warm, &keep_dir, PersistOptions::default())
        .unwrap_or_else(|err| panic!("recover: {err}"));
    let warm_recover_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let warm_read = first_read(&mut warm);
    let warm_read_secs = t1.elapsed().as_secs_f64();

    // Cold start: nothing on disk — every base pair must come back
    // from a backing store (modeled at memory speed: a lower bound on
    // any real refetch) before the read can be served.
    let t2 = Instant::now();
    let mut cold = engine();
    for (k, v) in &loadset.writes {
        cold.put(k.clone(), v.clone());
    }
    let cold_ingest_secs = t2.elapsed().as_secs_f64();
    let t3 = Instant::now();
    let cold_read = first_read(&mut cold);
    let cold_read_secs = t3.elapsed().as_secs_f64();

    let warm_total = warm_recover_secs + warm_read_secs;
    let cold_total = cold_ingest_secs + cold_read_secs;
    print_table(
        "Restart-to-first-fresh-read — warm recovery vs cold recompute",
        &[
            "path",
            "restore (s)",
            "first read (s)",
            "total (s)",
            "vs cold",
        ],
        &[
            vec![
                "warm (snapshot+wal)".to_string(),
                secs(warm_recover_secs),
                secs(warm_read_secs),
                secs(warm_total),
                ratio(warm_total / cold_total),
            ],
            vec![
                "cold (re-ingest)".to_string(),
                secs(cold_ingest_secs),
                secs(cold_read_secs),
                secs(cold_total),
                ratio(1.0),
            ],
        ],
    );
    println!(
        "recovered generation {}: {} snapshot pairs + {} wal records, timeline = {} entries, footprint {}",
        report.generation,
        report.snapshot_pairs,
        report.wal_records,
        warm_read.len(),
        mib(warm.memory_bytes()),
    );

    if let Some(path) = arg_value("--json") {
        // Hand-rolled JSON, same convention as fig7/eviction (no serde
        // offline).
        let mut rows: Vec<String> = runs
            .iter()
            .map(|r| {
                format!(
                    "  {{\"phase\": \"ingest\", \"mode\": \"{}\", \"seconds\": {:.6}, \
                     \"ops\": {}, \"ops_per_sec\": {:.1}, \"vs_no_wal\": {:.4}}}",
                    r.label,
                    r.seconds,
                    r.ops,
                    r.ops as f64 / r.seconds.max(1e-9),
                    r.seconds / base_secs
                )
            })
            .collect();
        rows.push(format!(
            "  {{\"phase\": \"restart\", \"mode\": \"warm\", \"restore_seconds\": {warm_recover_secs:.6}, \
             \"first_read_seconds\": {warm_read_secs:.6}, \"total_seconds\": {warm_total:.6}, \
             \"snapshot_pairs\": {}, \"wal_records\": {}}}",
            report.snapshot_pairs, report.wal_records
        ));
        rows.push(format!(
            "  {{\"phase\": \"restart\", \"mode\": \"cold\", \"restore_seconds\": {cold_ingest_secs:.6}, \
             \"first_read_seconds\": {cold_read_secs:.6}, \"total_seconds\": {cold_total:.6}}}"
        ));
        let json = format!("[\n{}\n]\n", rows.join(",\n"));
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    }

    let _ = std::fs::remove_dir_all(&base);

    // Transparency gate: warm and cold must serve the identical first
    // read — recovery that answered differently would be data loss or
    // stale derivation, not a performance tradeoff.
    if warm_read != cold_read || warm_read != reference_read {
        eprintln!(
            "FAIL: first read diverged (warm {} entries, cold {}, reference {})",
            warm_read.len(),
            cold_read.len(),
            reference_read.len()
        );
        std::process::exit(1);
    }
}
