//! Figure 10: distributed scalability — timeline-check throughput as
//! compute servers are added.
//!
//! Paper setup (§5.5): a backing store absorbing all writes plus 12–48
//! Pequod compute servers executing the timeline join; 28M active users,
//! warm caches, all of a user's requests routed to one compute server.
//! Result: throughput rises 3x (1.42M → 4.27M qps) as compute servers
//! go 12 → 48 — sub-linear because base data is duplicated per compute
//! server, and inter-server subscription traffic grows from ~10% to ~16%
//! of bytes.
//!
//! Methodology note: the cluster is simulated in one process, so we
//! report *simulated throughput* — total timeline checks divided by the
//! busiest compute server's measured CPU time. The paper's bottleneck is
//! compute-server CPU, which join execution here exercises for real; the
//! wall clock of the whole simulation is not the measurement.

use pequod_bench::{print_table, twip_graph, Scale};
use pequod_core::{Client, Engine, EngineConfig};
use pequod_net::{
    ClusterClient, ComponentHashPartition, Message, Partition, ServerId, ServerNode, SimCluster,
    SimConfig,
};
use pequod_store::{Key, KeyRange, StoreConfig, Value};
use pequod_workloads::twip::{post_key, sub_key, user_name, TIMELINE_JOIN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Base tables (p|, s|) are homed on server 0; compute servers 1..=k
/// serve timelines for users hashed to them.
struct Fig10Partition {
    base: ServerId,
}

impl Partition for Fig10Partition {
    fn home_of(&self, _key: &Key) -> ServerId {
        self.base
    }
}

/// Client-side read routing (§2.4): all of user `u`'s timeline checks
/// go to compute server `1 + S(u)`.
struct ComputeRouter {
    user_router: ComponentHashPartition,
}

impl Partition for ComputeRouter {
    fn home_of(&self, key: &Key) -> ServerId {
        let comp = key.components().nth(1).unwrap_or(key.as_bytes());
        ServerId(1 + self.user_router.server_for_component(comp).0)
    }
}

fn run_cluster(compute_servers: u32, users: u32, scale: &Scale) -> (f64, f64, u64) {
    let graph = twip_graph(users, 0xf10);
    let part = Arc::new(Fig10Partition { base: ServerId(0) });
    let user_router = ComponentHashPartition {
        component: 1,
        servers: compute_servers,
    };
    let mut nodes = Vec::new();
    // Node 0: the backing store (absorbs all writes).
    nodes.push(ServerNode::new(
        ServerId(0),
        Engine::new(EngineConfig::default()),
        part.clone(),
        &[],
    ));
    for i in 1..=compute_servers {
        let cfg = EngineConfig::with_store(StoreConfig::flat().with_subtable("t|", 2));
        nodes.push(ServerNode::new(
            ServerId(i),
            Engine::new(cfg),
            part.clone(),
            &["p|", "s|"],
        ));
    }
    let mut cluster = SimCluster::new(SimConfig::default(), nodes);
    // The timeline join runs on compute servers only (so no broadcast
    // AddJoin through the client, which would install it everywhere).
    for i in 1..=compute_servers {
        cluster.request(
            0,
            ServerId(i),
            Message::AddJoin {
                id: u64::MAX,
                text: TIMELINE_JOIN.to_string(),
            },
        );
        cluster.run_until_quiet();
        cluster.take_replies();
    }
    // Everything else goes through the unified client API: writes are
    // routed to the backing store by the partition function, timeline
    // reads to each user's compute server by the read router.
    let mut client =
        ClusterClient::new(cluster, part).with_read_router(Arc::new(ComputeRouter { user_router }));
    // Load the graph and initial posts at the backing store.
    let one = Value::from_static(b"1");
    let mut time = 1u64;
    for u in 0..users {
        for &p in graph.followees(u) {
            client.put(&Key::from(sub_key(u, p)), &one);
        }
    }
    let initial_posts = scale.count(users as u64 / 2);
    let mut rng = StdRng::seed_from_u64(0x10ad);
    let warm_tweet = Value::from_static(b"warm tweet");
    for _ in 0..initial_posts {
        let poster = rng.gen_range(0..users);
        client.put(&Key::from(post_key(poster, time, false)), &warm_tweet);
        time += 1;
    }
    // Warm: log every user into their compute server (installs
    // subscriptions, base data, updaters — §5.5).
    for u in 0..users {
        client.scan(&KeyRange::prefix(format!("t|{}|", user_name(u))));
    }
    // Reset CPU accounting after warm-up by reading a baseline.
    let warm_busy: Vec<std::time::Duration> = (1..=compute_servers)
        .map(|i| client.cluster().busy_time(ServerId(i)))
        .collect();

    // Measured phase: checks + subscriptions + posts in the §5.1 ratio
    // (100 checks : 10 subscriptions : 1 post).
    let checks = scale.count(users as u64 * 20);
    let new_tweet = Value::from_static(b"new tweet");
    let mut executed_checks = 0u64;
    for _ in 0..checks {
        let r = rng.gen_range(0..111u32);
        if r < 100 {
            let u = rng.gen_range(0..users);
            client.scan(&KeyRange::new(
                format!("t|{}|{:010}", user_name(u), time.saturating_sub(50)),
                Key::from(format!("t|{}|", user_name(u)))
                    .prefix_end()
                    .unwrap(),
            ));
            executed_checks += 1;
        } else if r < 110 {
            let u = rng.gen_range(0..users);
            let p = rng.gen_range(0..users);
            client.put(&Key::from(sub_key(u, p)), &one);
        } else {
            let poster = rng.gen_range(0..users);
            client.put(&Key::from(post_key(poster, time, false)), &new_tweet);
            time += 1;
        }
    }
    client.cluster_mut().run_until_quiet();

    // Throughput = checks / busiest compute server CPU second.
    let max_busy = (1..=compute_servers)
        .map(|i| client.cluster().busy_time(ServerId(i)) - warm_busy[(i - 1) as usize])
        .max()
        .unwrap_or_default();
    let qps = executed_checks as f64 / max_busy.as_secs_f64().max(1e-9);
    let traffic = client.cluster().traffic;
    let sub_frac = traffic.subscription_bytes as f64
        / (traffic.subscription_bytes + traffic.client_bytes) as f64;
    let compute_memory: u64 = (1..=compute_servers)
        .map(|i| client.cluster().node(ServerId(i)).engine.memory_bytes() as u64)
        .sum();
    (qps, sub_frac, compute_memory)
}

fn main() {
    let scale = Scale::from_args();
    let users = scale.count(4000) as u32;
    let mut rows = Vec::new();
    let mut first_qps = None;
    for servers in [1u32, 2, 4, 8] {
        let (qps, sub_frac, mem) = run_cluster(servers, users, &scale);
        let base = *first_qps.get_or_insert(qps);
        rows.push(vec![
            servers.to_string(),
            format!("{:.0}", qps / 1000.0),
            format!("{:.2}x", qps / base),
            format!("{:.1}%", sub_frac * 100.0),
            format!("{:.1}", mem as f64 / (1 << 20) as f64),
        ]);
    }
    print_table(
        "Figure 10 — simulated throughput vs compute servers",
        &[
            "compute servers",
            "kqps (per busiest-server cpu-s)",
            "speedup",
            "subscription traffic",
            "compute memory MiB",
        ],
        &rows,
    );
    println!(
        "\npaper shape: 4x more compute servers -> ~3x throughput (sub-linear:\n\
         per-server base-data duplication grows), subscription share of network\n\
         bytes rises (paper: 10% -> 16%), total compute memory grows with servers."
    );
}
