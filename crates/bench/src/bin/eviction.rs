//! Eviction sweep: memory-bounded serving vs the unbounded engine on
//! the zipf-skewed Twip workload (§2.5).
//!
//! The paper's claim is that a cache join can *evict* computed data
//! under memory pressure and transparently recompute it on the next
//! read — that is what separates a cache join from a materialized view.
//! This binary measures the cost of that transparency: it runs the
//! standard Twip experiment unbounded to learn the workload's natural
//! footprint, then re-runs it under memory caps at fractions of that
//! footprint (`--caps 75,50,25`, in percent) and reports throughput,
//! hit rate, eviction counts, and peak/final memory for every run.
//! Answers must not change: each capped run's delivered timeline
//! entries are checked against the unbounded run's, and a mismatch
//! exits non-zero.
//!
//! ```text
//! eviction [--scale S] [--caps P1,P2,...] [--json PATH]
//! ```
//!
//! `--json PATH` writes the results as a JSON array (CI's
//! eviction-smoke job publishes `BENCH_eviction_smoke.json` per commit,
//! the memory-pressure counterpart of the fig7 artifact). The *hit
//! rate* is the fraction of reads answered from already-materialized
//! ranges (1 − fresh materializations / reads): under a cap it falls as
//! cold timelines get evicted and recomputed, which is exactly the
//! eviction-vs-recompute tradeoff `docs/MEMORY.md` describes.

use pequod_bench::{arg_value, mib, print_table, ratio, secs, twip_graph, Scale};
use pequod_core::{Engine, EngineConfig, MemoryLimit};
use pequod_store::{KeyRange, StoreConfig};
use pequod_workloads::twip::{run_twip, timeline_range, PequodTwip, TwipMix, TwipWorkload};
use pequod_workloads::SocialGraph;

struct Experiment {
    graph: SocialGraph,
    workload: TwipWorkload,
    initial_posts: u64,
}

fn experiment(scale: &Scale) -> Experiment {
    let users = scale.count(2000) as u32;
    // The standard zipf-skewed graph (α = 1.2): a few celebrities with
    // huge follower counts, a long tail of small accounts — the skew
    // that makes LRU eviction interesting (hot timelines stay, cold
    // ones cycle).
    let graph = twip_graph(users, 0x5e7);
    let mix = TwipMix {
        active_fraction: 0.7,
        checks_per_user: 15,
        seed: 0xe71c,
        ..TwipMix::default()
    };
    let workload = TwipWorkload::generate(&graph, &mix);
    let initial_posts = scale.count(6000);
    let h = workload.histogram();
    println!(
        "eviction: {} users, {} edges, ops = {} logins / {} subs / {} checks / {} posts",
        users,
        graph.edges(),
        h[0],
        h[1],
        h[2],
        h[3]
    );
    Experiment {
        graph,
        workload,
        initial_posts,
    }
}

fn engine_config() -> EngineConfig {
    EngineConfig::with_store(
        StoreConfig::flat()
            .with_subtable("t|", 2)
            .with_subtable("p|", 2),
    )
}

/// One run's measurements.
struct Run {
    label: String,
    cap_bytes: usize,
    seconds: f64,
    ops: u64,
    entries_returned: u64,
    /// FNV-1a digest over every user's full timeline after the run:
    /// the byte-identical-answers check, not just a count.
    answers_digest: u64,
    hit_rate: f64,
    js_evictions: u64,
    base_evictions: u64,
    peak_memory_bytes: usize,
    final_memory_bytes: usize,
}

/// FNV-1a over every user's post-run timeline contents (keys and
/// values), so equal-cardinality-but-different answers cannot slip
/// past the transparency gate.
fn timelines_digest(engine: &mut Engine, users: u32) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut fold = |bytes: &[u8]| {
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0xff;
        h = h.wrapping_mul(PRIME);
    };
    for u in 0..users {
        let range: KeyRange = timeline_range(u, 0);
        for (k, v) in engine.scan(&range).pairs {
            fold(k.as_bytes());
            fold(&v);
        }
    }
    h
}

fn run_once(exp: &Experiment, label: &str, cap: Option<MemoryLimit>) -> Run {
    let mut config = engine_config();
    config.mem_limit = cap;
    let mut backend = PequodTwip::new(Engine::new(config));
    let stats = run_twip(&mut backend, &exp.graph, &exp.workload, exp.initial_posts);
    // Snapshot counters and footprint before the digest pass below
    // re-reads (and on a capped engine, recomputes) every timeline.
    let es = *backend.engine.engine_stats();
    let final_memory = backend.engine.memory_bytes();
    let answers_digest = timelines_digest(&mut backend.engine, exp.graph.users());
    // Reads answered without a fresh materialization, over the whole
    // run (warm-up included — both modes warm identically).
    let hit_rate = if es.scans > 0 {
        1.0 - (es.ranges_materialized.min(es.scans) as f64 / es.scans as f64)
    } else {
        0.0
    };
    Run {
        label: label.to_string(),
        cap_bytes: cap.map_or(0, |l| l.high_bytes),
        seconds: stats.elapsed,
        ops: stats.ops,
        entries_returned: stats.entries_returned,
        answers_digest,
        hit_rate,
        js_evictions: es.js_evictions,
        base_evictions: es.base_evictions,
        peak_memory_bytes: (es.peak_memory_bytes as usize).max(final_memory),
        final_memory_bytes: final_memory,
    }
}

fn results_json(runs: &[Run]) -> String {
    // Hand-rolled JSON, same convention as fig7 (no serde offline).
    let rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "  {{\"backend\": \"engine\", \"cap\": \"{}\", \"cap_bytes\": {}, \
                 \"seconds\": {:.6}, \"ops\": {}, \"ops_per_sec\": {:.1}, \
                 \"hit_rate\": {:.4}, \"js_evictions\": {}, \"base_evictions\": {}, \
                 \"peak_memory_bytes\": {}, \"final_memory_bytes\": {}, \
                 \"entries_returned\": {}, \"answers_digest\": \"{:016x}\"}}",
                r.label,
                r.cap_bytes,
                r.seconds,
                r.ops,
                r.ops as f64 / r.seconds.max(1e-9),
                r.hit_rate,
                r.js_evictions,
                r.base_evictions,
                r.peak_memory_bytes,
                r.final_memory_bytes,
                r.entries_returned,
                r.answers_digest
            )
        })
        .collect();
    format!("[\n{}\n]\n", rows.join(",\n"))
}

fn main() {
    let scale = Scale::from_args();
    let exp = experiment(&scale);
    let cap_percents: Vec<u32> = arg_value("--caps")
        .unwrap_or_else(|| "75,50,25".to_string())
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("--caps wants percentages, got {s:?}"))
        })
        .collect();

    let unbounded = run_once(&exp, "unbounded", None);
    let footprint = unbounded.final_memory_bytes;
    println!(
        "unbounded footprint: {} ({} timeline entries delivered)",
        mib(footprint),
        unbounded.entries_returned
    );

    let mut runs = vec![unbounded];
    for pct in &cap_percents {
        let cap_bytes = footprint * (*pct as usize) / 100;
        let label = format!("{pct}%");
        runs.push(run_once(&exp, &label, Some(MemoryLimit::new(cap_bytes))));
    }

    let base_secs = runs[0].seconds;
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                if r.cap_bytes == 0 {
                    "-".to_string()
                } else {
                    mib(r.cap_bytes)
                },
                secs(r.seconds),
                ratio(r.seconds / base_secs),
                format!("{:.1}%", r.hit_rate * 100.0),
                r.js_evictions.to_string(),
                r.base_evictions.to_string(),
                mib(r.peak_memory_bytes),
                mib(r.final_memory_bytes),
            ]
        })
        .collect();
    print_table(
        "Eviction sweep — memory-bounded vs unbounded engine (same answers)",
        &[
            "cap",
            "cap bytes",
            "runtime (s)",
            "vs unbounded",
            "hit rate",
            "js evict",
            "base evict",
            "peak mem",
            "final mem",
        ],
        &rows,
    );

    if let Some(path) = arg_value("--json") {
        let json = results_json(&runs);
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    }

    // Recompute transparency is the whole point: a capped engine must
    // deliver the identical timelines — same entry count through the
    // run, same contents (digest) after it.
    let want = runs[0].entries_returned;
    let want_digest = runs[0].answers_digest;
    let mut ok = true;
    for r in &runs[1..] {
        if r.entries_returned != want {
            eprintln!(
                "FAIL: cap {} delivered {} timeline entries, unbounded delivered {want}",
                r.label, r.entries_returned
            );
            ok = false;
        }
        if r.answers_digest != want_digest {
            eprintln!(
                "FAIL: cap {} timeline digest {:016x} != unbounded {want_digest:016x}",
                r.label, r.answers_digest
            );
            ok = false;
        }
        if r.final_memory_bytes > r.cap_bytes {
            eprintln!(
                "note: cap {} ended above its cap ({} > {}): irreducible base data \
                 exceeds the budget at this scale",
                r.label,
                mib(r.final_memory_bytes),
                mib(r.cap_bytes)
            );
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
