//! Figure 7: time to process a Twip experiment to completion on Pequod
//! and the comparison systems.
//!
//! Paper result (EC2 cr1.8xlarge, 1.8M-user sampled graph):
//!
//! ```text
//! Pequod        197.06 s (1.00x)
//! Redis         262.62 s (1.33x)
//! Client Pequod 323.29 s (1.64x)
//! memcached     784.43 s (3.98x)
//! PostgreSQL   1882.78 s (9.55x)
//! ```
//!
//! We run the same op mix (5% logins / 9% subscriptions / 85% checks /
//! 1% posts, 70% active users) at laptop scale and report the same
//! table. Expect the ordering and rough factors to reproduce, not the
//! absolute seconds.

use pequod_baselines::{ClientPequodTwip, MemcachedTwip, PostgresTwip, RedisTwip};
use pequod_bench::{print_table, ratio, secs, twip_graph, Scale};
use pequod_core::{Engine, EngineConfig};
use pequod_store::StoreConfig;
use pequod_workloads::twip::{run_twip, PequodTwip, TwipBackend, TwipMix, TwipRunStats, TwipWorkload};

fn main() {
    let scale = Scale::from_args();
    let users = scale.count(3000) as u32;
    let graph = twip_graph(users, 0x5e7);
    let mix = TwipMix {
        active_fraction: 0.7,
        checks_per_user: 15,
        seed: 0xf16_7,
        ..TwipMix::default()
    };
    let workload = TwipWorkload::generate(&graph, &mix);
    let initial_posts = scale.count(9000);
    let h = workload.histogram();
    // Expected deliveries per post: followers weighted by post probability.
    let wsum: f64 = (0..users).map(|u| graph.post_weight(u)).sum();
    let fanout: f64 = (0..users)
        .map(|u| graph.post_weight(u) * graph.follower_count(u) as f64)
        .sum::<f64>()
        / wsum;
    println!(
        "fig7: {} users, {} edges, effective fan-out {:.0}, ops = {} logins / {} subs / {} checks / {} posts",
        users,
        graph.edges(),
        fanout,
        h[0],
        h[1],
        h[2],
        h[3]
    );

    let pequod_engine = || {
        Engine::new(EngineConfig::with_store(
            StoreConfig::flat().with_subtable("t|", 2).with_subtable("p|", 2),
        ))
    };

    let mut results: Vec<(String, TwipRunStats)> = Vec::new();
    {
        let mut b = PequodTwip::new(pequod_engine());
        let s = run_twip(&mut b, &graph, &workload, initial_posts);
        results.push((b.name().to_string(), s));
    }
    {
        let mut b = RedisTwip::new();
        let s = run_twip(&mut b, &graph, &workload, initial_posts);
        results.push((b.name().to_string(), s));
    }
    {
        let mut b = ClientPequodTwip::new(pequod_engine());
        let s = run_twip(&mut b, &graph, &workload, initial_posts);
        results.push((b.name().to_string(), s));
    }
    {
        let mut b = MemcachedTwip::new();
        let s = run_twip(&mut b, &graph, &workload, initial_posts);
        results.push((b.name().to_string(), s));
    }
    {
        let mut b = PostgresTwip::new();
        let s = run_twip(&mut b, &graph, &workload, initial_posts);
        results.push((b.name().to_string(), s));
    }

    let base = results[0].1.elapsed;
    let paper = [
        ("pequod", 1.00),
        ("redis", 1.33),
        ("client-pequod", 1.64),
        ("memcached", 3.98),
        ("postgresql", 9.55),
    ];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, s)| {
            let paper_factor = paper
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, f)| format!("{f:.2}x"))
                .unwrap_or_default();
            vec![
                name.clone(),
                secs(s.elapsed),
                ratio(s.elapsed / base),
                paper_factor,
                s.rpcs.to_string(),
                format!("{:.1}", s.rpc_bytes as f64 / (1 << 20) as f64),
            ]
        })
        .collect();
    print_table(
        "Figure 7 — Twip system comparison (smaller is better)",
        &["system", "runtime (s)", "vs pequod", "paper", "rpcs", "rpc MiB"],
        &rows,
    );
}
