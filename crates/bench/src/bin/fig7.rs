//! Figure 7: time to process a Twip experiment to completion on Pequod
//! and the comparison systems.
//!
//! Paper result (EC2 cr1.8xlarge, 1.8M-user sampled graph):
//!
//! ```text
//! Pequod        197.06 s (1.00x)
//! Redis         262.62 s (1.33x)
//! Client Pequod 323.29 s (1.64x)
//! memcached     784.43 s (3.98x)
//! PostgreSQL   1882.78 s (9.55x)
//! ```
//!
//! We run the same op mix (5% logins / 9% subscriptions / 85% checks /
//! 1% posts, 70% active users) at laptop scale and report the same
//! table. Expect the ordering and rough factors to reproduce, not the
//! absolute seconds.
//!
//! Two modes:
//!
//! * **default** — the classic comparison: each system runs its
//!   app-specific backend (sorted-set timelines on Redis, string
//!   appends on memcached, triggers on the relational engine), with
//!   system-specific costs modelled in.
//! * **`--backend {engine,sharded,writearound,cluster,redis,memcached,minidb}`**
//!   (or `--backend all`, or a comma-separated list) — the unified-API
//!   comparison: every choice is driven through the identical
//!   `pequod_core::Client` command stream (`ClientTwip`). Pequod
//!   deployments serve timelines with cache joins (`sharded` spreads
//!   them over `--shards N` engine shards); join-less stores fall back
//!   to client-side fan-out. Same driver, same commands, same meter —
//!   apples to apples. `--json PATH` additionally writes the results as
//!   a JSON array (the CI bench-smoke artifact).

use pequod_baselines::{ClientPequodTwip, MemcachedTwip, PostgresTwip, RedisTwip};
use pequod_bench::{
    arg_value, print_table, ratio, secs, twip_client, twip_graph, Scale, TWIP_BACKENDS,
};
use pequod_core::{Engine, EngineConfig};
use pequod_store::StoreConfig;
use pequod_workloads::twip::{
    run_twip, ClientTwip, PequodTwip, TwipBackend, TwipMix, TwipRunStats, TwipWorkload,
};
use pequod_workloads::SocialGraph;

struct Experiment {
    graph: SocialGraph,
    workload: TwipWorkload,
    initial_posts: u64,
}

fn experiment(scale: &Scale) -> Experiment {
    let users = scale.count(3000) as u32;
    let graph = twip_graph(users, 0x5e7);
    let mix = TwipMix {
        active_fraction: 0.7,
        checks_per_user: 15,
        seed: 0xf167,
        ..TwipMix::default()
    };
    let workload = TwipWorkload::generate(&graph, &mix);
    let initial_posts = scale.count(9000);
    let h = workload.histogram();
    // Expected deliveries per post: followers weighted by post probability.
    let wsum: f64 = (0..users).map(|u| graph.post_weight(u)).sum();
    let fanout: f64 = (0..users)
        .map(|u| graph.post_weight(u) * graph.follower_count(u) as f64)
        .sum::<f64>()
        / wsum;
    println!(
        "fig7: {} users, {} edges, effective fan-out {:.0}, ops = {} logins / {} subs / {} checks / {} posts",
        users,
        graph.edges(),
        fanout,
        h[0],
        h[1],
        h[2],
        h[3]
    );
    Experiment {
        graph,
        workload,
        initial_posts,
    }
}

fn engine_config() -> EngineConfig {
    EngineConfig::with_store(
        StoreConfig::flat()
            .with_subtable("t|", 2)
            .with_subtable("p|", 2),
    )
}

fn results_table(title: &str, results: &[(String, TwipRunStats)], paper: &[(&str, f64)]) {
    let base = results[0].1.elapsed;
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, s)| {
            let paper_factor = paper
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, f)| format!("{f:.2}x"))
                .unwrap_or_default();
            vec![
                name.clone(),
                secs(s.elapsed),
                ratio(s.elapsed / base),
                paper_factor,
                s.rpcs.to_string(),
                format!("{:.1}", s.rpc_bytes as f64 / (1 << 20) as f64),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "system",
            "runtime (s)",
            "vs first",
            "paper",
            "rpcs",
            "rpc MiB",
        ],
        &rows,
    );
}

/// The classic comparison: each system's app-specific backend.
fn run_classic(exp: &Experiment) {
    let mut results: Vec<(String, TwipRunStats)> = Vec::new();
    {
        let mut b = PequodTwip::new(Engine::new(engine_config()));
        let s = run_twip(&mut b, &exp.graph, &exp.workload, exp.initial_posts);
        results.push((b.name().to_string(), s));
    }
    {
        let mut b = RedisTwip::new();
        let s = run_twip(&mut b, &exp.graph, &exp.workload, exp.initial_posts);
        results.push((b.name().to_string(), s));
    }
    {
        let mut b = ClientPequodTwip::new(Engine::new(engine_config()));
        let s = run_twip(&mut b, &exp.graph, &exp.workload, exp.initial_posts);
        results.push((b.name().to_string(), s));
    }
    {
        let mut b = MemcachedTwip::new();
        let s = run_twip(&mut b, &exp.graph, &exp.workload, exp.initial_posts);
        results.push((b.name().to_string(), s));
    }
    {
        let mut b = PostgresTwip::new();
        let s = run_twip(&mut b, &exp.graph, &exp.workload, exp.initial_posts);
        results.push((b.name().to_string(), s));
    }
    let paper = [
        ("pequod", 1.00),
        ("redis", 1.33),
        ("client-pequod", 1.64),
        ("memcached", 3.98),
        ("postgresql", 9.55),
    ];
    results_table(
        "Figure 7 — Twip system comparison (smaller is better)",
        &results,
        &paper,
    );
}

/// One unified-API run: the named backend behind the shared driver.
fn run_unified_one(name: &str, exp: &Experiment) -> (String, TwipRunStats) {
    let (client, strategy) = twip_client(name, engine_config()).unwrap_or_else(|| {
        eprintln!("unknown backend {name:?}; choices: {TWIP_BACKENDS:?} or all");
        std::process::exit(2);
    });
    let mut b = ClientTwip::new(client, strategy);
    let s = run_twip(&mut b, &exp.graph, &exp.workload, exp.initial_posts);
    (name.to_string(), s)
}

fn run_unified(backend: &str, exp: &Experiment) {
    let names: Vec<&str> = if backend == "all" {
        TWIP_BACKENDS.to_vec()
    } else {
        backend.split(',').collect()
    };
    let results: Vec<(String, TwipRunStats)> =
        names.iter().map(|n| run_unified_one(n, exp)).collect();
    results_table(
        "Figure 7 (unified client API) — same command stream on every backend",
        &results,
        &[],
    );
    if let Some(path) = arg_value("--json") {
        let json = results_json(&results);
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    }
}

/// Hand-rolled JSON for the results (no serde in the offline build):
/// `[{"backend": ..., "seconds": ..., "ops": ..., "ops_per_sec": ...,
/// "rpcs": ..., "rpc_bytes": ...}, ...]`.
fn results_json(results: &[(String, TwipRunStats)]) -> String {
    let rows: Vec<String> = results
        .iter()
        .map(|(name, s)| {
            format!(
                "  {{\"backend\": \"{}\", \"seconds\": {:.6}, \"ops\": {}, \
                 \"ops_per_sec\": {:.1}, \"rpcs\": {}, \"rpc_bytes\": {}}}",
                name,
                s.elapsed,
                s.ops,
                s.ops as f64 / s.elapsed.max(1e-9),
                s.rpcs,
                s.rpc_bytes
            )
        })
        .collect();
    format!("[\n{}\n]\n", rows.join(",\n"))
}

fn main() {
    let scale = Scale::from_args();
    let exp = experiment(&scale);
    match arg_value("--backend") {
        Some(backend) => run_unified(&backend, &exp),
        None => run_classic(&exp),
    }
}
