//! Telemetry overhead: the Figure 7 Twip workload on one engine with
//! the recorder disabled vs fully enabled.
//!
//! The disabled [`Recorder`] is an `Option::None` behind an `Arc`
//! clone — every hot-path hook short-circuits on one branch, so a
//! server built with telemetry compiled in but not requested
//! (`pequod-server` without `--metrics-addr`) should measure at the
//! seed's throughput. The enabled recorder pays relaxed atomic
//! increments plus one `Instant` read per timed operation; the
//! acceptance bar for this PR is **< 5% fig7 throughput**.
//!
//! Modes interleave across `--reps` repetitions (off, on, off, on, …)
//! so CPU frequency drift and cache warmth bias neither side; totals
//! aggregate over all reps before the overhead is computed.
//!
//! ```text
//! metrics_overhead [--scale S] [--reps N] [--json PATH]
//! ```
//!
//! CI publishes the JSON as `BENCH_metrics_overhead.json`; rows carry
//! `{mode, seconds, ops, ops_per_sec}` and the `on` row adds
//! `overhead_pct` (negative means on measured faster — noise).

use pequod_bench::{arg_value, print_table, twip_graph, Scale};
use pequod_core::{Engine, EngineConfig};
use pequod_store::StoreConfig;
use pequod_telemetry::Recorder;
use pequod_workloads::twip::{run_twip, PequodTwip, TwipMix, TwipWorkload};

fn engine_config() -> EngineConfig {
    EngineConfig::with_store(
        StoreConfig::flat()
            .with_subtable("t|", 2)
            .with_subtable("p|", 2),
    )
}

fn main() {
    let scale = Scale::from_args();
    let reps: usize = arg_value("--reps")
        .map(|v| v.parse().expect("--reps needs a positive number"))
        .unwrap_or(3)
        .max(1);
    let users = scale.count(2000) as u32;
    let graph = twip_graph(users, 0x5e7);
    let mix = TwipMix {
        active_fraction: 0.7,
        checks_per_user: 15,
        seed: 0xf167,
        ..TwipMix::default()
    };
    let workload = TwipWorkload::generate(&graph, &mix);
    let initial_posts = scale.count(6000);
    println!(
        "metrics_overhead: {} users, {} edges, {} reps per mode",
        users,
        graph.edges(),
        reps,
    );

    // One untimed warmup so the first measured rep does not inherit
    // cold caches / allocator state that the others never see.
    {
        let mut b = PequodTwip::new(Engine::new(engine_config()));
        run_twip(&mut b, &graph, &workload, initial_posts);
    }

    // (seconds, ops) totals per mode, accumulated over interleaved reps.
    let mut totals = [(0.0f64, 0u64), (0.0f64, 0u64)];
    for rep in 0..reps {
        for (m, enabled) in [false, true].into_iter().enumerate() {
            let mut engine = Engine::new(engine_config());
            if enabled {
                engine.set_recorder(Recorder::enabled());
            }
            let mut b = PequodTwip::new(engine);
            let s = run_twip(&mut b, &graph, &workload, initial_posts);
            totals[m].0 += s.elapsed;
            totals[m].1 += s.ops;
            println!(
                "  rep {rep} {}: {:.3}s, {} ops",
                if enabled { "on " } else { "off" },
                s.elapsed,
                s.ops
            );
        }
    }

    let rate = |m: usize| totals[m].1 as f64 / totals[m].0.max(1e-9);
    let overhead_pct = (rate(0) - rate(1)) / rate(0).max(1e-9) * 100.0;
    print_table(
        "Telemetry overhead — fig7 Twip workload, recorder off vs on",
        &["mode", "seconds", "ops", "ops/s", "overhead"],
        &[
            vec![
                "off".to_string(),
                format!("{:.3}", totals[0].0),
                totals[0].1.to_string(),
                format!("{:.0}", rate(0)),
                String::new(),
            ],
            vec![
                "on".to_string(),
                format!("{:.3}", totals[1].0),
                totals[1].1.to_string(),
                format!("{:.0}", rate(1)),
                format!("{overhead_pct:.2}%"),
            ],
        ],
    );

    if let Some(path) = arg_value("--json") {
        let json = format!(
            "[\n  {{\"mode\": \"off\", \"seconds\": {:.6}, \"ops\": {}, \
             \"ops_per_sec\": {:.1}}},\n  {{\"mode\": \"on\", \"seconds\": {:.6}, \
             \"ops\": {}, \"ops_per_sec\": {:.1}, \"overhead_pct\": {:.3}}}\n]\n",
            totals[0].0,
            totals[0].1,
            rate(0),
            totals[1].0,
            totals[1].1,
            rate(1),
            overhead_pct,
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    }
}
