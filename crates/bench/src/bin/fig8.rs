//! Figure 8: materialization strategy comparison on the Twip benchmark.
//!
//! Paper: a check+post-only workload with 1M posts; the percentage of
//! active users `p` varies 1–100, yielding check:post ratios from 1:1 to
//! 100:1. "No materialization performs relatively well with few active
//! users, but as timeline scans increase, materialization quickly
//! becomes important... dynamic materialization outperforms full
//! materialization up to approximately 90% active users" (full wins by
//! ~1.08x at 100%).
//!
//! Output: one row per active-user percentage with the runtime of the
//! no/full/dynamic strategies (log-scale shape in the paper).

use pequod_bench::{arg_value, pequod_client_or_exit, print_table, secs, twip_graph, Scale};
use pequod_core::{EngineConfig, MaterializationMode};
use pequod_store::StoreConfig;
use pequod_workloads::twip::{run_twip, ClientTwip, TwipOp, TwipStrategy, TwipWorkload};
use pequod_workloads::SocialGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the Figure 8 workload: posts and checks only, `p`% active
/// users, `checks_per_active` checks each, posts interleaved uniformly.
fn fig8_workload(graph: &SocialGraph, active_pct: u32, posts: u64, seed: u64) -> TwipWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.users();
    let active_count = ((n as u64 * active_pct as u64) / 100).max(1) as u32;
    let mut users: Vec<u32> = (0..n).collect();
    for i in (1..n as usize).rev() {
        let j = rng.gen_range(0..=i);
        users.swap(i, j);
    }
    let active = &users[..active_count as usize];
    // p% active => p × posts checks total: the check:post ratio runs
    // from 1:1 at p=1 to 100:1 at p=100, as in the paper.
    let total_checks = posts * active_pct as u64;
    let weights: Vec<f64> = (0..n).map(|u| graph.post_weight(u)).collect();
    let wsum: f64 = weights.iter().sum();
    let mut ops = Vec::new();
    let mut remaining_posts = posts;
    let mut remaining_checks = total_checks;
    while remaining_posts > 0 || remaining_checks > 0 {
        let total = remaining_posts + remaining_checks;
        if rng.gen_range(0..total) < remaining_posts {
            let mut pick = rng.gen::<f64>() * wsum;
            let mut poster = 0u32;
            for (u, w) in weights.iter().enumerate() {
                pick -= w;
                if pick <= 0.0 {
                    poster = u as u32;
                    break;
                }
            }
            ops.push(TwipOp::Post(poster));
            remaining_posts -= 1;
        } else {
            ops.push(TwipOp::Check(active[rng.gen_range(0..active.len())]));
            remaining_checks -= 1;
        }
    }
    TwipWorkload {
        warm: Vec::new(), // materialization cost is the experiment
        ops,
    }
}

fn main() {
    let scale = Scale::from_args();
    // The workload is driven through the unified client API, so the
    // materialization comparison runs against any join-capable
    // deployment: `--backend {engine,sharded,writearound,cluster}`.
    let backend = arg_value("--backend").unwrap_or_else(|| "engine".to_string());
    let users = scale.count(1200) as u32;
    let posts = scale.count(1800);
    let graph = twip_graph(users, 0xf18);

    let strategies = [
        ("none", MaterializationMode::None),
        ("full", MaterializationMode::Full),
        ("dynamic", MaterializationMode::Dynamic),
    ];
    let mut rows = Vec::new();
    for pct in [1u32, 5, 10, 25, 50, 75, 90, 100] {
        let workload = fig8_workload(&graph, pct, posts, 0x88 + pct as u64);
        let mut row = vec![format!("{pct}%")];
        let mut runtimes = Vec::new();
        for (_, mode) in &strategies {
            let mut cfg = EngineConfig::with_store(StoreConfig::flat().with_subtable("t|", 2));
            cfg.materialization = *mode;
            let client = pequod_client_or_exit(&backend, cfg, &["p|", "s|"]);
            let mut driver = ClientTwip::new(client, TwipStrategy::ServerJoins);
            // No untimed initial posts: the paper's 1M posts are part of
            // the measured workload, so materialization work (eager for
            // full, on-first-read for dynamic) lands in the timed phase.
            let stats = run_twip(&mut driver, &graph, &workload, 0);
            runtimes.push(stats.elapsed);
            row.push(secs(stats.elapsed));
        }
        // Winner annotation for shape reading.
        let best = runtimes
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| strategies[i].0)
            .unwrap();
        row.push(best.to_string());
        rows.push(row);
    }
    print_table(
        &format!(
            "Figure 8 — runtime (s) by materialization strategy vs % active users [{backend}]"
        ),
        &["active", "none", "full", "dynamic", "best"],
        &rows,
    );
    println!(
        "\npaper shape: none grows steeply with active %, dynamic wins until ~90%,\n\
         full wins slightly (~1.08x) at 100% active."
    );
}
