//! `pequod-bench` — shared harness utilities for the figure binaries.
//!
//! Each binary regenerates one artifact of the paper's evaluation:
//!
//! | Binary      | Paper artifact                                    |
//! |-------------|---------------------------------------------------|
//! | `fig7`      | Figure 7 — system comparison table                |
//! | `fig8`      | Figure 8 — materialization strategies             |
//! | `fig9`      | Figure 9 — Newp interleaved vs non-interleaved    |
//! | `fig10`     | Figure 10 — scalability vs compute servers        |
//! | `ablations` | §4.1–§4.3 and §3.2 in-text optimization factors   |
//! | `eviction`  | §2.5 — memory-bounded serving: cap sweep vs an    |
//! |             | unbounded engine (throughput, hit rate, evictions)|
//!
//! # Flag conventions
//!
//! Every binary accepts `--scale S` (default 1) to grow the workload;
//! the default finishes in seconds on a laptop while preserving the
//! paper's ratios (edges/user, op mix, check:post ratios). The
//! unified-API binaries accept `--backend NAME` where `NAME` is one of
//! [`TWIP_BACKENDS`] (fig7 also takes `all` or a comma-separated list),
//! and `--backend sharded` additionally honors `--shards N`
//! ([`sharded_shards`], default 4). `fig7 --json PATH` writes the
//! results table as a JSON array — CI's bench-smoke job uses it to
//! publish a `BENCH_fig7_smoke.json` artifact per commit, so the
//! performance trajectory of the repo is recorded (`eviction --json`
//! does the same for the memory-pressure artifact,
//! `BENCH_eviction_smoke.json`).
//!
//! # What this crate provides
//!
//! The library holds the pieces every binary shares: command-line
//! parsing ([`Scale`], [`arg_value`]), backend factories
//! ([`pequod_client`], [`twip_client`]) that build any `--backend`
//! choice behind the unified `pequod_core::Client` trait, the standard
//! experiment graph ([`twip_graph`]), and Markdown-ish table printing
//! ([`print_table`]). The figure binaries themselves live in
//! `src/bin/` and `benches/micro.rs` holds criterion microbenchmarks
//! for the hot engine paths.

// No first-party unsafe: the whole system is safe Rust over the
// vendored deps. `cargo xtask audit` additionally requires a SAFETY
// comment on any future unsafe block an allow here would admit.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pequod_baselines::{MemcachedClient, MiniDbClient, RedisClient};
use pequod_core::{Client, Engine, EngineConfig, ShardedEngine};
use pequod_db::WriteAround;
use pequod_net::{
    ClusterClient, ComponentHashPartition, ServerId, ServerNode, SimCluster, SimConfig,
};
use pequod_workloads::{GraphConfig, SocialGraph, TwipStrategy};
use std::sync::Arc;

/// Harness scale parsed from the command line.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Multiplier on workload size (users, ops).
    pub factor: f64,
}

impl Scale {
    /// Parses `--scale N` (default 1.0) from `std::env::args`.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        let mut factor = 1.0;
        for i in 0..args.len() {
            if args[i] == "--scale" {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                    factor = v;
                }
            }
        }
        Scale { factor }
    }

    /// Scales a base count.
    pub fn count(&self, base: u64) -> u64 {
        ((base as f64) * self.factor).round().max(1.0) as u64
    }
}

/// Returns the value following `flag` on the command line, if present.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Every backend the unified-API Twip comparison accepts.
pub const TWIP_BACKENDS: &[&str] = &[
    "engine",
    "sharded",
    "writearound",
    "cluster",
    "redis",
    "memcached",
    "minidb",
];

/// Number of servers in `--backend cluster` deployments.
const CLUSTER_SERVERS: u32 = 2;

/// Default shard count for `--backend sharded` (override with
/// `--shards N`).
const DEFAULT_SHARDS: u32 = 4;

/// The `--shards N` flag for `--backend sharded` deployments
/// (default `DEFAULT_SHARDS`, i.e. 4).
pub fn sharded_shards() -> u32 {
    arg_value("--shards")
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SHARDS)
}

/// Builds a join-capable Pequod deployment as a unified-API backend.
///
/// * `engine` — one in-process [`Engine`].
/// * `sharded` — a multi-core [`ShardedEngine`] of `--shards N`
///   (default 4) single-threaded engine shards, the listed `tables`
///   partitioned across shards by hashing the second key component
///   (user/author), cross-shard joins kept fresh by in-process
///   subscriptions.
/// * `writearound` — an [`Engine`] in front of a database; the listed
///   `tables` live in the database.
/// * `cluster` — a simulated deployment of `CLUSTER_SERVERS` (2)
///   servers with the listed `tables` partitioned by hashing the second
///   key component, so one user's data co-locates.
///
/// Returns `None` for unknown names (the join-less baselines are built
/// by [`twip_client`]).
pub fn pequod_client(name: &str, cfg: EngineConfig, tables: &[&str]) -> Option<Box<dyn Client>> {
    match name {
        "engine" => Some(Box::new(Engine::new(cfg))),
        "sharded" => {
            let shards = sharded_shards();
            let part = Arc::new(ComponentHashPartition {
                component: 1,
                servers: shards,
            });
            Some(Box::new(ShardedEngine::new(
                shards as usize,
                cfg,
                part,
                tables,
            )))
        }
        "writearound" => Some(Box::new(WriteAround::new(Engine::new(cfg), tables))),
        "cluster" => {
            let part = Arc::new(ComponentHashPartition {
                component: 1,
                servers: CLUSTER_SERVERS,
            });
            let nodes = (0..CLUSTER_SERVERS)
                .map(|i| {
                    ServerNode::new(ServerId(i), Engine::new(cfg.clone()), part.clone(), tables)
                })
                .collect();
            let cluster = SimCluster::new(SimConfig::default(), nodes);
            Some(Box::new(ClusterClient::new(cluster, part)))
        }
        _ => None,
    }
}

/// [`pequod_client`], or print the canonical usage message and exit —
/// the shared error path of `fig8`, `fig9`, and `ablations`, so the
/// choices list cannot drift between binaries.
pub fn pequod_client_or_exit(name: &str, cfg: EngineConfig, tables: &[&str]) -> Box<dyn Client> {
    pequod_client(name, cfg, tables).unwrap_or_else(|| {
        eprintln!("unknown backend {name:?}; choices: engine, sharded, writearound, cluster");
        std::process::exit(2);
    })
}

/// Builds any `--backend` choice for the Twip experiment, paired with
/// the timeline-maintenance strategy it supports: Pequod deployments
/// get server-side joins, the baselines get client-side fan-out.
pub fn twip_client(name: &str, cfg: EngineConfig) -> Option<(Box<dyn Client>, TwipStrategy)> {
    if let Some(client) = pequod_client(name, cfg, &["p|", "s|"]) {
        return Some((client, TwipStrategy::ServerJoins));
    }
    let client: Box<dyn Client> = match name {
        "redis" => Box::new(RedisClient::new()),
        "memcached" => Box::new(MemcachedClient::new()),
        "minidb" => Box::new(MiniDbClient::new()),
        _ => return None,
    };
    Some((client, TwipStrategy::ClientFanout))
}

/// The standard Twip experiment graph at a given user count: average
/// followee count and celebrity skew follow the sampled 2009 subgraph's
/// ratios (≈40 edges/user).
pub fn twip_graph(users: u32, seed: u64) -> SocialGraph {
    SocialGraph::generate(&GraphConfig {
        users,
        avg_followees: 40.0_f64.min(users as f64 / 4.0),
        zipf_alpha: 1.2,
        seed,
    })
}

/// Prints a Markdown-ish results table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:w$} |", c, w = widths[i]));
        }
        s
    };
    println!(
        "{}",
        line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", line(&sep));
    for row in rows {
        println!("{}", line(row));
    }
}

/// Formats seconds with 2 decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio like the paper's `(1.33x)`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a byte count as MiB.
pub fn mib(x: usize) -> String {
    format!("{:.1} MiB", x as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_counts() {
        let s = Scale { factor: 2.5 };
        assert_eq!(s.count(10), 25);
        assert_eq!(s.count(0), 1);
    }

    #[test]
    fn graph_helper_respects_small_sizes() {
        let g = twip_graph(100, 1);
        assert_eq!(g.users(), 100);
        assert!(g.edges() > 100);
    }

    #[test]
    fn backend_factory_builds_every_choice() {
        for name in TWIP_BACKENDS {
            let (client, _) = twip_client(name, EngineConfig::default()).expect("known backend");
            assert_eq!(client.backend_name(), *name);
        }
        assert!(twip_client("nope", EngineConfig::default()).is_none());
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(ratio(1.5), "1.50x");
        assert_eq!(mib(1024 * 1024), "1.0 MiB");
    }
}
