//! `pequod-bench` — shared harness utilities for the figure binaries.
//!
//! Each binary regenerates one artifact of the paper's evaluation:
//!
//! | Binary      | Paper artifact                                    |
//! |-------------|---------------------------------------------------|
//! | `fig7`      | Figure 7 — system comparison table                |
//! | `fig8`      | Figure 8 — materialization strategies             |
//! | `fig9`      | Figure 9 — Newp interleaved vs non-interleaved    |
//! | `fig10`     | Figure 10 — scalability vs compute servers        |
//! | `ablations` | §4.1–§4.3 and §3.2 in-text optimization factors   |
//!
//! Run with `--scale S` (default 1) to grow the workload; the default
//! finishes in seconds on a laptop while preserving the paper's ratios
//! (edges/user, op mix, check:post ratios).

#![warn(missing_docs)]

use pequod_workloads::{GraphConfig, SocialGraph};

/// Harness scale parsed from the command line.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Multiplier on workload size (users, ops).
    pub factor: f64,
}

impl Scale {
    /// Parses `--scale N` (default 1.0) from `std::env::args`.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        let mut factor = 1.0;
        for i in 0..args.len() {
            if args[i] == "--scale" {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                    factor = v;
                }
            }
        }
        Scale { factor }
    }

    /// Scales a base count.
    pub fn count(&self, base: u64) -> u64 {
        ((base as f64) * self.factor).round().max(1.0) as u64
    }
}

/// The standard Twip experiment graph at a given user count: average
/// followee count and celebrity skew follow the sampled 2009 subgraph's
/// ratios (≈40 edges/user).
pub fn twip_graph(users: u32, seed: u64) -> SocialGraph {
    SocialGraph::generate(&GraphConfig {
        users,
        avg_followees: 40.0_f64.min(users as f64 / 4.0),
        zipf_alpha: 1.2,
        seed,
    })
}

/// Prints a Markdown-ish results table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:w$} |", c, w = widths[i]));
        }
        s
    };
    println!(
        "{}",
        line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", line(&sep));
    for row in rows {
        println!("{}", line(row));
    }
}

/// Formats seconds with 2 decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio like the paper's `(1.33x)`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a byte count as MiB.
pub fn mib(x: usize) -> String {
    format!("{:.1} MiB", x as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_counts() {
        let s = Scale { factor: 2.5 };
        assert_eq!(s.count(10), 25);
        assert_eq!(s.count(0), 1);
    }

    #[test]
    fn graph_helper_respects_small_sizes() {
        let g = twip_graph(100, 1);
        assert_eq!(g.users(), 100);
        assert!(g.edges() > 100);
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(ratio(1.5), "1.50x");
        assert_eq!(mib(1024 * 1024), "1.0 MiB");
    }
}
