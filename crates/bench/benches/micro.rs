//! Criterion micro-benchmarks for Pequod's hot paths: store operations
//! (flat vs subtable layout), pattern matching, containing-range
//! computation, join execution, incremental maintenance dispatch, and
//! the wire codec.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pequod_core::{Engine, EngineConfig};
use pequod_join::{containing_range, JoinSpec, Pattern, SlotTable};
use pequod_net::codec::{decode, encode};
use pequod_net::Message;
use pequod_store::{Key, KeyRange, Store, StoreConfig};

fn store_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    for (name, config) in [
        ("flat", StoreConfig::flat()),
        ("subtables", StoreConfig::flat().with_subtable("t|", 2)),
    ] {
        // Large table: 200k timeline keys across 2000 users.
        let mut store = Store::new(config);
        for u in 0..2000 {
            for t in 0..100u64 {
                store.put(
                    Key::from(format!("t|u{u:07}|{t:010}|p")),
                    bytes::Bytes::from_static(b"tweet"),
                    false,
                );
            }
        }
        group.bench_function(BenchmarkId::new("get", name), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i * 16807 + 7) % 200_000;
                let u = i / 100;
                let t = i % 100;
                black_box(store.get(&Key::from(format!("t|u{u:07}|{t:010}|p")))).is_some()
            })
        });
        group.bench_function(BenchmarkId::new("scan50", name), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i * 48271 + 11) % 2000;
                let range = KeyRange::prefix(format!("t|u{i:07}|"));
                let mut n = 0;
                store.scan(&range, |_, _| {
                    n += 1;
                    n < 50
                });
                black_box(n)
            })
        });
        group.bench_function(BenchmarkId::new("put", name), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                store.put(
                    Key::from(format!("t|u{:07}|{:010}|q", i % 2000, 100 + i)),
                    bytes::Bytes::from_static(b"new"),
                    false,
                );
            })
        });
    }
    group.finish();
}

fn pattern_ops(c: &mut Criterion) {
    let mut table = SlotTable::new();
    let pat = Pattern::parse("t|<user>|<time:10>|<poster>", &mut table).unwrap();
    let key = Key::from("t|u0000042|0000001234|u0000007");
    c.bench_function("pattern/match_key", |b| {
        b.iter(|| {
            let mut slots = table.empty_set();
            black_box(pat.match_key(black_box(&key), &mut slots))
        })
    });
    let spec = JoinSpec::parse(
        "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>",
    )
    .unwrap();
    let mut slots = spec.slots.empty_set();
    slots.bind(
        spec.slots.lookup("user").unwrap(),
        bytes::Bytes::from_static(b"u0000042"),
    );
    slots.bind(
        spec.slots.lookup("poster").unwrap(),
        bytes::Bytes::from_static(b"u0000007"),
    );
    let clip = KeyRange::new("t|u0000042|0000001000", "t|u0000042|0000002000");
    c.bench_function("pattern/containing_range", |b| {
        b.iter(|| {
            black_box(containing_range(
                &spec.sources[1].pattern,
                &spec.output,
                &slots,
                &clip,
            ))
        })
    });
}

fn engine_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    let build = || {
        let mut e = Engine::new(EngineConfig::default());
        e.add_join_text(
            "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>",
        )
        .unwrap();
        for u in 0..500 {
            for f in 0..20 {
                e.put(format!("s|u{u:07}|u{:07}", (u + f * 17) % 500), "1");
            }
        }
        for t in 0..2000u64 {
            e.put(format!("p|u{:07}|{t:010}", t % 500), "tweet body text");
        }
        // Warm all timelines.
        for u in 0..500 {
            e.scan(&KeyRange::prefix(format!("t|u{u:07}|")));
        }
        e
    };
    let mut engine = build();
    group.bench_function("incremental_check", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 500;
            let r = KeyRange::new(
                format!("t|u{i:07}|{:010}", 1990u64),
                Key::from(format!("t|u{i:07}|")).prefix_end().unwrap(),
            );
            black_box(engine.scan(&r).pairs.len())
        })
    });
    group.bench_function("post_with_fanout", |b| {
        let mut t = 10_000u64;
        b.iter(|| {
            t += 1;
            engine.put(format!("p|u{:07}|{t:010}", t % 500), "fresh tweet");
        })
    });
    group.bench_function("karma_vote", |b| {
        let mut e = Engine::new(EngineConfig::default());
        e.add_join_text("karma|<a> = count vote|<a>|<id>|<v>")
            .unwrap();
        e.put("vote|kat|0|v", "1");
        e.scan(&KeyRange::prefix("karma|"));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            e.put(format!("vote|kat|{i}|v"), "1");
        })
    });
    group.finish();
}

fn codec_ops(c: &mut Criterion) {
    let msg = Message::Reply {
        id: 42,
        pairs: (0..20)
            .map(|i| {
                (
                    Key::from(format!("t|u0000001|{i:010}|u0000002")),
                    bytes::Bytes::from_static(b"a tweet of reasonable length"),
                )
            })
            .collect(),
        error: None,
    };
    c.bench_function("codec/encode_reply20", |b| {
        let mut buf = bytes::BytesMut::with_capacity(4096);
        b.iter(|| {
            buf.clear();
            encode(black_box(&msg), &mut buf);
            black_box(buf.len())
        })
    });
    let mut buf = bytes::BytesMut::new();
    encode(&msg, &mut buf);
    let body = buf.freeze();
    c.bench_function("codec/decode_reply20", |b| {
        b.iter(|| black_box(decode(black_box(&body)).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = store_ops, pattern_ops, engine_ops, codec_ops
}
criterion_main!(benches);
