//! Property tests for the wire codec: every [`Message`] variant —
//! client requests, replies, the server→server subscription vocabulary,
//! and the batched frames — survives an encode/decode round trip with
//! arbitrary binary keys and values, both as bare bodies and as
//! length-prefixed frames split at arbitrary byte boundaries.

// Test-only crate: proptest strategies sit outside #[test] functions,
// so clippy's allow-unwrap-in-tests does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bytes::BytesMut;
use pequod_net::codec::{decode, decode_frame, encode, encode_frame, FrameDecoder};
use pequod_net::Message;
use pequod_store::{Key, KeyRange, UpperBound, Value};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

fn bytes_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Fully binary: delimiter bytes, NULs, and high bytes included.
    proptest::collection::vec(0u8..=255u8, 0..12)
}

fn key_strategy() -> impl Strategy<Value = Key> {
    bytes_strategy().prop_map(Key::from)
}

fn value_strategy() -> impl Strategy<Value = Value> {
    bytes_strategy().prop_map(Value::from)
}

fn range_strategy() -> impl Strategy<Value = KeyRange> {
    (key_strategy(), proptest::option::of(key_strategy())).prop_map(|(first, end)| KeyRange {
        first,
        end: match end {
            Some(k) => UpperBound::Excluded(k),
            None => UpperBound::Unbounded,
        },
    })
}

fn pairs_strategy() -> impl Strategy<Value = Vec<(Key, Value)>> {
    proptest::collection::vec((key_strategy(), value_strategy()), 0..5)
}

fn error_strategy() -> impl Strategy<Value = Option<String>> {
    proptest::option::of(proptest::string::string_regex("[a-z ]{0,16}").unwrap())
}

/// Every non-batch message variant.
fn leaf_strategy() -> BoxedStrategy<Message> {
    prop_oneof![
        (0u64..1000, key_strategy()).prop_map(|(id, key)| Message::Get { id, key }),
        (0u64..1000, key_strategy(), value_strategy()).prop_map(|(id, key, value)| Message::Put {
            id,
            key,
            value
        }),
        (0u64..1000, key_strategy()).prop_map(|(id, key)| Message::Remove { id, key }),
        (0u64..1000, range_strategy()).prop_map(|(id, range)| Message::Scan { id, range }),
        (0u64..1000, range_strategy()).prop_map(|(id, range)| Message::Count { id, range }),
        (
            0u64..1000,
            proptest::string::string_regex("[a-z|<> =]{0,20}").unwrap()
        )
            .prop_map(|(id, text)| Message::AddJoin { id, text }),
        (0u64..1000, pairs_strategy(), error_strategy())
            .prop_map(|(id, pairs, error)| Message::Reply { id, pairs, error }),
        (0u64..1000, range_strategy()).prop_map(|(id, range)| Message::Subscribe { id, range }),
        (0u64..1000, range_strategy(), pairs_strategy())
            .prop_map(|(id, range, pairs)| Message::SubscribeReply { id, range, pairs }),
        (key_strategy(), proptest::option::of(value_strategy()))
            .prop_map(|(key, value)| Message::Notify { key, value }),
        range_strategy().prop_map(|range| Message::Unsubscribe { range }),
        // The replication vocabulary (crates/cluster).
        any::<u32>().prop_map(|node| Message::Hello { node }),
        (any::<u32>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(slot, epoch, log_epoch, from_seq)| Message::ReplicaSubscribe {
                slot,
                epoch,
                log_epoch,
                from_seq
            }
        ),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            key_strategy(),
            proptest::option::of(value_strategy())
        )
            .prop_map(|(slot, epoch, seq, key, value)| Message::NotifySeq {
                slot,
                epoch,
                seq,
                key,
                value
            }),
        (any::<u32>(), any::<u64>(), any::<u64>())
            .prop_map(|(slot, epoch, seq)| Message::NotifyAck { slot, epoch, seq }),
        (any::<u32>(), any::<u64>(), any::<u64>())
            .prop_map(|(slot, epoch, seq)| Message::Heartbeat { slot, epoch, seq }),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<bool>(),
            pairs_strategy()
        )
            .prop_map(
                |(slot, epoch, upto_seq, done, pairs)| Message::SnapshotChunk {
                    slot,
                    epoch,
                    upto_seq,
                    done,
                    pairs
                }
            ),
        (
            any::<u32>(),
            any::<u64>(),
            proptest::collection::vec(any::<u32>(), 0..6),
            any::<u64>(),
            proptest::option::of(any::<u32>())
        )
            .prop_map(
                |(slot, epoch, replicas, upto_seq, dropped)| Message::EpochChange {
                    slot,
                    epoch,
                    replicas,
                    upto_seq,
                    dropped
                }
            ),
        (0u64..1000, any::<u32>(), any::<u64>(), any::<u32>()).prop_map(
            |(id, slot, epoch, node)| Message::NotPrimary {
                id,
                slot,
                epoch,
                node
            }
        ),
        (0u64..1000, any::<u32>(), any::<u32>(), any::<u32>())
            .prop_map(|(id, slot, from, to)| Message::Migrate { id, slot, from, to }),
        (0u64..1000).prop_map(|id| Message::NodeStatus { id }),
    ]
    .boxed()
}

/// Any message, including batches of messages (and, at depth ≥ 2,
/// batches containing batches).
fn message_strategy(depth: u8) -> BoxedStrategy<Message> {
    if depth == 0 {
        return leaf_strategy();
    }
    prop_oneof![
        leaf_strategy(),
        proptest::collection::vec(message_strategy(depth - 1), 0..4)
            .prop_map(|msgs| Message::Batch { msgs }),
    ]
    .boxed()
}

proptest! {
    /// Body-level round trip for arbitrary messages (batches nested up
    /// to two levels).
    #[test]
    fn any_message_roundtrips(msg in message_strategy(2)) {
        let mut buf = BytesMut::new();
        encode(&msg, &mut buf);
        prop_assert_eq!(decode(&buf), Ok(msg));
    }

    /// Frame-level round trip: several messages concatenated into one
    /// stream, fed to the frame splitter in two arbitrary chunks, come
    /// back intact and in order.
    #[test]
    fn frames_roundtrip_across_split_boundaries(
        msgs in proptest::collection::vec(message_strategy(1), 1..4),
        split_seed in 0usize..1000,
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(m));
        }
        let split = split_seed % (stream.len() + 1);
        let mut buf = BytesMut::new();
        let mut got = Vec::new();
        for chunk in [&stream[..split], &stream[split..]] {
            buf.extend_from_slice(chunk);
            while let Some(m) = decode_frame(&mut buf).unwrap() {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
        prop_assert!(buf.is_empty());
    }

    /// The incremental [`FrameDecoder`] (the reactor's and swarm's
    /// stream splitter), fed one byte at a time, yields exactly the
    /// messages of a one-shot decode — the parser cannot depend on any
    /// particular read-chunk alignment.
    #[test]
    fn frame_decoder_survives_single_byte_feeding(
        msgs in proptest::collection::vec(message_strategy(1), 1..4),
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(m));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            dec.extend(&[b]);
            while let Some(m) = dec.next_frame().unwrap() {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// The same stream cut at arbitrary random boundaries (including
    /// empty chunks and cuts inside the length prefix) decodes to the
    /// same messages in the same order, with nothing left over.
    #[test]
    fn frame_decoder_survives_random_chunk_boundaries(
        msgs in proptest::collection::vec(message_strategy(1), 1..5),
        cuts in proptest::collection::vec(0usize..10_000, 0..9),
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(m));
        }
        let mut points: Vec<usize> = cuts.iter().map(|c| c % (stream.len() + 1)).collect();
        points.push(0);
        points.push(stream.len());
        points.sort_unstable();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for w in points.windows(2) {
            dec.extend(&stream[w[0]..w[1]]);
            while let Some(m) = dec.next_frame().unwrap() {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(dec.buffered(), 0);
    }
}
