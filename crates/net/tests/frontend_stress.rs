//! Stress and robustness suite for the event-driven frontend: thousands
//! of concurrent pipelined connections, mid-frame disconnects, slow
//! readers driving backpressure, garbage and oversized frames, idle and
//! stall timeouts, and deterministic shutdown (the drain-or-refuse
//! regression for both servers).
//!
//! Everything here is deterministic: request streams derive from
//! (connection, sequence) counters, and assertions about timeouts poll
//! server counters under a deadline instead of sleeping fixed amounts.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pequod_core::{Engine, EngineConfig, ShardedEngine};
use pequod_net::codec::{encode_frame, FrameDecoder};
use pequod_net::{
    FrontendConfig, FrontendServer, Message, Swarm, SwarmConfig, TcpClient, TcpServer,
};
use pequod_store::{Key, KeyRange, Value};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn k(s: &str) -> Key {
    Key::from(s)
}

fn v(bytes: Vec<u8>) -> Value {
    Value::from(bytes)
}

fn single_server(cfg: FrontendConfig) -> FrontendServer {
    FrontendServer::spawn("127.0.0.1:0", Engine::new(EngineConfig::default()), cfg).unwrap()
}

/// Polls `cond` until it holds or `secs` elapse.
fn wait_for(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// The acceptance-criteria test: 5000 concurrent connections, each
/// pipelining put+get batches, with zero dropped or reordered replies.
#[test]
fn five_thousand_pipelined_connections() {
    let mut server = single_server(FrontendConfig::default());
    let addr = server.addr();
    const CONNS: usize = 5000;
    const FRAMES: usize = 4;
    let swarm = Swarm::new(SwarmConfig {
        conns: CONNS,
        depth: 8,
        frames_per_conn: FRAMES,
        wait_ms: 1_000,
        max_stalls: 60,
    });
    // Frame s on connection c: Batch[ Put(id 2s+1), Get(id 2s+2) ] of a
    // per-(c, s) key — the get must see the put (same frame, in order).
    let next_expected: Vec<AtomicU64> = (0..CONNS).map(|_| AtomicU64::new(1)).collect();
    let expect = Arc::new(next_expected);
    let expect_cb = expect.clone();
    let report = swarm
        .run(
            addr,
            |c, s| {
                let key = format!("p|u{c}|{s:010}");
                Message::Batch {
                    msgs: vec![
                        Message::Put {
                            id: (2 * s + 1) as u64,
                            key: k(&key),
                            value: v(vec![b'x'; 32]),
                        },
                        Message::Get {
                            id: (2 * s + 2) as u64,
                            key: k(&key),
                        },
                    ],
                }
            },
            |c, msg| {
                let Message::Reply { id, pairs, error } = msg else {
                    panic!("non-reply frame on connection {c}: {msg:?}");
                };
                assert!(error.is_none(), "conn {c} id {id}: server error {error:?}");
                let want = expect_cb[c].fetch_add(1, Ordering::Relaxed);
                assert_eq!(*id, want, "conn {c}: replies reordered");
                if id % 2 == 0 {
                    assert_eq!(pairs.len(), 1, "conn {c} id {id}: get missed its put");
                }
            },
        )
        .unwrap();
    assert_eq!(report.frames_sent, (CONNS * FRAMES) as u64);
    assert_eq!(
        report.replies,
        (CONNS * FRAMES * 2) as u64,
        "dropped replies"
    );
    assert_eq!(report.reply_errors, 0);
    let stats = server.stats();
    assert!(stats.accepted >= CONNS as u64);
    server.shutdown();
}

/// Sharded backend under the same shape: pipelined put+get batches must
/// keep read-your-writes through the per-shard submission queues.
#[test]
fn sharded_pipelined_connections() {
    let part = Arc::new(pequod_core::partition::ComponentHashPartition {
        component: 1,
        servers: 2,
    });
    let sharded = ShardedEngine::new(2, EngineConfig::default(), part, &["p|", "s|"]);
    let mut server =
        FrontendServer::spawn_sharded("127.0.0.1:0", sharded, FrontendConfig::default()).unwrap();
    const CONNS: usize = 1000;
    const FRAMES: usize = 4;
    let swarm = Swarm::new(SwarmConfig {
        conns: CONNS,
        depth: 4,
        frames_per_conn: FRAMES,
        wait_ms: 1_000,
        max_stalls: 60,
    });
    let report = swarm
        .run(
            server.addr(),
            |c, s| {
                let key = format!("p|u{c}|{s:010}");
                Message::Batch {
                    msgs: vec![
                        Message::Put {
                            id: (2 * s + 1) as u64,
                            key: k(&key),
                            value: v(vec![b's'; 16]),
                        },
                        Message::Get {
                            id: (2 * s + 2) as u64,
                            key: k(&key),
                        },
                    ],
                }
            },
            |c, msg| {
                let Message::Reply { id, pairs, error } = msg else {
                    panic!("non-reply frame on connection {c}: {msg:?}");
                };
                assert!(error.is_none(), "conn {c} id {id}: server error {error:?}");
                if id % 2 == 0 {
                    assert_eq!(pairs.len(), 1, "conn {c} id {id}: get missed its put");
                }
            },
        )
        .unwrap();
    assert_eq!(report.replies, (CONNS * FRAMES * 2) as u64);
    assert_eq!(report.reply_errors, 0);
    server.shutdown();
}

/// Sockets dropped mid-frame must not wedge the reactor or leak
/// connection slots.
#[test]
fn mid_frame_disconnects_leave_server_serving() {
    let mut server = single_server(FrontendConfig::default());
    let addr = server.addr();
    let frame = encode_frame(&Message::Put {
        id: 1,
        key: k("p|x|0000000001"),
        value: v(vec![b'y'; 1000]),
    });
    for i in 0..100 {
        let mut sock = TcpStream::connect(addr).unwrap();
        // A strict prefix of a frame, cut at a different point each
        // time (including inside the length header).
        let cut = 1 + (i * 7) % (frame.len() - 1);
        sock.write_all(&frame[..cut]).unwrap();
        drop(sock);
    }
    // The server must still answer normally...
    let mut client = TcpClient::connect(addr).unwrap();
    client.put("p|ok|0000000001", "fine").unwrap();
    assert_eq!(
        client.get("p|ok|0000000001").unwrap(),
        Some(Value::from(b"fine".to_vec()))
    );
    drop(client);
    // ...and reclaim every slot.
    assert!(
        wait_for(10, || server.stats().active == 0),
        "connection slots leaked: {} still active",
        server.stats().active
    );
    let stats = server.stats();
    assert!(stats.accepted >= 101);
    server.shutdown();
}

/// A reader that stops draining its socket must pause the connection
/// (bounded write buffer), not balloon server memory — and the replies
/// must all still arrive, in order, once it resumes.
#[test]
fn slow_reader_triggers_backpressure_and_loses_nothing() {
    let mut server = single_server(FrontendConfig {
        max_write_buffer: 2048,
        stall_timeout_ms: None, // the slow reader must NOT be killed here
        ..FrontendConfig::default()
    });
    let addr = server.addr();
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.set_nodelay(true).unwrap();
    // One 256 KiB value, then 48 pipelined gets of it: ~12 MiB of
    // replies, far past what the kernel's socket buffers can absorb
    // (sndbuf autotunes to at most 4 MiB here), so the server's own
    // bounded write queue must engage.
    sock.write_all(&encode_frame(&Message::Put {
        id: 1,
        key: k("p|big|0000000001"),
        value: v(vec![b'z'; 256 * 1024]),
    }))
    .unwrap();
    for i in 0..48u64 {
        sock.write_all(&encode_frame(&Message::Get {
            id: 2 + i,
            key: k("p|big|0000000001"),
        }))
        .unwrap();
    }
    // Don't read: the server must hit the cap and pause this socket.
    assert!(
        wait_for(10, || server.stats().backpressure_pauses > 0),
        "no backpressure pause recorded"
    );
    // Resume reading: every reply arrives, in order.
    let mut dec = FrameDecoder::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut next_id = 1u64;
    while next_id <= 49 {
        match dec.next_frame().unwrap() {
            Some(Message::Reply { id, error, .. }) => {
                assert!(error.is_none());
                assert_eq!(id, next_id, "replies reordered under backpressure");
                next_id += 1;
            }
            Some(other) => panic!("unexpected frame {other:?}"),
            None => {
                let n = sock.read(&mut chunk).unwrap();
                assert!(n > 0, "server closed a merely-slow reader");
                dec.extend(&chunk[..n]);
            }
        }
    }
    server.shutdown();
}

/// Reads one frame (blocking) then expects EOF/reset.
fn read_error_frame_then_eof(sock: &mut TcpStream) -> Message {
    let mut dec = FrameDecoder::new();
    let mut chunk = [0u8; 4096];
    let msg = loop {
        if let Some(m) = dec.next_frame().unwrap() {
            break m;
        }
        let n = sock.read(&mut chunk).unwrap();
        assert!(n > 0, "closed before the error frame");
        dec.extend(&chunk[..n]);
    };
    // After the error frame the server closes; a reset instead of a
    // clean EOF is acceptable (unread bytes may remain on our side).
    loop {
        match sock.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(_) => continue,
        }
    }
    msg
}

/// Garbage and oversized frames get one protocol-level error frame and
/// a close — never a panic, never a stuck server.
#[test]
fn garbage_frames_get_error_frame_then_close() {
    let mut server = single_server(FrontendConfig::default());
    let addr = server.addr();
    // Bad tag: well-formed length, nonsense body.
    {
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(&[3, 0, 0, 0, 0xEE, 0xFF, 0x01]).unwrap();
        let msg = read_error_frame_then_eof(&mut sock);
        let Message::Reply { id, error, .. } = msg else {
            panic!("expected an error reply, got {msg:?}");
        };
        assert_eq!(id, 0);
        assert!(
            error.as_deref().unwrap_or("").starts_with("codec:"),
            "unexpected error text {error:?}"
        );
    }
    // Oversized declared length: rejected from the header alone.
    {
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(&[0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
        let msg = read_error_frame_then_eof(&mut sock);
        let Message::Reply { error, .. } = msg else {
            panic!("expected an error reply, got {msg:?}");
        };
        assert!(error.as_deref().unwrap_or("").starts_with("codec:"));
    }
    assert!(wait_for(5, || server.stats().codec_errors >= 2));
    // The server still serves clean connections.
    let mut client = TcpClient::connect(addr).unwrap();
    client.put("p|ok|0000000001", "fine").unwrap();
    server.shutdown();
}

/// Idle connections are reaped once the idle timeout is configured.
#[test]
fn idle_timeout_closes_quiet_connections() {
    let mut server = single_server(FrontendConfig {
        tick_ms: 5,
        idle_timeout_ms: Some(25),
        stall_timeout_ms: None,
        ..FrontendConfig::default()
    });
    let mut client = TcpClient::connect(server.addr()).unwrap();
    client.put("p|idle|0000000001", "hello").unwrap();
    // Stop talking; the server must close us.
    assert!(
        wait_for(10, || server.stats().idle_closed >= 1),
        "idle connection never reaped"
    );
    assert!(wait_for(10, || server.stats().active == 0));
    server.shutdown();
}

/// A stopped reader with queued replies is a stalled client: reaped by
/// the stall timeout so it cannot hold buffer memory forever.
#[test]
fn stall_timeout_closes_stuck_readers() {
    let mut server = single_server(FrontendConfig {
        tick_ms: 5,
        max_write_buffer: 1024,
        stall_timeout_ms: Some(50),
        ..FrontendConfig::default()
    });
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    sock.write_all(&encode_frame(&Message::Put {
        id: 1,
        key: k("p|big|0000000001"),
        value: v(vec![b'q'; 256 * 1024]),
    }))
    .unwrap();
    for i in 0..48u64 {
        sock.write_all(&encode_frame(&Message::Get {
            id: 2 + i,
            key: k("p|big|0000000001"),
        }))
        .unwrap();
    }
    // Never read.
    assert!(
        wait_for(10, || server.stats().stall_closed >= 1),
        "stalled connection never reaped"
    );
    assert!(wait_for(10, || server.stats().active == 0));
    server.shutdown();
}

/// Regression for the accept-loop shutdown race: a connection that was
/// live when `shutdown()` was called must not be serviced after it
/// returns — on the blocking server (where the race lived) and on the
/// reactor alike.
#[test]
fn threads_shutdown_severs_live_connections() {
    let mut server = TcpServer::spawn("127.0.0.1:0", Engine::new(EngineConfig::default())).unwrap();
    let addr = server.addr();
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.set_nodelay(true).unwrap();
    // Prove the connection is being serviced.
    sock.write_all(&encode_frame(&Message::Put {
        id: 1,
        key: k("p|pre|0000000001"),
        value: v(b"x".to_vec()),
    }))
    .unwrap();
    let mut chunk = [0u8; 4096];
    let mut dec = FrameDecoder::new();
    loop {
        if dec.next_frame().unwrap().is_some() {
            break;
        }
        let n = sock.read(&mut chunk).unwrap();
        assert!(n > 0);
        dec.extend(&chunk[..n]);
    }
    server.shutdown();
    // Before the fix the serve thread survived shutdown() and this
    // request would be answered.
    let _ = sock.write_all(&encode_frame(&Message::Get {
        id: 2,
        key: k("p|pre|0000000001"),
    }));
    let _ = sock.flush();
    let answered = loop {
        match dec.next_frame() {
            Ok(Some(_)) => break true,
            Ok(None) => {}
            Err(_) => break false,
        }
        match sock.read(&mut chunk) {
            Ok(0) | Err(_) => break false,
            Ok(n) => dec.extend(&chunk[..n]),
        }
    };
    assert!(!answered, "connection serviced after shutdown() returned");
}

/// The reactor's shutdown has the same contract.
#[test]
fn reactor_shutdown_severs_live_connections() {
    let mut server = single_server(FrontendConfig::default());
    let addr = server.addr();
    let mut client = TcpClient::connect(addr).unwrap();
    client.put("p|pre|0000000001", "x").unwrap();
    server.shutdown();
    let mut sock = TcpStream::connect(addr);
    // New connections are refused entirely...
    assert!(
        sock.is_err() || {
            let s = sock.as_mut().unwrap();
            s.write_all(&encode_frame(&Message::Get {
                id: 9,
                key: k("p|pre|0000000001"),
            }))
            .ok();
            let mut buf = [0u8; 64];
            matches!(s.read(&mut buf), Ok(0) | Err(_))
        },
        "server answered after shutdown"
    );
}

/// Scans big enough to span many reply frames survive the pipeline
/// (bounded write queue slices them out without reordering).
#[test]
fn large_scans_flow_through_bounded_buffers() {
    let mut server = single_server(FrontendConfig {
        max_write_buffer: 4096,
        ..FrontendConfig::default()
    });
    let mut client = TcpClient::connect(server.addr()).unwrap();
    for i in 0..200 {
        client.put(format!("p|u|{i:010}"), vec![b'v'; 512]).unwrap();
    }
    let pairs = client.scan(KeyRange::prefix("p|u|")).unwrap();
    assert_eq!(pairs.len(), 200);
    assert!(pairs.iter().all(|(_, val)| val.len() == 512));
    server.shutdown();
}
