//! The event-driven network frontend: the [`Reactor`] readiness loop
//! plus a backend dispatcher, serving the client protocol on TCP and
//! (optionally) a unix-domain socket through identical code.
//!
//! Two backends, mirroring the blocking [`TcpServer`](crate::TcpServer):
//!
//! * **Single engine** — a fixed worker pool shares one
//!   `Arc<Mutex<Engine>>`. The reactor thread never touches the engine,
//!   so a heavy scan on a worker cannot stall accepts, timeouts, or
//!   other connections' I/O.
//! * **Sharded engine** — no worker pool at all: the dispatcher routes
//!   commands straight onto the engine's per-shard submission queues
//!   through one shared [`ShardSubmitter`], replacing the blocking
//!   server's handle-per-connection design. Batch frames are split into
//!   same-class runs exactly like
//!   [`ShardedHandle::execute_batch`](pequod_core::ShardedHandle) — a
//!   run's replies must all arrive before the next run is submitted, so
//!   read-your-writes ordering matches the blocking path and answers
//!   are byte-identical.
//!
//! Per connection, frames are answered strictly in arrival order; see
//! the [`reactor`](crate::reactor) module docs for the pipelining,
//! backpressure, and timeout rules.

use crate::message::Message;
use crate::reactor::{Dispatch, Injected, Reactor, ReactorConfig};
use crate::tcp::{handle_client_message, response_to_message};
use pequod_core::{
    fold_join_replies, fold_stats_replies, same_run_class, Command, Engine, Response,
    ShardSubmitter, ShardedEngine,
};
use pequod_store::Key;
use pequod_telemetry::{Snapshot, SnapshotFn};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Serving counters, updated live by the reactor; read them with
/// [`FrontendStats::snapshot`] (or via
/// [`FrontendServer::stats`]).
#[derive(Default)]
pub struct FrontendStats {
    /// Connections accepted over the server's lifetime (both surfaces).
    pub accepted: AtomicU64,
    /// Currently open connections.
    pub active: AtomicU64,
    /// Request frames decoded.
    pub frames_in: AtomicU64,
    /// Reply frames queued for writing.
    pub replies_out: AtomicU64,
    /// Bytes read off client sockets.
    pub bytes_in: AtomicU64,
    /// Bytes written to client sockets.
    pub bytes_out: AtomicU64,
    /// Times a connection's read interest was dropped because its
    /// write or pending queue hit the cap.
    pub backpressure_pauses: AtomicU64,
    /// Connections closed by the idle timeout.
    pub idle_closed: AtomicU64,
    /// Connections closed by the write-stall (slow reader) timeout.
    pub stall_closed: AtomicU64,
    /// Connections poisoned by a framing error.
    pub codec_errors: AtomicU64,
}

/// A point-in-time copy of [`FrontendStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontendStatsSnapshot {
    /// See [`FrontendStats::accepted`].
    pub accepted: u64,
    /// See [`FrontendStats::active`].
    pub active: u64,
    /// See [`FrontendStats::frames_in`].
    pub frames_in: u64,
    /// See [`FrontendStats::replies_out`].
    pub replies_out: u64,
    /// See [`FrontendStats::bytes_in`].
    pub bytes_in: u64,
    /// See [`FrontendStats::bytes_out`].
    pub bytes_out: u64,
    /// See [`FrontendStats::backpressure_pauses`].
    pub backpressure_pauses: u64,
    /// See [`FrontendStats::idle_closed`].
    pub idle_closed: u64,
    /// See [`FrontendStats::stall_closed`].
    pub stall_closed: u64,
    /// See [`FrontendStats::codec_errors`].
    pub codec_errors: u64,
}

impl FrontendStats {
    /// Reads every counter (relaxed; counters are advisory).
    pub fn snapshot(&self) -> FrontendStatsSnapshot {
        FrontendStatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            replies_out: self.replies_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            backpressure_pauses: self.backpressure_pauses.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            stall_closed: self.stall_closed.load(Ordering::Relaxed),
            codec_errors: self.codec_errors.load(Ordering::Relaxed),
        }
    }
}

/// Appends the frontend's serving counters to a telemetry snapshot so
/// one scrape covers the engine and the serving path together.
fn mirror_frontend_stats(stats: &FrontendStats, snap: &mut Snapshot) {
    let s = stats.snapshot();
    snap.counter("pequod_conns_accepted_total", &[], s.accepted);
    snap.gauge("pequod_conns_active", &[], s.active);
    snap.counter("pequod_frames_in_total", &[], s.frames_in);
    snap.counter("pequod_replies_out_total", &[], s.replies_out);
    snap.counter("pequod_bytes_in_total", &[], s.bytes_in);
    snap.counter("pequod_bytes_out_total", &[], s.bytes_out);
    snap.counter(
        "pequod_backpressure_pauses_total",
        &[],
        s.backpressure_pauses,
    );
    snap.counter("pequod_conns_idle_closed_total", &[], s.idle_closed);
    snap.counter("pequod_conns_stall_closed_total", &[], s.stall_closed);
    snap.counter("pequod_codec_errors_total", &[], s.codec_errors);
}

/// Tuning for a [`FrontendServer`]. `Default` is production-shaped;
/// tests shrink the timeouts and caps to exercise them quickly.
#[derive(Clone, Debug)]
pub struct FrontendConfig {
    /// Worker threads for the single-engine backend (`0` = auto:
    /// available parallelism clamped to `2..=8`). The sharded backend
    /// uses the engine's own shard threads instead.
    pub workers: usize,
    /// Per-connection cap on buffered reply bytes; above it the
    /// connection's reads pause (backpressure) and dispatch of its
    /// further pipelined frames waits.
    pub max_write_buffer: usize,
    /// Per-connection cap on decoded-but-undispatched frames.
    pub max_pipeline: usize,
    /// Close a connection with no traffic in either direction for this
    /// long (`None` = never; clients may legitimately idle).
    pub idle_timeout_ms: Option<u64>,
    /// Close a connection whose replies have made no write progress for
    /// this long — a slow or stopped reader holding buffer memory.
    pub stall_timeout_ms: Option<u64>,
    /// Logical-clock granularity: timeouts are rounded up to whole
    /// ticks.
    pub tick_ms: u64,
    /// Also serve on this unix-domain socket path. A stale socket file
    /// at the path is removed first; the file is removed again on
    /// shutdown.
    pub unix_path: Option<PathBuf>,
}

impl Default for FrontendConfig {
    fn default() -> FrontendConfig {
        FrontendConfig {
            workers: 0,
            max_write_buffer: 256 * 1024,
            max_pipeline: 128,
            idle_timeout_ms: None,
            stall_timeout_ms: Some(30_000),
            tick_ms: 100,
            unix_path: None,
        }
    }
}

/// The serving backend behind a [`FrontendServer`].
enum Backend {
    Single(Arc<Mutex<Engine>>),
    Sharded(Arc<ShardedEngine>),
}

/// One frame for the single-engine worker pool.
struct WorkItem {
    token: u64,
    msg: Message,
}

/// Pushes one injection and wakes the reactor.
fn inject(q: &Mutex<VecDeque<Injected>>, wake: &UnixStream, inj: Injected) {
    match q.lock() {
        Ok(mut g) => g.push_back(inj),
        Err(p) => p.into_inner().push_back(inj),
    }
    wake_reactor(wake);
}

/// One byte on the wakeup pipe; the payload is meaningless.
fn wake_reactor(wake: &UnixStream) {
    let _ = (&*wake).write(&[1u8]);
}

/// Single-engine dispatch: frames go to the worker pool, completions
/// come back through the injection queue.
struct SingleDispatch {
    work_tx: Sender<WorkItem>,
    /// Answers [`Message::Metrics`] on the reactor thread — the
    /// provider reads only atomics, never the engine lock.
    provider: SnapshotFn,
}

impl Dispatch for SingleDispatch {
    fn begin(&mut self, token: u64, msg: Message) -> Option<Vec<Message>> {
        if let Message::Metrics { id, flight } = msg {
            return Some(vec![Message::metrics_reply(id, &(self.provider)(flight))]);
        }
        match self.work_tx.send(WorkItem { token, msg }) {
            Ok(()) => None,
            // Workers are gone (shutdown in progress): nothing will
            // answer; clear the in-flight mark so teardown can drain.
            Err(_) => Some(Vec::new()),
        }
    }

    fn on_shard_reply(&mut self, _id: u64, _resp: Response) -> Option<(u64, Vec<Message>)> {
        None
    }

    fn forget(&mut self, _token: u64) {}
}

fn single_worker_loop(
    rx: Arc<Mutex<Receiver<WorkItem>>>,
    engine: Arc<Mutex<Engine>>,
    injected: Arc<Mutex<VecDeque<Injected>>>,
    wake: UnixStream,
) {
    loop {
        let item = match rx.lock() {
            Ok(g) => g.recv(),
            Err(p) => p.into_inner().recv(),
        };
        let Ok(WorkItem { token, msg }) = item else {
            break; // channel closed: the reactor is gone
        };
        let replies = handle_client_message(&engine, msg);
        inject(&injected, &wake, Injected::Done(token, replies));
    }
}

/// How a sharded slot folds its replies.
enum SlotKind {
    /// One shard answers.
    Single,
    /// Broadcast join install: every shard answers.
    Join,
    /// Broadcast stats: every shard answers, counters are summed.
    Stats,
}

/// One sub-request of a frame on the sharded backend.
struct SlotState {
    wire_id: u64,
    /// The key a `Get` reply echoes.
    key: Option<Key>,
    /// The command, until its run is submitted.
    cmd: Option<Command>,
    kind: SlotKind,
    /// Replies still expected for the current submission.
    expect: usize,
    acc: Vec<Response>,
    reply: Option<Message>,
}

/// One in-progress frame on the sharded backend: slots in wire order,
/// remaining same-class runs, and the count of unresolved submissions
/// in the current run.
struct Job {
    token: u64,
    slots: Vec<SlotState>,
    runs: VecDeque<Vec<usize>>,
    outstanding: usize,
    /// Submission ids of the current run, for cleanup on disconnect.
    live_ids: Vec<u64>,
}

/// Submits `run`'s commands onto the per-shard queues. Returns how many
/// submissions were made.
fn submit_run(
    submitter: &ShardSubmitter,
    reply_tx: &Sender<(u64, Response)>,
    id_map: &mut HashMap<u64, (u64, usize)>,
    next_id: &mut u64,
    job: &mut Job,
    run: Vec<usize>,
) -> usize {
    let shards = submitter.shards();
    let mut per_shard: Vec<Vec<(u64, Command)>> = vec![Vec::new(); shards];
    let mut submitted = 0usize;
    job.live_ids.clear();
    for si in run {
        let slot = &mut job.slots[si];
        let Some(cmd) = slot.cmd.take() else {
            continue;
        };
        let sid = *next_id;
        *next_id += 1;
        id_map.insert(sid, (job.token, si));
        job.live_ids.push(sid);
        match submitter.route(&cmd) {
            Some(shard) => {
                slot.expect = 1;
                per_shard[shard].push((sid, cmd));
            }
            None => {
                slot.expect = shards;
                submitter.broadcast(sid, cmd, reply_tx);
            }
        }
        submitted += 1;
    }
    for (shard, items) in per_shard.into_iter().enumerate() {
        submitter.submit(shard, items, reply_tx);
    }
    job.outstanding += submitted;
    submitted
}

/// Sharded dispatch: the run-at-a-time state machine over the engine's
/// per-shard submission queues. All calls happen on the reactor thread;
/// shard replies are fed back in via [`Injected::Shard`].
struct ShardedDispatch {
    submitter: ShardSubmitter,
    reply_tx: Sender<(u64, Response)>,
    /// Answers [`Message::Metrics`] without touching the shard queues.
    provider: SnapshotFn,
    /// Connection token → its one in-progress frame (the reactor
    /// dispatches at most one frame per connection at a time).
    jobs: HashMap<u64, Job>,
    /// Submission id → (token, slot index).
    id_map: HashMap<u64, (u64, usize)>,
    next_id: u64,
}

impl ShardedDispatch {
    fn new(
        submitter: ShardSubmitter,
        reply_tx: Sender<(u64, Response)>,
        provider: SnapshotFn,
    ) -> ShardedDispatch {
        ShardedDispatch {
            submitter,
            reply_tx,
            provider,
            jobs: HashMap::new(),
            id_map: HashMap::new(),
            next_id: 1,
        }
    }

    /// Collects a finished job's replies in wire order.
    fn finish(job: Job) -> Vec<Message> {
        job.slots
            .into_iter()
            .map(|s| {
                s.reply
                    .unwrap_or_else(|| Message::error(s.wire_id, "no reply from shard"))
            })
            .collect()
    }
}

impl Dispatch for ShardedDispatch {
    fn begin(&mut self, token: u64, msg: Message) -> Option<Vec<Message>> {
        // Top-level telemetry requests are answered inline, exactly
        // like the single-engine path (inside a Batch they fall through
        // to "unsupported", matching every other serving surface).
        if let Message::Metrics { id, flight } = msg {
            return Some(vec![Message::metrics_reply(id, &(self.provider)(flight))]);
        }
        let msgs = match msg {
            Message::Batch { msgs } => msgs,
            other => vec![other],
        };
        let mut job = Job {
            token,
            slots: Vec::with_capacity(msgs.len()),
            runs: VecDeque::new(),
            outstanding: 0,
            live_ids: Vec::new(),
        };
        // Build slots in wire order, splitting commands into
        // same-class runs (identical to the blocking handle).
        let mut current: Vec<usize> = Vec::new();
        let mut last_cmd: Option<Command> = None;
        for m in msgs {
            let (wire_id, key, cmd) = match m {
                Message::Get { id, key } => (id, Some(key.clone()), Command::Get(key)),
                Message::Scan { id, range } => (id, None, Command::Scan(range)),
                Message::Count { id, range } => (id, None, Command::Count(range)),
                Message::Put { id, key, value } => (id, None, Command::Put(key, value)),
                Message::Remove { id, key } => (id, None, Command::Remove(key)),
                Message::AddJoin { id, text } => (id, None, Command::AddJoin(text)),
                // Server-to-server traffic is not accepted on the
                // client port (same answer as the blocking server).
                other => {
                    job.slots.push(SlotState {
                        wire_id: 0,
                        key: None,
                        cmd: None,
                        kind: SlotKind::Single,
                        expect: 0,
                        acc: Vec::new(),
                        reply: Some(Message::error(
                            other.id().unwrap_or(0),
                            "unsupported on client connection",
                        )),
                    });
                    continue;
                }
            };
            if let Some(prev) = &last_cmd {
                if !same_run_class(prev, &cmd) && !current.is_empty() {
                    job.runs.push_back(std::mem::take(&mut current));
                }
            }
            let kind = match &cmd {
                Command::AddJoin(_) => SlotKind::Join,
                Command::Stats => SlotKind::Stats,
                _ => SlotKind::Single,
            };
            last_cmd = Some(cmd.clone());
            current.push(job.slots.len());
            job.slots.push(SlotState {
                wire_id,
                key,
                cmd: Some(cmd),
                kind,
                expect: 0,
                acc: Vec::new(),
                reply: None,
            });
        }
        if !current.is_empty() {
            job.runs.push_back(current);
        }
        // Submit runs until one actually lands on a shard (a run can be
        // empty of submittable commands only if all were pre-resolved).
        while job.outstanding == 0 {
            let Some(run) = job.runs.pop_front() else {
                break;
            };
            submit_run(
                &self.submitter,
                &self.reply_tx,
                &mut self.id_map,
                &mut self.next_id,
                &mut job,
                run,
            );
        }
        if job.outstanding == 0 {
            return Some(Self::finish(job));
        }
        self.jobs.insert(token, job);
        None
    }

    fn on_shard_reply(&mut self, id: u64, resp: Response) -> Option<(u64, Vec<Message>)> {
        let Some(&(token, si)) = self.id_map.get(&id) else {
            return None; // reply for a disconnected client
        };
        let Some(job) = self.jobs.get_mut(&token) else {
            self.id_map.remove(&id);
            return None;
        };
        {
            let slot = &mut job.slots[si];
            slot.acc.push(resp);
            if slot.acc.len() < slot.expect {
                return None;
            }
            // Slot resolved: fold and format exactly like the blocking
            // server so answers are byte-identical.
            let shards = slot.expect;
            let acc = std::mem::take(&mut slot.acc);
            let folded = match slot.kind {
                SlotKind::Single => acc
                    .into_iter()
                    .next_back()
                    .unwrap_or_else(|| Response::Error("no reply from shard".into())),
                SlotKind::Join => fold_join_replies(acc, shards),
                SlotKind::Stats => fold_stats_replies(acc, shards),
            };
            slot.reply = Some(response_to_message(slot.wire_id, slot.key.take(), folded));
        }
        self.id_map.remove(&id);
        job.outstanding -= 1;
        if job.outstanding > 0 {
            return None;
        }
        // Current run complete: submit the next one, if any.
        while job.outstanding == 0 {
            let Some(run) = job.runs.pop_front() else {
                break;
            };
            submit_run(
                &self.submitter,
                &self.reply_tx,
                &mut self.id_map,
                &mut self.next_id,
                job,
                run,
            );
        }
        if job.outstanding > 0 {
            return None;
        }
        let job = self.jobs.remove(&token)?;
        Some((token, Self::finish(job)))
    }

    fn forget(&mut self, token: u64) {
        if let Some(job) = self.jobs.remove(&token) {
            for sid in job.live_ids {
                self.id_map.remove(&sid);
            }
        }
    }
}

/// Forwards shard replies from the submission channel into the
/// reactor's injection queue, batching opportunistically so one wakeup
/// byte covers a burst.
fn collector_loop(
    rx: Receiver<(u64, Response)>,
    injected: Arc<Mutex<VecDeque<Injected>>>,
    wake: UnixStream,
) {
    // recv() errs once every sender is dropped: shutdown.
    while let Ok((id, resp)) = rx.recv() {
        match injected.lock() {
            Ok(mut g) => {
                g.push_back(Injected::Shard(id, resp));
                while let Ok((id, resp)) = rx.try_recv() {
                    g.push_back(Injected::Shard(id, resp));
                }
            }
            Err(p) => p.into_inner().push_back(Injected::Shard(id, resp)),
        }
        wake_reactor(&wake);
    }
}

/// Injects a tick every `tick_ms` until stopped: the reactor's only
/// clock (no wall-clock reads on the serving path).
fn ticker_loop(
    stopped: Arc<AtomicBool>,
    tick_ms: u64,
    injected: Arc<Mutex<VecDeque<Injected>>>,
    wake: UnixStream,
) {
    while !stopped.load(Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(tick_ms.max(1)));
        inject(&injected, &wake, Injected::Tick);
    }
}

/// A running event-driven server: the reactor thread, its backend
/// threads, and a deterministic [`shutdown`](FrontendServer::shutdown).
///
/// ```no_run
/// use pequod_core::{Engine, EngineConfig};
/// use pequod_net::{FrontendConfig, FrontendServer};
/// let engine = Engine::new(EngineConfig::default());
/// let mut server =
///     FrontendServer::spawn("127.0.0.1:0", engine, FrontendConfig::default()).unwrap();
/// println!("serving on {}", server.addr());
/// server.shutdown();
/// ```
pub struct FrontendServer {
    addr: SocketAddr,
    unix_path: Option<PathBuf>,
    backend: Backend,
    provider: SnapshotFn,
    injected: Arc<Mutex<VecDeque<Injected>>>,
    wake_tx: UnixStream,
    stopped: Arc<AtomicBool>,
    stats: Arc<FrontendStats>,
    reactor_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    collector: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
}

impl FrontendServer {
    /// Serves one single-threaded [`Engine`] (behind a mutex shared by
    /// the worker pool) on `addr`; port 0 binds an ephemeral port.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        engine: Engine,
        cfg: FrontendConfig,
    ) -> std::io::Result<FrontendServer> {
        Self::spawn_backend(addr, Backend::Single(Arc::new(Mutex::new(engine))), cfg)
    }

    /// Serves a [`ShardedEngine`] on `addr` through its per-shard
    /// submission queues (no per-connection handles, no worker pool).
    pub fn spawn_sharded(
        addr: impl ToSocketAddrs,
        sharded: ShardedEngine,
        cfg: FrontendConfig,
    ) -> std::io::Result<FrontendServer> {
        Self::spawn_backend(addr, Backend::Sharded(Arc::new(sharded)), cfg)
    }

    fn spawn_backend(
        addr: impl ToSocketAddrs,
        backend: Backend,
        cfg: FrontendConfig,
    ) -> std::io::Result<FrontendServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let unix = match &cfg.unix_path {
            Some(p) => {
                let _ = std::fs::remove_file(p);
                Some(UnixListener::bind(p)?)
            }
            None => None,
        };
        let injected: Arc<Mutex<VecDeque<Injected>>> = Arc::new(Mutex::new(VecDeque::new()));
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        let stats = Arc::new(FrontendStats::default());
        // The reactor records through the backend's own recorder (the
        // engine's, or shard 0's), so one scrape covers engine state
        // and the serving path together. A backend with telemetry
        // disabled leaves every hook a no-op.
        let recorder = match &backend {
            Backend::Single(engine) => match engine.lock() {
                Ok(e) => e.recorder().clone(),
                Err(p) => p.into_inner().recorder().clone(),
            },
            Backend::Sharded(s) => s.recorders().first().cloned().unwrap_or_default(),
        };
        let provider: SnapshotFn = {
            let stats = stats.clone();
            match &backend {
                Backend::Single(_) => {
                    let recorder = recorder.clone();
                    Arc::new(move |flight| {
                        let mut snap = recorder.snapshot(flight);
                        mirror_frontend_stats(&stats, &mut snap);
                        snap
                    })
                }
                Backend::Sharded(s) => {
                    let sharded = s.clone();
                    Arc::new(move |flight| {
                        let mut snap = sharded.telemetry_snapshot(flight);
                        mirror_frontend_stats(&stats, &mut snap);
                        snap
                    })
                }
            }
        };
        let mut workers = Vec::new();
        let mut collector = None;
        let dispatch: Box<dyn Dispatch> = match &backend {
            Backend::Single(engine) => {
                let (tx, rx) = channel::<WorkItem>();
                let rx = Arc::new(Mutex::new(rx));
                let n = if cfg.workers == 0 {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(2)
                        .clamp(2, 8)
                } else {
                    cfg.workers
                };
                for _ in 0..n {
                    let rx = rx.clone();
                    let engine = engine.clone();
                    let injected = injected.clone();
                    let wake = wake_tx.try_clone()?;
                    workers.push(std::thread::spawn(move || {
                        single_worker_loop(rx, engine, injected, wake);
                    }));
                }
                Box::new(SingleDispatch {
                    work_tx: tx,
                    provider: provider.clone(),
                })
            }
            Backend::Sharded(sharded) => {
                let (tx, rx) = channel::<(u64, Response)>();
                let injected_c = injected.clone();
                let wake = wake_tx.try_clone()?;
                collector = Some(std::thread::spawn(move || {
                    collector_loop(rx, injected_c, wake);
                }));
                Box::new(ShardedDispatch::new(
                    sharded.submitter(),
                    tx,
                    provider.clone(),
                ))
            }
        };
        let tick_ms = cfg.tick_ms.max(1);
        let to_ticks = |ms: Option<u64>| ms.map(|m| m.div_ceil(tick_ms).max(1));
        let rcfg = ReactorConfig {
            max_write_buffer: cfg.max_write_buffer.max(1),
            max_pipeline: cfg.max_pipeline.max(1),
            idle_timeout_ticks: to_ticks(cfg.idle_timeout_ms),
            stall_timeout_ticks: to_ticks(cfg.stall_timeout_ms),
            recorder,
        };
        let reactor = Reactor::new(
            listener,
            unix,
            injected.clone(),
            wake_rx,
            dispatch,
            rcfg,
            stats.clone(),
        )?;
        let reactor_thread = Some(std::thread::spawn(move || reactor.run()));
        let stopped = Arc::new(AtomicBool::new(false));
        let ticker = {
            let stopped = stopped.clone();
            let injected = injected.clone();
            let wake = wake_tx.try_clone()?;
            Some(std::thread::spawn(move || {
                ticker_loop(stopped, tick_ms, injected, wake);
            }))
        };
        Ok(FrontendServer {
            addr,
            unix_path: cfg.unix_path,
            backend,
            provider,
            injected,
            wake_tx,
            stopped,
            stats,
            reactor_thread,
            workers,
            collector,
            ticker,
        })
    }

    /// The bound TCP address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The unix-domain socket path, when one is being served.
    pub fn unix_path(&self) -> Option<&std::path::Path> {
        self.unix_path.as_deref()
    }

    /// Live serving counters.
    pub fn stats(&self) -> FrontendStatsSnapshot {
        self.stats.snapshot()
    }

    /// The server's telemetry provider: backend metrics (engine or
    /// merged shards) plus the frontend's serving counters, the same
    /// snapshot [`Message::Metrics`] answers with. `pequod-server`
    /// hands this to the Prometheus scrape listener.
    pub fn telemetry(&self) -> SnapshotFn {
        self.provider.clone()
    }

    /// Shared access to the single-engine backend; `None` when serving
    /// a [`ShardedEngine`].
    pub fn engine(&self) -> Option<Arc<Mutex<Engine>>> {
        match &self.backend {
            Backend::Single(e) => Some(e.clone()),
            Backend::Sharded(_) => None,
        }
    }

    /// The sharded backend, when serving one.
    pub fn sharded(&self) -> Option<Arc<ShardedEngine>> {
        match &self.backend {
            Backend::Single(_) => None,
            Backend::Sharded(s) => Some(s.clone()),
        }
    }

    /// Deterministic stop: once this returns, no connection will be
    /// served another byte — accepted-but-unserved connections are
    /// refused (closed), in-flight frames are abandoned, and every
    /// frontend thread has exited.
    pub fn shutdown(&mut self) {
        let Some(reactor) = self.reactor_thread.take() else {
            return; // already stopped
        };
        self.stopped.store(true, Ordering::Relaxed);
        inject(&self.injected, &self.wake_tx, Injected::Stop);
        let _ = reactor.join();
        // The reactor dropped its dispatcher: the worker channel and
        // the shard reply channel are now closing, so these joins
        // terminate.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(c) = self.collector.take() {
            let _ = c.join();
        }
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
        if let Some(p) = &self.unix_path {
            let _ = std::fs::remove_file(p);
        }
    }

    /// Graceful shutdown plus a final durability snapshot + fsync on
    /// the backend (a no-op without attached persistence) — the
    /// SIGTERM path of `pequod-server`.
    pub fn shutdown_finalize(&mut self) {
        self.shutdown();
        match &self.backend {
            Backend::Single(engine) => {
                if let Ok(mut e) = engine.lock() {
                    e.finalize_durability();
                }
            }
            Backend::Sharded(s) => s.finalize_durability(),
        }
    }
}

impl Drop for FrontendServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}
