//! A blocking TCP transport for a single Pequod node.
//!
//! Thread-per-connection over `std::net` with the length-prefixed frame
//! codec (the framing discipline of the Tokio guide, without the async
//! runtime). Two backends:
//!
//! * [`TcpServer::spawn`] — one single-threaded [`Engine`] behind one
//!   mutex, matching the paper's one-process-per-core deployment where
//!   each process owns a partition of the store.
//! * [`TcpServer::spawn_sharded`] — a
//!   [`pequod_core::ShardedEngine`]: every connection
//!   gets its own [`pequod_core::ShardedHandle`], so independent
//!   connections execute on all shards concurrently and one node's
//!   throughput scales with cores.

use crate::codec::{decode_frame, encode_frame, CodecError};
use crate::message::Message;
use bytes::BytesMut;
use pequod_core::{Client, Command, Engine, Response, ShardedEngine, ShardedHandle};
use pequod_store::{Key, KeyRange, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::thread::JoinHandle;

/// The serving backend behind a [`TcpServer`].
enum TcpBackend {
    /// One single-threaded engine behind a mutex; connections take the
    /// lock per message.
    Single(Arc<Mutex<Engine>>),
    /// A sharded multi-core engine; each connection clones a handle.
    Sharded(Arc<ShardedEngine>),
}

impl Clone for TcpBackend {
    fn clone(&self) -> TcpBackend {
        match self {
            TcpBackend::Single(e) => TcpBackend::Single(e.clone()),
            TcpBackend::Sharded(s) => TcpBackend::Sharded(s.clone()),
        }
    }
}

/// Live connections: a duplicated stream (to sever on shutdown) plus
/// the serve thread's handle (to join). Registered by the accept loop,
/// drained by [`TcpServer::shutdown`].
type ConnRegistry = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// A running TCP server.
pub struct TcpServer {
    addr: SocketAddr,
    backend: TcpBackend,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: ConnRegistry,
}

impl TcpServer {
    /// Starts serving `engine` on `addr` (use port 0 for an ephemeral
    /// port). The engine must serve local data only; queries that report
    /// missing base data return an error to the client.
    pub fn spawn(addr: impl ToSocketAddrs, engine: Engine) -> std::io::Result<TcpServer> {
        Self::spawn_backend(addr, TcpBackend::Single(Arc::new(Mutex::new(engine))))
    }

    /// Starts serving a [`ShardedEngine`] on `addr`. Each accepted
    /// connection gets its own [`ShardedHandle`], so concurrent clients
    /// run on all shards in parallel instead of serializing on one
    /// engine mutex.
    pub fn spawn_sharded(
        addr: impl ToSocketAddrs,
        sharded: ShardedEngine,
    ) -> std::io::Result<TcpServer> {
        Self::spawn_backend(addr, TcpBackend::Sharded(Arc::new(sharded)))
    }

    fn spawn_backend(addr: impl ToSocketAddrs, backend: TcpBackend) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: ConnRegistry = Arc::new(Mutex::new(Vec::new()));
        let accept_backend = backend.clone();
        let accept_stop = stop.clone();
        let accept_conns = conns.clone();
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                // Register before serving: a connection we could not
                // sever on shutdown must not be served at all, else
                // `shutdown()` could return with it still live.
                let Ok(peer) = stream.try_clone() else {
                    continue;
                };
                let handle = match &accept_backend {
                    TcpBackend::Single(engine) => {
                        let engine = engine.clone();
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, engine);
                        })
                    }
                    TcpBackend::Sharded(sharded) => {
                        let handle = sharded.client_handle();
                        let sharded = sharded.clone();
                        std::thread::spawn(move || {
                            let _ = serve_sharded_connection(stream, handle, sharded);
                        })
                    }
                };
                let mut reg = match accept_conns.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                reg.retain(|(_, h)| !h.is_finished());
                reg.push((peer, handle));
            }
        });
        Ok(TcpServer {
            addr,
            backend,
            stop,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared access to the single-engine backend (e.g. to inspect
    /// stats); `None` when the server fronts a [`ShardedEngine`].
    pub fn engine(&self) -> Option<Arc<Mutex<Engine>>> {
        match &self.backend {
            TcpBackend::Single(e) => Some(e.clone()),
            TcpBackend::Sharded(_) => None,
        }
    }

    /// The sharded backend, when serving one (per-shard stats).
    pub fn sharded(&self) -> Option<Arc<ShardedEngine>> {
        match &self.backend {
            TcpBackend::Single(_) => None,
            TcpBackend::Sharded(s) => Some(s.clone()),
        }
    }

    /// Stops the server deterministically: no connection — including
    /// one accepted concurrently with this call — is serviced after it
    /// returns. The accept loop is joined first (a racing connection is
    /// either registered or refused), then every live connection is
    /// severed and its serve thread joined.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Poke the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The accept loop has exited, so the registry is complete.
        let held: Vec<(TcpStream, JoinHandle<()>)> = {
            let mut reg = match self.conns.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            reg.drain(..).collect()
        };
        for (stream, handle) in held {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = handle.join();
        }
    }

    /// Graceful shutdown: stop accepting, then take a final durability
    /// snapshot and fsync on the backend (a no-op without attached
    /// persistence). The SIGTERM path of `pequod-server`.
    pub fn shutdown_finalize(&mut self) {
        self.shutdown();
        match &self.backend {
            TcpBackend::Single(engine) => {
                if let Ok(mut e) = engine.lock() {
                    e.finalize_durability();
                }
            }
            TcpBackend::Sharded(s) => s.finalize_durability(),
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The shared framing loop: read bytes, decode complete frames, hand
/// each message to `handle_message`, write its replies back. Both
/// backends serve connections through this one loop, so framing fixes
/// cannot diverge between them.
fn serve_frames(
    mut stream: TcpStream,
    mut handle_message: impl FnMut(Message) -> Vec<Message>,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut buf = BytesMut::with_capacity(8 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Drain complete frames.
        loop {
            match decode_frame(&mut buf) {
                Ok(Some(msg)) => {
                    for reply in handle_message(msg) {
                        stream.write_all(&encode_frame(&reply))?;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                }
            }
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(()); // peer closed
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn serve_connection(stream: TcpStream, engine: Arc<Mutex<Engine>>) -> std::io::Result<()> {
    serve_frames(stream, move |msg| match msg {
        // Telemetry is answered here, outside the generic handler, so
        // the snapshot happens under one short lock acquisition.
        Message::Metrics { id, flight } => {
            let snapshot = engine
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .recorder()
                .snapshot(flight);
            vec![Message::metrics_reply(id, &snapshot)]
        }
        other => handle_client_message(&engine, other),
    })
}

fn serve_sharded_connection(
    stream: TcpStream,
    mut handle: ShardedHandle,
    sharded: Arc<ShardedEngine>,
) -> std::io::Result<()> {
    serve_frames(stream, move |msg| match msg {
        Message::Metrics { id, flight } => {
            let snapshot = sharded.telemetry_snapshot(flight);
            vec![Message::metrics_reply(id, &snapshot)]
        }
        other => handle_sharded_message(&mut handle, other),
    })
}

/// Translates one wire message into unified-client commands and back.
/// A `Batch` frame becomes one pipelined `execute_batch` call, so the
/// sharded engine fans the whole frame out across shards at once.
fn handle_sharded_message(handle: &mut ShardedHandle, msg: Message) -> Vec<Message> {
    let msgs = match msg {
        Message::Batch { msgs } => msgs,
        other => vec![other],
    };
    let mut ids: Vec<u64> = Vec::with_capacity(msgs.len());
    let mut keys: Vec<Option<Key>> = Vec::with_capacity(msgs.len());
    let mut commands: Vec<Command> = Vec::with_capacity(msgs.len());
    let mut replies: Vec<Message> = Vec::new();
    for m in msgs {
        let (id, key, command) = match m {
            Message::Get { id, key } => (id, Some(key.clone()), Command::Get(key)),
            Message::Scan { id, range } => (id, None, Command::Scan(range)),
            Message::Count { id, range } => (id, None, Command::Count(range)),
            Message::Put { id, key, value } => (id, None, Command::Put(key, value)),
            Message::Remove { id, key } => (id, None, Command::Remove(key)),
            Message::AddJoin { id, text } => (id, None, Command::AddJoin(text)),
            // Server-to-server traffic is not accepted on the client
            // port; inter-shard traffic stays on in-process channels.
            other => {
                replies.push(Message::error(
                    other.id().unwrap_or(0),
                    "unsupported on client connection",
                ));
                continue;
            }
        };
        ids.push(id);
        keys.push(key);
        commands.push(command);
    }
    for ((id, key), response) in ids
        .into_iter()
        .zip(keys)
        .zip(handle.execute_batch(commands))
    {
        replies.push(response_to_message(id, key, response));
    }
    replies
}

/// Formats one unified-client [`Response`] as the wire reply for
/// request `id`; `key` is the key a `Get` reply echoes. Shared with the
/// event-driven frontend so both servers answer byte-identically.
pub(crate) fn response_to_message(id: u64, key: Option<Key>, response: Response) -> Message {
    match response {
        Response::Value(v) => Message::reply(
            id,
            v.and_then(|v| key.map(|k| (k, v))).into_iter().collect(),
        ),
        Response::Pairs(pairs) => Message::reply(id, pairs),
        Response::Count(n) => Message::count_reply(id, n),
        Response::Ok => Message::reply(id, vec![]),
        Response::Stats(_) => Message::reply(id, vec![]),
        Response::Error(e) => Message::error(id, e),
    }
}

/// Serves one wire message against a mutex-shared single engine; shared
/// with the event-driven frontend's worker pool.
pub(crate) fn handle_client_message(engine: &Mutex<Engine>, msg: Message) -> Vec<Message> {
    let reply = match msg {
        Message::Batch { msgs } => {
            // One frame in, one reply per pipelined request out.
            return msgs
                .into_iter()
                .flat_map(|m| handle_client_message(engine, m))
                .collect();
        }
        Message::Count { id, range } => {
            let res = engine
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .count_result(&range);
            if res.is_complete() {
                Message::count_reply(id, res.count as u64)
            } else {
                Message::error(id, "missing base data (no backing store attached)")
            }
        }
        Message::Get { id, key } => {
            let res = engine
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get_result(&key);
            if res.is_complete() {
                Message::reply(id, res.pairs)
            } else {
                Message::error(id, "missing base data (no backing store attached)")
            }
        }
        Message::Scan { id, range } => {
            let res = engine
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .scan(&range);
            if res.is_complete() {
                Message::reply(id, res.pairs)
            } else {
                Message::error(id, "missing base data (no backing store attached)")
            }
        }
        Message::Put { id, key, value } => {
            engine
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .put(key, value);
            Message::reply(id, vec![])
        }
        Message::Remove { id, key } => {
            engine
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&key);
            Message::reply(id, vec![])
        }
        Message::AddJoin { id, text } => {
            let result = engine
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .add_joins_text(&text);
            match result {
                Ok(_) => Message::reply(id, vec![]),
                Err(e) => Message::error(id, e.to_string()),
            }
        }
        // Server-to-server traffic is not accepted on the client port.
        other => Message::error(other.id().unwrap_or(0), "unsupported on client connection"),
    };
    vec![reply]
}

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(std::io::Error),
    /// Undecodable reply.
    Codec(CodecError),
    /// The server reported an error.
    Remote(String),
    /// The connection closed mid-request.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Codec(e) => write!(f, "codec: {e}"),
            ClientError::Remote(e) => write!(f, "server: {e}"),
            ClientError::Disconnected => write!(f, "disconnected"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Bounded-retry policy for [`TcpClient`] (and the cluster client):
/// exponential backoff with jitter on connect and I/O errors, capped by
/// an attempt count and a total backoff budget so redirect loops and
/// dead servers fail in bounded time instead of retrying forever.
///
/// The budget is accounted as the sum of backoff sleeps (no wall-clock
/// reads), so retry behavior is deterministic for a given seed.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum tries per operation (1 = no retry).
    pub max_attempts: u32,
    /// First backoff delay in milliseconds; doubles per attempt.
    pub base_delay_ms: u64,
    /// Backoff cap per attempt, in milliseconds.
    pub max_delay_ms: u64,
    /// Total backoff budget per operation, in milliseconds: once the
    /// accumulated sleep would exceed it, the operation fails with the
    /// last error.
    pub budget_ms: u64,
    /// Jitter RNG seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base_delay_ms: 10,
            max_delay_ms: 640,
            budget_ms: 5_000,
            seed: 0x7e7,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the pre-replication behavior).
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// Deterministic jittered-backoff state shared by the retrying clients.
pub(crate) struct Backoff {
    policy: RetryPolicy,
    rng: u64,
    attempt: u32,
    slept_ms: u64,
}

impl Backoff {
    pub(crate) fn new(policy: RetryPolicy) -> Backoff {
        Backoff {
            policy,
            rng: policy.seed | 1,
            attempt: 0,
            slept_ms: 0,
        }
    }

    /// Records a failed attempt. Returns `false` when the attempt count
    /// or backoff budget is exhausted (caller should give up);
    /// otherwise sleeps the jittered backoff and returns `true`.
    pub(crate) fn retry(&mut self) -> bool {
        self.attempt += 1;
        if self.attempt >= self.policy.max_attempts {
            return false;
        }
        let exp = self
            .policy
            .base_delay_ms
            .checked_shl(self.attempt.min(20) - 1)
            .unwrap_or(u64::MAX)
            .min(self.policy.max_delay_ms)
            .max(1);
        // Full jitter: uniform in [exp/2, exp].
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let jittered = exp / 2 + x.wrapping_mul(0x2545_f491_4f6c_dd1d) % (exp / 2 + 1);
        if self.slept_ms + jittered > self.policy.budget_ms {
            return false;
        }
        self.slept_ms += jittered;
        std::thread::sleep(std::time::Duration::from_millis(jittered));
        true
    }
}

/// A blocking Pequod client connection.
///
/// Transient connect and I/O failures are retried under a
/// [`RetryPolicy`] (exponential backoff with jitter, bounded attempts,
/// total backoff budget): the client reconnects and resends the
/// request. All protocol requests are idempotent (`put`/`remove` set
/// state, reads read it), so a resend after an ambiguous failure is
/// safe. Server-reported errors and codec errors are never retried.
pub struct TcpClient {
    stream: Option<TcpStream>,
    addrs: Vec<SocketAddr>,
    policy: RetryPolicy,
    buf: BytesMut,
    next_id: u64,
}

impl TcpClient {
    /// Connects to a server with the default retry policy.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpClient> {
        Self::connect_with(addr, RetryPolicy::default())
    }

    /// Connects with an explicit retry policy
    /// ([`RetryPolicy::no_retry`] restores fail-fast behavior).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> std::io::Result<TcpClient> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut client = TcpClient {
            stream: None,
            addrs,
            policy,
            buf: BytesMut::with_capacity(8 * 1024),
            next_id: 1,
        };
        let mut backoff = Backoff::new(policy);
        loop {
            match client.reconnect() {
                Ok(()) => return Ok(client),
                Err(e) => {
                    if !backoff.retry() {
                        return Err(e);
                    }
                }
            }
        }
    }

    fn reconnect(&mut self) -> std::io::Result<()> {
        let mut last = std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses");
        for addr in &self.addrs {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    self.stream = Some(stream);
                    self.buf.clear();
                    return Ok(());
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn call(&mut self, msg: Message) -> Result<Vec<(Key, Value)>, ClientError> {
        let mut backoff = Backoff::new(self.policy);
        loop {
            match self.call_once(&msg) {
                Err(ClientError::Io(e)) => {
                    self.stream = None;
                    if !backoff.retry() {
                        return Err(ClientError::Io(e));
                    }
                }
                Err(ClientError::Disconnected) => {
                    self.stream = None;
                    if !backoff.retry() {
                        return Err(ClientError::Disconnected);
                    }
                }
                other => return other,
            }
        }
    }

    fn call_once(&mut self, msg: &Message) -> Result<Vec<(Key, Value)>, ClientError> {
        let Some(id) = msg.id() else {
            return Err(ClientError::Remote("request message carries no id".into()));
        };
        if self.stream.is_none() {
            self.reconnect()?;
        }
        let Some(stream) = self.stream.as_mut() else {
            return Err(ClientError::Disconnected);
        };
        stream.write_all(&encode_frame(msg))?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match decode_frame(&mut self.buf).map_err(ClientError::Codec)? {
                Some(Message::Reply {
                    id: rid,
                    pairs,
                    error,
                }) if rid == id => {
                    return match error {
                        Some(e) => Err(ClientError::Remote(e)),
                        None => Ok(pairs),
                    };
                }
                Some(_) => continue, // unrelated frame (stale reply)
                None => {
                    let n = stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(ClientError::Disconnected);
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Point read.
    pub fn get(&mut self, key: impl Into<Key>) -> Result<Option<Value>, ClientError> {
        let id = self.fresh_id();
        let pairs = self.call(Message::Get {
            id,
            key: key.into(),
        })?;
        Ok(pairs.into_iter().next().map(|(_, v)| v))
    }

    /// Write.
    pub fn put(&mut self, key: impl Into<Key>, value: impl Into<Value>) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.call(Message::Put {
            id,
            key: key.into(),
            value: value.into(),
        })?;
        Ok(())
    }

    /// Delete.
    pub fn remove(&mut self, key: impl Into<Key>) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.call(Message::Remove {
            id,
            key: key.into(),
        })?;
        Ok(())
    }

    /// Ordered range read.
    pub fn scan(&mut self, range: KeyRange) -> Result<Vec<(Key, Value)>, ClientError> {
        let id = self.fresh_id();
        self.call(Message::Scan { id, range })
    }

    /// Server-side range count: only the number crosses the wire.
    pub fn count(&mut self, range: KeyRange) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        let pairs = self.call(Message::Count { id, range })?;
        Message::parse_count(&pairs)
            .ok_or_else(|| ClientError::Remote("malformed count reply".into()))
    }

    /// Install cache joins.
    pub fn add_join(&mut self, text: impl Into<String>) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.call(Message::AddJoin {
            id,
            text: text.into(),
        })?;
        Ok(())
    }

    /// The server's telemetry snapshot as flattened `(key, value)`
    /// string pairs — the [`Message::metrics_reply`] shape: scalar
    /// counters/gauges, `name.count/.sum/.p50/...` histogram sub-keys,
    /// and (with `flight`) `f|<seq>` flight-recorder lines. This is
    /// what `pequod-stats` polls.
    pub fn metrics(&mut self, flight: bool) -> Result<Vec<(String, String)>, ClientError> {
        let id = self.fresh_id();
        let pairs = self.call(Message::Metrics { id, flight })?;
        Ok(pairs
            .into_iter()
            .map(|(k, v)| {
                (
                    String::from_utf8_lossy(k.as_bytes()).into_owned(),
                    String::from_utf8_lossy(&v).into_owned(),
                )
            })
            .collect())
    }
}
