//! A blocking TCP transport for a single Pequod server.
//!
//! Thread-per-connection over `std::net` with the length-prefixed frame
//! codec (the framing discipline of the Tokio guide, without the async
//! runtime — the engine itself is single-threaded and lives behind one
//! mutex, matching the paper's one-process-per-core deployment where
//! each process owns a partition of the store).

use crate::codec::{decode_frame, encode_frame, CodecError};
use crate::message::Message;
use bytes::BytesMut;
use pequod_core::Engine;
use pequod_store::{Key, KeyRange, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::thread::JoinHandle;

/// A running TCP server.
pub struct TcpServer {
    addr: SocketAddr,
    engine: Arc<Mutex<Engine>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Starts serving `engine` on `addr` (use port 0 for an ephemeral
    /// port). The engine must serve local data only; queries that report
    /// missing base data return an error to the client.
    pub fn spawn(addr: impl ToSocketAddrs, engine: Engine) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let engine = Arc::new(Mutex::new(engine));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_engine = engine.clone();
        let accept_stop = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let engine = accept_engine.clone();
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, engine);
                });
            }
        });
        Ok(TcpServer {
            addr,
            engine,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared access to the engine (e.g. to inspect stats).
    pub fn engine(&self) -> Arc<Mutex<Engine>> {
        self.engine.clone()
    }

    /// Stops accepting connections.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Poke the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(mut stream: TcpStream, engine: Arc<Mutex<Engine>>) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut buf = BytesMut::with_capacity(8 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Drain complete frames.
        loop {
            match decode_frame(&mut buf) {
                Ok(Some(msg)) => {
                    for reply in handle_client_message(&engine, msg) {
                        stream.write_all(&encode_frame(&reply))?;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                }
            }
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(()); // peer closed
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn handle_client_message(engine: &Mutex<Engine>, msg: Message) -> Vec<Message> {
    let reply = match msg {
        Message::Batch { msgs } => {
            // One frame in, one reply per pipelined request out.
            return msgs
                .into_iter()
                .flat_map(|m| handle_client_message(engine, m))
                .collect();
        }
        Message::Count { id, range } => {
            let res = engine
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .count_result(&range);
            if res.is_complete() {
                Message::count_reply(id, res.count as u64)
            } else {
                Message::error(id, "missing base data (no backing store attached)")
            }
        }
        Message::Get { id, key } => {
            let res = engine
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get_result(&key);
            if res.is_complete() {
                Message::reply(id, res.pairs)
            } else {
                Message::error(id, "missing base data (no backing store attached)")
            }
        }
        Message::Scan { id, range } => {
            let res = engine
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .scan(&range);
            if res.is_complete() {
                Message::reply(id, res.pairs)
            } else {
                Message::error(id, "missing base data (no backing store attached)")
            }
        }
        Message::Put { id, key, value } => {
            engine
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .put(key, value);
            Message::reply(id, vec![])
        }
        Message::Remove { id, key } => {
            engine
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&key);
            Message::reply(id, vec![])
        }
        Message::AddJoin { id, text } => {
            let result = engine
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .add_joins_text(&text);
            match result {
                Ok(_) => Message::reply(id, vec![]),
                Err(e) => Message::error(id, e.to_string()),
            }
        }
        // Server-to-server traffic is not accepted on the client port.
        other => Message::error(other.id().unwrap_or(0), "unsupported on client connection"),
    };
    vec![reply]
}

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(std::io::Error),
    /// Undecodable reply.
    Codec(CodecError),
    /// The server reported an error.
    Remote(String),
    /// The connection closed mid-request.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Codec(e) => write!(f, "codec: {e}"),
            ClientError::Remote(e) => write!(f, "server: {e}"),
            ClientError::Disconnected => write!(f, "disconnected"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking Pequod client connection.
pub struct TcpClient {
    stream: TcpStream,
    buf: BytesMut,
    next_id: u64,
}

impl TcpClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            stream,
            buf: BytesMut::with_capacity(8 * 1024),
            next_id: 1,
        })
    }

    fn call(&mut self, msg: Message) -> Result<Vec<(Key, Value)>, ClientError> {
        let id = msg.id().expect("requests carry ids");
        self.stream.write_all(&encode_frame(&msg))?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match decode_frame(&mut self.buf).map_err(ClientError::Codec)? {
                Some(Message::Reply {
                    id: rid,
                    pairs,
                    error,
                }) if rid == id => {
                    return match error {
                        Some(e) => Err(ClientError::Remote(e)),
                        None => Ok(pairs),
                    };
                }
                Some(_) => continue, // unrelated frame (stale reply)
                None => {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(ClientError::Disconnected);
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Point read.
    pub fn get(&mut self, key: impl Into<Key>) -> Result<Option<Value>, ClientError> {
        let id = self.fresh_id();
        let pairs = self.call(Message::Get {
            id,
            key: key.into(),
        })?;
        Ok(pairs.into_iter().next().map(|(_, v)| v))
    }

    /// Write.
    pub fn put(&mut self, key: impl Into<Key>, value: impl Into<Value>) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.call(Message::Put {
            id,
            key: key.into(),
            value: value.into(),
        })?;
        Ok(())
    }

    /// Delete.
    pub fn remove(&mut self, key: impl Into<Key>) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.call(Message::Remove {
            id,
            key: key.into(),
        })?;
        Ok(())
    }

    /// Ordered range read.
    pub fn scan(&mut self, range: KeyRange) -> Result<Vec<(Key, Value)>, ClientError> {
        let id = self.fresh_id();
        self.call(Message::Scan { id, range })
    }

    /// Server-side range count: only the number crosses the wire.
    pub fn count(&mut self, range: KeyRange) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        let pairs = self.call(Message::Count { id, range })?;
        Message::parse_count(&pairs)
            .ok_or_else(|| ClientError::Remote("malformed count reply".into()))
    }

    /// Install cache joins.
    pub fn add_join(&mut self, text: impl Into<String>) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.call(Message::AddJoin {
            id,
            text: text.into(),
        })?;
        Ok(())
    }
}
