//! The cluster-facing implementation of the unified client API.
//!
//! [`ClusterClient`] fronts a [`SimCluster`]: each
//! [`Client::execute_batch`] call is routed through the deployment's
//! [`Partition`] function, grouped into **one pipelined [`Message::Batch`]
//! frame per destination server**, delivered in a single network
//! round-trip, and matched back to commands by request id. This is the
//! paper's client library shape: writes go to each base key's home
//! server, reads for computed data go wherever client routing places
//! them (e.g. Twip sends all of user *u*'s timeline checks to server
//! *S(u)*), and independent requests share frames instead of paying a
//! round-trip each.

use crate::message::Message;
use crate::partition::{Partition, ServerId};
use crate::sim::SimCluster;
use pequod_core::{BackendStats, Client, Command, Response};
use pequod_store::Key;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

/// The client id under which batch traffic is injected (distinct from
/// the simulator's synchronous convenience API, which uses client 0).
const BATCH_CLIENT: u32 = 0xc11e;

/// What a wire reply should be decoded into.
enum WireKind {
    Get,
    Scan,
    Count,
    Write,
    /// A broadcast join installation: one reply expected per server.
    AddJoin {
        servers: usize,
    },
}

/// One command's pending answer: either a wire reply to await or a
/// locally computed response.
enum Slot {
    Wire { id: u64, kind: WireKind },
    Local(Response),
}

/// A batched client for a partitioned (simulated) Pequod cluster.
pub struct ClusterClient {
    cluster: SimCluster,
    partition: Arc<dyn Partition>,
    read_router: Option<Arc<dyn Partition>>,
    next_id: u64,
}

impl ClusterClient {
    /// Wraps a cluster. `partition` is the deployment's home function:
    /// writes are sent straight to each key's home server, and — unless
    /// overridden by [`ClusterClient::with_read_router`] — reads are
    /// routed the same way.
    pub fn new(cluster: SimCluster, partition: Arc<dyn Partition>) -> ClusterClient {
        ClusterClient {
            cluster,
            partition,
            read_router: None,
            next_id: 1,
        }
    }

    /// Overrides read routing (§2.4: computed data is placed by client
    /// routing, not by the partition function — e.g. timeline checks for
    /// user `u` all go to compute server `S(u)`).
    pub fn with_read_router(mut self, router: Arc<dyn Partition>) -> ClusterClient {
        self.read_router = Some(router);
        self
    }

    /// The underlying cluster (stats, traffic accounting).
    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// Mutable access to the underlying cluster.
    pub fn cluster_mut(&mut self) -> &mut SimCluster {
        &mut self.cluster
    }
}

impl ClusterClient {
    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn read_home(&self, key: &Key) -> ServerId {
        match &self.read_router {
            Some(r) => r.home_of(key),
            None => self.partition.home_of(key),
        }
    }

    fn local_stats(&self) -> BackendStats {
        let mut stats = BackendStats::default();
        for i in 0..self.cluster.len() {
            stats += self.cluster.node(ServerId(i as u32)).engine.backend_stats();
        }
        stats
    }
}

/// Command classes whose members may share one pipelined round without
/// changing observable results: reads don't mutate client-visible
/// state, and writes aren't observed until the next read. A run of one
/// class executes as one round-trip per destination; the network runs
/// to quiescence between runs, so a batch answers exactly like the same
/// commands issued one at a time.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CommandClass {
    Read,
    Write,
    Join,
    /// Stats snapshots cluster-wide state locally, so it must not share
    /// a run with wire commands whose effects it would otherwise miss.
    Stats,
}

fn class_of(command: &Command) -> CommandClass {
    match command {
        Command::Get(_) | Command::Scan(_) | Command::Count(_) => CommandClass::Read,
        Command::Put(..) | Command::Remove(_) => CommandClass::Write,
        Command::AddJoin(_) => CommandClass::Join,
        Command::Stats => CommandClass::Stats,
    }
}

impl Client for ClusterClient {
    fn backend_name(&self) -> &'static str {
        "cluster"
    }

    fn execute_batch(&mut self, commands: Vec<Command>) -> Vec<Response> {
        let mut responses = Vec::with_capacity(commands.len());
        let mut run: Vec<Command> = Vec::new();
        let mut run_class = CommandClass::Read;
        for command in commands {
            let class = class_of(&command);
            if !run.is_empty() && class != run_class {
                responses.extend(self.execute_run(std::mem::take(&mut run)));
            }
            run_class = class;
            run.push(command);
        }
        if !run.is_empty() {
            responses.extend(self.execute_run(run));
        }
        responses
    }
}

impl ClusterClient {
    /// Executes one same-class run: per-destination pipelined frames,
    /// one network round to quiescence, replies matched by id.
    fn execute_run(&mut self, commands: Vec<Command>) -> Vec<Response> {
        let servers = self.cluster.len();
        let mut batches: BTreeMap<ServerId, Vec<Message>> = BTreeMap::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(commands.len());
        for command in commands {
            match command {
                Command::Get(key) => {
                    let id = self.fresh_id();
                    let home = self.read_home(&key);
                    batches
                        .entry(home)
                        .or_default()
                        .push(Message::Get { id, key });
                    slots.push(Slot::Wire {
                        id,
                        kind: WireKind::Get,
                    });
                }
                Command::Scan(range) => {
                    let id = self.fresh_id();
                    let home = self.read_home(&range.first);
                    batches
                        .entry(home)
                        .or_default()
                        .push(Message::Scan { id, range });
                    slots.push(Slot::Wire {
                        id,
                        kind: WireKind::Scan,
                    });
                }
                Command::Count(range) => {
                    let id = self.fresh_id();
                    let home = self.read_home(&range.first);
                    batches
                        .entry(home)
                        .or_default()
                        .push(Message::Count { id, range });
                    slots.push(Slot::Wire {
                        id,
                        kind: WireKind::Count,
                    });
                }
                Command::Put(key, value) => {
                    let id = self.fresh_id();
                    let home = self.partition.home_of(&key);
                    batches
                        .entry(home)
                        .or_default()
                        .push(Message::Put { id, key, value });
                    slots.push(Slot::Wire {
                        id,
                        kind: WireKind::Write,
                    });
                }
                Command::Remove(key) => {
                    let id = self.fresh_id();
                    let home = self.partition.home_of(&key);
                    batches
                        .entry(home)
                        .or_default()
                        .push(Message::Remove { id, key });
                    slots.push(Slot::Wire {
                        id,
                        kind: WireKind::Write,
                    });
                }
                Command::AddJoin(text) => {
                    // Joins are installed on every server; all replies
                    // share one id and are collected together.
                    let id = self.fresh_id();
                    for s in 0..servers {
                        batches
                            .entry(ServerId(s as u32))
                            .or_default()
                            .push(Message::AddJoin {
                                id,
                                text: text.clone(),
                            });
                    }
                    slots.push(Slot::Wire {
                        id,
                        kind: WireKind::AddJoin { servers },
                    });
                }
                Command::Stats => slots.push(Slot::Local(Response::Stats(self.local_stats()))),
            }
        }

        // One pipelined frame per destination, then run the network to
        // quiescence so parked queries (remote fetches) resolve.
        for (server, mut msgs) in batches {
            let frame = if msgs.len() > 1 {
                Message::Batch { msgs }
            } else if let Some(msg) = msgs.pop() {
                msg
            } else {
                continue; // empty batch: nothing to send this destination
            };
            self.cluster.request(BATCH_CLIENT, server, frame);
        }
        self.cluster.run_until_quiet();

        // Collect replies by id. Replies addressed to other client ids
        // (e.g. the simulator's synchronous API) stay queued for their
        // owners.
        let mut by_id: HashMap<u64, Vec<Message>> = HashMap::new();
        for msg in self.cluster.take_replies_for(BATCH_CLIENT) {
            if let Some(id) = msg.id() {
                by_id.entry(id).or_default().push(msg);
            }
        }

        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Local(r) => r,
                Slot::Wire { id, kind } => {
                    let replies = by_id.remove(&id).unwrap_or_default();
                    decode_replies(kind, replies)
                }
            })
            .collect()
    }
}

/// The (pairs, error) payload of one `Message::Reply`.
type ReplyParts = (Vec<(Key, pequod_store::Value)>, Option<String>);

fn decode_replies(kind: WireKind, replies: Vec<Message>) -> Response {
    let mut parts: Vec<ReplyParts> = replies
        .into_iter()
        .filter_map(|m| match m {
            Message::Reply { pairs, error, .. } => Some((pairs, error)),
            _ => None,
        })
        .collect();
    if let WireKind::AddJoin { servers } = kind {
        if parts.len() < servers {
            return Response::Error(format!(
                "addjoin: {} of {servers} servers replied",
                parts.len()
            ));
        }
        if let Some((_, Some(e))) = parts.iter().find(|(_, e)| e.is_some()) {
            return Response::Error(e.clone());
        }
        return Response::Ok;
    }
    let Some((pairs, error)) = parts.pop() else {
        return Response::Error("no reply from cluster".into());
    };
    if let Some(e) = error {
        return Response::Error(e);
    }
    match kind {
        WireKind::Get => Response::Value(pairs.into_iter().next().map(|(_, v)| v)),
        WireKind::Scan => Response::Pairs(pairs),
        WireKind::Count => match Message::parse_count(&pairs) {
            Some(n) => Response::Count(n),
            None => Response::Error("malformed count reply".into()),
        },
        WireKind::Write => Response::Ok,
        WireKind::AddJoin { .. } => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::TablePartition;
    use crate::server::ServerNode;
    use crate::sim::SimConfig;
    use pequod_core::{Engine, EngineConfig};
    use pequod_store::{KeyRange, Value};

    const TIMELINE: &str =
        "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>";

    fn two_server_client() -> ClusterClient {
        // Posts homed on server 1, everything else on server 0.
        let part = Arc::new(TablePartition::new(ServerId(0)).route("p|", ServerId(1)));
        let nodes = (0..2)
            .map(|i| {
                ServerNode::new(
                    ServerId(i),
                    Engine::new(EngineConfig::default()),
                    part.clone(),
                    &["p|", "s|"],
                )
            })
            .collect();
        let cluster = SimCluster::new(SimConfig::default(), nodes);
        ClusterClient::new(cluster, part)
    }

    #[test]
    fn batched_commands_cross_partitions() {
        let mut c = two_server_client();
        let responses = c.execute_batch(vec![
            Command::AddJoin(TIMELINE.to_string()),
            Command::Put(Key::from("s|ann|bob"), Value::from_static(b"1")),
            Command::Put(Key::from("p|bob|0000000100"), Value::from_static(b"Hi")),
        ]);
        assert_eq!(responses, vec![Response::Ok, Response::Ok, Response::Ok]);
        // The timeline is computed on server 0 from posts homed on
        // server 1, fetched by subscription.
        let tl = c.scan(&KeyRange::prefix("t|ann|"));
        assert_eq!(tl.len(), 1);
        assert_eq!(c.count(&KeyRange::prefix("t|ann|")), 1);
        assert_eq!(
            c.get(&Key::from("t|ann|0000000100|bob")).as_deref(),
            Some(&b"Hi"[..])
        );
        assert!(c.cluster().node(ServerId(1)).subscriber_count() >= 1);
        // Notifications keep the replica fresh across batches.
        c.put(&Key::from("p|bob|0000000120"), &Value::from_static(b"x"));
        assert_eq!(c.count(&KeyRange::prefix("t|ann|")), 2);
        c.remove(&Key::from("p|bob|0000000100"));
        assert_eq!(c.count(&KeyRange::prefix("t|ann|")), 1);
        let stats = c.stats();
        assert!(stats.keys > 0 && stats.memory_bytes > 0);
    }

    #[test]
    fn bad_join_text_surfaces_as_error() {
        let mut c = two_server_client();
        assert!(c.add_join("nonsense").is_err());
    }

    #[test]
    fn stats_in_a_batch_observes_the_batch_writes() {
        let mut c = two_server_client();
        let out = c.execute_batch(vec![
            Command::Put(Key::from("s|ann|bob"), Value::from_static(b"1")),
            Command::Put(Key::from("p|bob|0000000100"), Value::from_static(b"Hi")),
            Command::Stats,
        ]);
        let Response::Stats(stats) = &out[2] else {
            panic!("expected stats, got {:?}", out[2]);
        };
        assert_eq!(stats.keys, 2, "stats snapshot ran before the writes landed");
    }

    #[test]
    fn foreign_replies_stay_queued() {
        let mut c = two_server_client();
        // A synchronous-API request from another client id, in flight
        // while the batched client works.
        c.cluster_mut().request(
            0,
            ServerId(0),
            Message::Scan {
                id: u64::MAX,
                range: KeyRange::prefix("s|"),
            },
        );
        c.put(&Key::from("s|ann|bob"), &Value::from_static(b"1"));
        let leftover = c.cluster_mut().take_replies();
        assert!(
            leftover
                .iter()
                .any(|(client, m)| *client == 0 && m.id() == Some(u64::MAX)),
            "client 0's reply was drained by the batch client"
        );
    }
}
