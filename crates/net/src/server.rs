//! A distributed Pequod server node (§2.4).
//!
//! Each node owns one single-threaded [`Engine`]. Base tables are
//! partitioned across nodes by a [`Partition`] function; when a node
//! needs base data homed elsewhere it sends `Subscribe` to the home
//! server, which returns the data and forwards future updates with
//! `Notify` — establishing an eventually-consistent replica. Queries
//! that hit missing data park with a restart context and resume when
//! their fetches complete (§3.3).
//!
//! Nodes are transport-agnostic: [`ServerNode::handle`] consumes one
//! message and returns the messages to send, so the same node runs under
//! the deterministic simulator (`sim`) or a real socket loop (`tcp`).

use crate::message::Message;
use crate::partition::{Partition, ServerId};
use pequod_core::Engine;
use pequod_store::{Key, KeyRange, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A message source or destination.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Endpoint {
    /// An application client.
    Client(u32),
    /// Another server.
    Server(ServerId),
}

/// Per-node counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeStats {
    /// Client requests served (including error replies).
    pub requests: u64,
    /// Queries parked waiting for remote data.
    pub parked: u64,
    /// Subscriptions granted to other servers.
    pub subs_granted: u64,
    /// Subscriptions this node established at other servers.
    pub subs_established: u64,
    /// Notify messages sent to subscribers.
    pub notifies_sent: u64,
    /// Notify messages applied from home servers.
    pub notifies_applied: u64,
    /// Put/Remove requests forwarded to their home server.
    pub forwards: u64,
}

struct Parked {
    client: Endpoint,
    request_id: u64,
    range: KeyRange,
    /// True for a `Count` request: the answer ships as a count reply
    /// instead of the materialized pairs.
    count: bool,
    outstanding: HashSet<u64>,
    retries: u32,
}

const MAX_RETRIES: u32 = 16;

/// One Pequod server in a distributed deployment.
pub struct ServerNode {
    /// This node's identity.
    pub id: ServerId,
    /// The cache engine.
    pub engine: Engine,
    partition: Arc<dyn Partition>,
    /// Subscriptions granted: ranges other servers replicate from us.
    subscribers: Vec<(KeyRange, ServerId)>,
    parked: Vec<Parked>,
    /// Forwarded writes awaiting the home server's reply: id → origin.
    relays: HashMap<u64, (Endpoint, u64)>,
    next_id: u64,
    /// Counters.
    pub stats: NodeStats,
}

impl ServerNode {
    /// Creates a node. `partitioned_tables` lists base-table prefixes
    /// that are spread across the deployment (each server treats them as
    /// remote and resolves residency through the partition function).
    pub fn new(
        id: ServerId,
        mut engine: Engine,
        partition: Arc<dyn Partition>,
        partitioned_tables: &[&str],
    ) -> ServerNode {
        for t in partitioned_tables {
            engine.mark_remote_table(*t);
        }
        // Memory-bounded serving (§2.5): eviction at this node may drop
        // replicated base data (the home server still has it and the
        // next read re-subscribes), but never rows this node is the
        // partition's authority for — those are the only copy.
        let auth_partition = partition.clone();
        engine.set_base_authority(move |key| auth_partition.home_of(key) == id);
        ServerNode {
            id,
            engine,
            partition,
            subscribers: Vec::new(),
            parked: Vec::new(),
            relays: HashMap::new(),
            next_id: 1,
            stats: NodeStats::default(),
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Number of ranges other servers replicate from this node.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Number of queries currently parked on missing data.
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    /// Handles one message, returning messages to send.
    pub fn handle(&mut self, from: Endpoint, msg: Message) -> Vec<(Endpoint, Message)> {
        match msg {
            Message::Get { id, key } => self.start_query(from, id, KeyRange::single(key), false),
            Message::Scan { id, range } => self.start_query(from, id, range, false),
            Message::Count { id, range } => self.start_query(from, id, range, true),
            Message::Batch { msgs } => {
                let mut out = Vec::new();
                for m in msgs {
                    out.extend(self.handle(from, m));
                }
                out
            }
            Message::Put { id, key, value } => self.handle_write(from, id, key, Some(value)),
            Message::Remove { id, key } => self.handle_write(from, id, key, None),
            Message::AddJoin { id, text } => {
                self.stats.requests += 1;
                let reply = match self.engine.add_joins_text(&text) {
                    Ok(_) => Message::reply(id, vec![]),
                    Err(e) => Message::error(id, e.to_string()),
                };
                vec![(from, reply)]
            }
            Message::Subscribe { id, range } => {
                let Endpoint::Server(peer) = from else {
                    return vec![(from, Message::error(id, "subscribe is server-to-server"))];
                };
                let pairs = self.local_scan(&range);
                if !self
                    .subscribers
                    .iter()
                    .any(|(r, s)| *s == peer && r == &range)
                {
                    self.subscribers.push((range.clone(), peer));
                    self.stats.subs_granted += 1;
                }
                vec![(from, Message::SubscribeReply { id, range, pairs })]
            }
            Message::SubscribeReply { id, range, pairs } => {
                self.stats.subs_established += 1;
                self.engine.install_base(&range, pairs);
                self.resume_parked(id)
            }
            Message::Notify { key, value } => {
                self.stats.notifies_applied += 1;
                match value {
                    Some(v) => self.engine.put(key, v),
                    None => self.engine.remove(&key),
                }
                vec![]
            }
            Message::Unsubscribe { range } => {
                if let Endpoint::Server(peer) = from {
                    self.subscribers
                        .retain(|(r, s)| !(*s == peer && r.overlaps(&range)));
                }
                vec![]
            }
            Message::Reply { id, pairs, error } => {
                // A reply to a write we forwarded: relay to the origin.
                if let Some((origin, orig_id)) = self.relays.remove(&id) {
                    vec![(
                        origin,
                        Message::Reply {
                            id: orig_id,
                            pairs,
                            error,
                        },
                    )]
                } else {
                    vec![]
                }
            }
            // Replication traffic belongs to `pequod_cluster`'s node
            // loop, not the single-authority Subscribe/Notify server.
            other => match other.id() {
                Some(id) => vec![(
                    from,
                    Message::error(id, "replication message on a non-replicated server"),
                )],
                None => vec![],
            },
        }
    }

    fn handle_write(
        &mut self,
        from: Endpoint,
        id: u64,
        key: Key,
        value: Option<Value>,
    ) -> Vec<(Endpoint, Message)> {
        self.stats.requests += 1;
        let home = self.partition.home_of(&key);
        if home != self.id {
            // Forward to the home server and relay its reply.
            self.stats.forwards += 1;
            let fid = self.fresh_id();
            self.relays.insert(fid, (from, id));
            let fwd = match value {
                Some(v) => Message::Put {
                    id: fid,
                    key,
                    value: v,
                },
                None => Message::Remove { id: fid, key },
            };
            return vec![(Endpoint::Server(home), fwd)];
        }
        // Home write: make the written range resident (we are the
        // authority for it), apply, and notify subscribers.
        self.engine.mark_resident(&KeyRange::single(key.clone()));
        match &value {
            Some(v) => self.engine.put(key.clone(), v.clone()),
            None => self.engine.remove(&key),
        }
        let mut out = vec![(from, Message::reply(id, vec![]))];
        let mut notified: HashSet<ServerId> = HashSet::new();
        for (range, sid) in &self.subscribers {
            if range.contains(&key) && notified.insert(*sid) {
                out.push((
                    Endpoint::Server(*sid),
                    Message::Notify {
                        key: key.clone(),
                        value: value.clone(),
                    },
                ));
            }
        }
        self.stats.notifies_sent += (out.len() - 1) as u64;
        out
    }

    fn start_query(
        &mut self,
        from: Endpoint,
        id: u64,
        range: KeyRange,
        count: bool,
    ) -> Vec<(Endpoint, Message)> {
        self.stats.requests += 1;
        let parked = Parked {
            client: from,
            request_id: id,
            range,
            count,
            outstanding: HashSet::new(),
            retries: 0,
        };
        self.drive_query(parked)
    }

    /// Runs a query until it completes or parks on remote fetches.
    fn drive_query(&mut self, mut q: Parked) -> Vec<(Endpoint, Message)> {
        loop {
            // Counts are answered server-side: only the number crosses
            // the wire, never the pairs.
            let missing = if q.count {
                let res = self.engine.count_result(&q.range);
                if res.is_complete() {
                    return vec![(
                        q.client,
                        Message::count_reply(q.request_id, res.count as u64),
                    )];
                }
                res.missing
            } else {
                let res = self.engine.scan(&q.range);
                if res.is_complete() {
                    return vec![(q.client, Message::reply(q.request_id, res.pairs))];
                }
                res.missing
            };
            q.retries += 1;
            if q.retries > MAX_RETRIES {
                return vec![(
                    q.client,
                    Message::error(q.request_id, "query exceeded fetch retries"),
                )];
            }
            let mut out = Vec::new();
            for miss in missing {
                let home = self.partition.home_of(&miss.first);
                if home == self.id {
                    // We are the authority: absence is knowledge.
                    self.engine.mark_resident(&miss);
                } else {
                    let fid = self.fresh_id();
                    q.outstanding.insert(fid);
                    out.push((
                        Endpoint::Server(home),
                        Message::Subscribe {
                            id: fid,
                            range: miss,
                        },
                    ));
                }
            }
            if out.is_empty() {
                // Everything missing was local: retry immediately.
                continue;
            }
            self.stats.parked += 1;
            self.parked.push(q);
            return out;
        }
    }

    /// Called when a subscription fetch completes; resumes any parked
    /// query that was waiting on it.
    fn resume_parked(&mut self, fetch_id: u64) -> Vec<(Endpoint, Message)> {
        let mut out = Vec::new();
        let mut ready = Vec::new();
        let mut i = 0;
        while i < self.parked.len() {
            let waiting = self.parked[i].outstanding.remove(&fetch_id);
            if waiting && self.parked[i].outstanding.is_empty() {
                ready.push(self.parked.swap_remove(i));
            } else {
                i += 1;
            }
        }
        for q in ready {
            out.extend(self.drive_query(q));
        }
        out
    }

    /// Scans a locally-homed range to serve a subscription, resolving
    /// local residency along the way. Automatic eviction is suspended
    /// for the duration: the grant must ship a stable snapshot, not one
    /// with rows dropped mid-scan.
    fn local_scan(&mut self, range: &KeyRange) -> Vec<(Key, Value)> {
        let saved_limit = self.engine.set_mem_limit(None);
        let pairs = loop {
            let res = self.engine.scan(range);
            if res.is_complete() {
                break res.pairs;
            }
            for miss in res.missing {
                // We serve subscriptions only for ranges we are home to;
                // whatever is absent here is absent, period.
                self.engine.mark_resident(&miss);
            }
        };
        self.engine.set_mem_limit(saved_limit);
        pairs
    }
}
