//! `pequod-net` — the distributed tier of Pequod (§2.4).
//!
//! Base data is partitioned across servers by a [`Partition`] function;
//! each base key has a *home server*. When server `S` reads a key range
//! homed at `H`, `H` returns the data and installs a subscription: later
//! updates at `H` are forwarded to `S`, which maintains an
//! eventually-consistent replica and keeps its computed data fresh
//! through the normal updater machinery.
//!
//! Components:
//!
//! * [`Message`] — the RPC vocabulary (client ops + server-to-server
//!   subscription traffic).
//! * [`codec`] — a hand-rolled binary wire format with length-prefixed
//!   framing.
//! * [`ServerNode`] — one transport-agnostic server: consumes a message,
//!   returns messages to send; parks queries on missing data and
//!   restarts them when fetches complete (§3.3).
//! * [`SimCluster`] — a deterministic in-process network for experiments
//!   (latency, notify jitter, per-class byte accounting).
//! * [`ClusterClient`] — the unified `pequod_core::Client` surface over
//!   a cluster: commands are routed by the partition function and
//!   pipelined as one batched frame per destination server.
//! * [`TcpServer`] / [`TcpClient`] — a real blocking TCP transport for a
//!   single node over loopback or LAN, serving either one
//!   single-threaded engine or a multi-core
//!   [`pequod_core::ShardedEngine`]
//!   ([`TcpServer::spawn_sharded`]).
//!
//! The [`partition`] module re-exports `pequod_core::partition`: the
//! same key-routing functions place data on server processes here and
//! on in-process engine shards in `pequod_core::sharded`.

// Unsafe is denied crate-wide; the single exception is the `epoll(7)`
// FFI shim in `reactor::sys`, which carries `#[allow(unsafe_code)]`
// plus the SAFETY comments `cargo xtask audit` requires.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod frontend;
pub mod message;
pub mod partition;
pub mod reactor;
pub mod server;
pub mod sim;
pub mod swarm;
pub mod tcp;

pub use client::ClusterClient;
pub use frontend::{FrontendConfig, FrontendServer, FrontendStats, FrontendStatsSnapshot};
pub use message::Message;
pub use partition::{ComponentHashPartition, Partition, ServerId, SingleServer, TablePartition};
pub use reactor::Poller;
pub use server::{Endpoint, NodeStats, ServerNode};
pub use sim::{FaultStats, LinkFaults, SimCluster, SimConfig, SimNet, TrafficStats};
pub use swarm::{Swarm, SwarmConfig, SwarmReport};
pub use tcp::{ClientError, RetryPolicy, TcpClient, TcpServer};

#[cfg(test)]
mod tests {
    use super::*;
    use pequod_core::{Engine, EngineConfig};
    use pequod_store::{Key, KeyRange};
    use std::sync::Arc;

    const TIMELINE: &str =
        "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>";

    /// Base data homed on server 0; timelines computed on server 1.
    fn two_server_cluster() -> SimCluster {
        let part = Arc::new(TablePartition::new(ServerId(0)));
        let nodes = vec![
            ServerNode::new(
                ServerId(0),
                Engine::new(EngineConfig::default()),
                part.clone(),
                &["p|", "s|"],
            ),
            ServerNode::new(
                ServerId(1),
                Engine::new(EngineConfig::default()),
                part,
                &["p|", "s|"],
            ),
        ];
        let mut cluster = SimCluster::new(SimConfig::default(), nodes);
        cluster.add_joins_everywhere(TIMELINE);
        cluster
    }

    #[test]
    fn remote_timeline_fetches_and_subscribes() {
        let mut c = two_server_cluster();
        c.put(ServerId(0), "s|ann|bob", "1");
        c.put(ServerId(0), "p|bob|0000000100", "Hi");

        // Compute server 1 has nothing; the scan triggers subscriptions.
        let tl = c.scan(ServerId(1), KeyRange::prefix("t|ann|"));
        assert_eq!(tl.len(), 1);
        assert_eq!(tl[0].0, Key::from("t|ann|0000000100|bob"));
        assert!(c.node(ServerId(0)).subscriber_count() >= 2);
        assert!(c.node(ServerId(1)).stats.subs_established >= 2);
    }

    #[test]
    fn updates_propagate_via_notify() {
        let mut c = two_server_cluster();
        c.put(ServerId(0), "s|ann|bob", "1");
        c.put(ServerId(0), "p|bob|0000000100", "Hi");
        c.scan(ServerId(1), KeyRange::prefix("t|ann|")); // warm + subscribe

        let fetches = c.node(ServerId(1)).stats.subs_established;
        // New post written to the home server flows to the replica.
        c.put(ServerId(0), "p|bob|0000000120", "again");
        let tl = c.scan(ServerId(1), KeyRange::prefix("t|ann|"));
        assert_eq!(tl.len(), 2);
        assert_eq!(
            c.node(ServerId(1)).stats.subs_established,
            fetches,
            "no refetch: updates arrived by notify"
        );
        assert!(c.node(ServerId(1)).stats.notifies_applied >= 1);

        // Removal propagates too.
        c.remove(ServerId(0), "p|bob|0000000100");
        let tl = c.scan(ServerId(1), KeyRange::prefix("t|ann|"));
        assert_eq!(tl.len(), 1);
    }

    #[test]
    fn writes_forward_to_home_server() {
        let mut c = two_server_cluster();
        // Write sent to the wrong server is forwarded home.
        c.put(ServerId(1), "p|bob|0000000100", "Hi");
        assert_eq!(c.node(ServerId(1)).stats.forwards, 1);
        c.put(ServerId(0), "s|ann|bob", "1");
        let tl = c.scan(ServerId(1), KeyRange::prefix("t|ann|"));
        assert_eq!(tl.len(), 1);
    }

    #[test]
    fn replicas_on_multiple_servers_stay_fresh() {
        // Three servers: home + two compute replicas of the same range
        // (replication-based load balancing, §2.4).
        let part = Arc::new(TablePartition::new(ServerId(0)));
        let nodes = (0..3)
            .map(|i| {
                ServerNode::new(
                    ServerId(i),
                    Engine::new(EngineConfig::default()),
                    part.clone(),
                    &["p|", "s|"],
                )
            })
            .collect();
        let mut c = SimCluster::new(SimConfig::default(), nodes);
        c.add_joins_everywhere(TIMELINE);
        c.put(ServerId(0), "s|ann|bob", "1");
        c.put(ServerId(0), "p|bob|0000000100", "Hi");
        assert_eq!(c.scan(ServerId(1), KeyRange::prefix("t|ann|")).len(), 1);
        assert_eq!(c.scan(ServerId(2), KeyRange::prefix("t|ann|")).len(), 1);
        // An update fans out to both replicas.
        c.put(ServerId(0), "p|bob|0000000120", "again");
        assert_eq!(c.scan(ServerId(1), KeyRange::prefix("t|ann|")).len(), 2);
        assert_eq!(c.scan(ServerId(2), KeyRange::prefix("t|ann|")).len(), 2);
    }

    #[test]
    fn eventual_consistency_under_notify_jitter() {
        let part = Arc::new(TablePartition::new(ServerId(0)));
        let nodes = (0..2)
            .map(|i| {
                ServerNode::new(
                    ServerId(i),
                    Engine::new(EngineConfig::default()),
                    part.clone(),
                    &["p|", "s|"],
                )
            })
            .collect();
        let mut c = SimCluster::new(
            SimConfig {
                notify_jitter_chance: 0.5,
                notify_jitter: 50,
                ..SimConfig::default()
            },
            nodes,
        );
        c.add_joins_everywhere(TIMELINE);
        c.put(ServerId(0), "s|ann|bob", "1");
        c.scan(ServerId(1), KeyRange::prefix("t|ann|"));
        for t in 0..20u64 {
            c.put(ServerId(0), format!("p|bob|{:010}", 100 + t), "x");
        }
        // After quiescence every update has arrived, jitter or not.
        c.run_until_quiet();
        assert_eq!(c.scan(ServerId(1), KeyRange::prefix("t|ann|")).len(), 20);
    }

    #[test]
    fn component_hash_partition_colocates_user_data() {
        let part = Arc::new(ComponentHashPartition {
            component: 1,
            servers: 2,
        });
        let nodes = (0..2)
            .map(|i| {
                ServerNode::new(
                    ServerId(i),
                    Engine::new(EngineConfig::default()),
                    part.clone(),
                    &["p|", "s|"],
                )
            })
            .collect();
        let mut c = SimCluster::new(SimConfig::default(), nodes);
        c.add_joins_everywhere(TIMELINE);
        // Route each write to its home server, as the client library would.
        for (k, v) in [("s|ann|bob", "1"), ("p|bob|0000000100", "Hi")] {
            let home = part.home_of(&Key::from(k));
            c.put(home, k, v);
        }
        // Read ann's timeline from her own server.
        let tserver = part.server_for_component(b"ann");
        let tl = c.scan(tserver, KeyRange::prefix("t|ann|"));
        assert_eq!(tl.len(), 1);
    }

    #[test]
    fn traffic_accounting_separates_classes() {
        let mut c = two_server_cluster();
        c.put(ServerId(0), "s|ann|bob", "1");
        c.put(ServerId(0), "p|bob|0000000100", "Hi");
        let before = c.traffic.subscription_bytes;
        c.scan(ServerId(1), KeyRange::prefix("t|ann|"));
        assert!(c.traffic.subscription_bytes > before);
        assert!(c.traffic.client_bytes > 0);
        assert!(c.traffic.delivered > 4);
    }

    #[test]
    fn tcp_round_trip() {
        let mut engine = Engine::new(EngineConfig::default());
        engine.add_join_text(TIMELINE).unwrap();
        let server = TcpServer::spawn("127.0.0.1:0", engine).unwrap();
        let mut client = TcpClient::connect(server.addr()).unwrap();

        client.put("s|ann|bob", "1").unwrap();
        client.put("p|bob|0000000100", "Hi").unwrap();
        let tl = client.scan(KeyRange::prefix("t|ann|")).unwrap();
        assert_eq!(tl.len(), 1);
        assert_eq!(&tl[0].1[..], b"Hi");
        assert_eq!(
            client.get("t|ann|0000000100|bob").unwrap().as_deref(),
            Some(&b"Hi"[..])
        );
        client.remove("p|bob|0000000100").unwrap();
        assert!(client.scan(KeyRange::prefix("t|ann|")).unwrap().is_empty());

        // Joins can be installed over the wire too.
        client
            .add_join("karma|<a> = count vote|<a>|<id>|<v>")
            .unwrap();
        client.put("vote|kat|1|ann", "1").unwrap();
        assert_eq!(client.get("karma|kat").unwrap().as_deref(), Some(&b"1"[..]));
        // Bad join text returns a remote error, not a hang.
        assert!(matches!(
            client.add_join("nonsense"),
            Err(ClientError::Remote(_))
        ));
    }

    #[test]
    fn tcp_sharded_round_trip() {
        use pequod_core::{Client, ShardedEngine};
        let part = Arc::new(ComponentHashPartition {
            component: 1,
            servers: 2,
        });
        let mut sharded = ShardedEngine::new(2, EngineConfig::default(), part, &["p|", "s|"]);
        sharded.add_join(TIMELINE).unwrap();
        let server = TcpServer::spawn_sharded("127.0.0.1:0", sharded).unwrap();
        assert!(server.engine().is_none());
        assert!(server.sharded().is_some());
        let mut client = TcpClient::connect(server.addr()).unwrap();

        client.put("s|ann|bob", "1").unwrap();
        client.put("p|bob|0000000100", "Hi").unwrap();
        // Timeline computed across shards, served over the wire.
        assert_eq!(client.count(KeyRange::prefix("t|ann|")).unwrap(), 1);
        let tl = client.scan(KeyRange::prefix("t|ann|")).unwrap();
        assert_eq!(tl.len(), 1);
        assert_eq!(
            client.get("t|ann|0000000100|bob").unwrap().as_deref(),
            Some(&b"Hi"[..])
        );
        client.remove("p|bob|0000000100").unwrap();
        assert_eq!(client.count(KeyRange::prefix("t|ann|")).unwrap(), 0);
        assert!(matches!(
            client.add_join("nonsense"),
            Err(ClientError::Remote(_))
        ));
    }

    #[test]
    fn tcp_sharded_multiple_clients() {
        use pequod_core::ShardedEngine;
        let part = Arc::new(ComponentHashPartition {
            component: 1,
            servers: 4,
        });
        let sharded = ShardedEngine::new(4, EngineConfig::default(), part, &["k|"]);
        let server = TcpServer::spawn_sharded("127.0.0.1:0", sharded).unwrap();
        let addr = server.addr();
        let writers: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = TcpClient::connect(addr).unwrap();
                    for j in 0..25 {
                        c.put(format!("k|{i}|{j:03}"), "v").unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        // Each writer's keys co-locate on one shard; count each prefix.
        let mut c = TcpClient::connect(addr).unwrap();
        let total: u64 = (0..4)
            .map(|i| c.count(KeyRange::prefix(format!("k|{i}|"))).unwrap())
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn tcp_multiple_clients() {
        let engine = Engine::new(EngineConfig::default());
        let server = TcpServer::spawn("127.0.0.1:0", engine).unwrap();
        let addr = server.addr();
        let writers: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = TcpClient::connect(addr).unwrap();
                    for j in 0..25 {
                        c.put(format!("k|{i}|{j:03}"), "v").unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let mut c = TcpClient::connect(addr).unwrap();
        assert_eq!(c.scan(KeyRange::prefix("k|")).unwrap().len(), 100);
    }
}
