//! The event-driven readiness core of the network frontend.
//!
//! [`Poller`] is a minimal hand-rolled `epoll(7)` wrapper (the tree's
//! only socket-facing FFI): register file descriptors under integer
//! tokens, wait for readiness. On top of it, [`Reactor`] runs the
//! serving loop of [`FrontendServer`](crate::frontend::FrontendServer):
//!
//! * one thread owns every connection — sockets, incremental frame
//!   decoders, bounded write queues — and never blocks on a socket;
//! * decoded frames are handed to a [`Dispatch`] backend (worker pool
//!   or per-shard submission queues, see [`crate::frontend`]) and the
//!   replies come back through an injection queue plus a wakeup pipe;
//! * per connection, frames are answered strictly in arrival order:
//!   at most one frame is dispatched at a time and further pipelined
//!   frames wait in a bounded pending queue;
//! * backpressure: when a connection's write queue or pending queue is
//!   full, the reactor drops its read interest — the kernel socket
//!   buffer fills, the client's sends stall, and memory stays bounded.
//!   Dispatch also pauses while the write queue is over its cap, so a
//!   slow reader pipelining huge scans cannot balloon the queue past
//!   one response beyond the cap;
//! * time is logical: a ticker thread injects ticks every `tick_ms`,
//!   and idle/write-stall limits are counted in ticks (no wall-clock
//!   reads on the serving path, per `cargo xtask audit`).
//!
//! Malformed or oversized frames get one error reply, then the
//! connection is flushed and closed: after a framing error the byte
//! stream has no further meaning.

use crate::codec::{encode_frame, FrameDecoder};
use crate::frontend::FrontendStats;
use crate::message::Message;
use bytes::Bytes;
use pequod_core::Response;
use pequod_telemetry::{Recorder, Timer};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

/// Raw `epoll(7)` bindings. The kernel ABI is three calls and one
/// struct; binding them directly keeps the readiness loop free of any
/// async runtime while staying a few dozen lines.
#[allow(unsafe_code)]
mod sys {
    use std::os::raw::c_int;

    /// Kernel `struct epoll_event`. Packed on x86-64 (the kernel uapi
    /// declares it `__attribute__((packed))` there and only there).
    #[derive(Clone, Copy)]
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0x80000;

    // SAFETY: libc prototypes with matching signatures from epoll(7)
    // and close(2); every caller passes descriptors it owns and
    // buffers it allocated (see each call site).
    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// One readiness event from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct PollEvent {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// The descriptor is readable (or a peer hangup is pending, which
    /// reads as EOF).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// An error or hangup condition is pending.
    pub error: bool,
}

/// A level-triggered `epoll(7)` instance: the readiness primitive
/// behind [`Reactor`], also reusable client-side (the `frontend` bench
/// and the stress suite drive thousands of pipelined client sockets
/// with one).
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates an epoll instance (close-on-exec).
    #[allow(unsafe_code)]
    pub fn new() -> std::io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; the returned fd is
        // owned by this Poller and closed in Drop.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    #[allow(unsafe_code)]
    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a live stack value of the kernel's layout
        // for the duration of the call; `self.epfd` is the epoll fd
        // this Poller owns; `fd` is a descriptor the caller owns.
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn mask(readable: bool, writable: bool) -> u32 {
        let mut m = 0;
        if readable {
            m |= sys::EPOLLIN;
        }
        if writable {
            m |= sys::EPOLLOUT;
        }
        m
    }

    /// Starts watching `fd` under `token` for the given interests.
    pub fn register(
        &self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> std::io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_ADD,
            fd,
            Self::mask(readable, writable),
            token,
        )
    }

    /// Changes the interests of an already registered `fd`.
    pub fn modify(
        &self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> std::io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_MOD,
            fd,
            Self::mask(readable, writable),
            token,
        )
    }

    /// Stops watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one registered descriptor is ready (or
    /// `timeout_ms` elapses; `-1` waits forever), filling `out`.
    /// Interrupted waits return an empty batch.
    #[allow(unsafe_code)]
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> std::io::Result<()> {
        out.clear();
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 512];
        // SAFETY: `buf` is a stack array of kernel-layout events that
        // outlives the call; at most `buf.len()` entries are written.
        let rc =
            unsafe { sys::epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in buf.iter().take(rc as usize) {
            // Copy out of the (possibly packed) struct before use.
            let bits = ev.events;
            let data = ev.data;
            out.push(PollEvent {
                token: data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                error: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        // SAFETY: closing the epoll fd this Poller created and
        // exclusively owns.
        unsafe {
            sys::close(self.epfd);
        }
    }
}

/// Either transport behind one connection: the reactor serves TCP and
/// unix-domain sockets through identical code.
pub(crate) enum Socket {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Socket {
    fn fd(&self) -> RawFd {
        match self {
            Socket::Tcp(s) => s.as_raw_fd(),
            Socket::Unix(s) => s.as_raw_fd(),
        }
    }

    fn read_some(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Socket::Tcp(s) => s.read(buf),
            Socket::Unix(s) => s.read(buf),
        }
    }

    fn write_some(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Socket::Tcp(s) => s.write(buf),
            Socket::Unix(s) => s.write(buf),
        }
    }
}

/// Work injected into the reactor from other threads (dispatch
/// completions, shard replies, ticks, shutdown), paired with a byte on
/// the wakeup pipe.
pub(crate) enum Injected {
    /// A dispatched frame completed: write these replies to `token`.
    Done(u64, Vec<Message>),
    /// One shard's reply to a submitted command (sharded backend).
    Shard(u64, Response),
    /// Logical time advanced one tick.
    Tick,
    /// Tear everything down and exit the loop.
    Stop,
}

/// The backend half the reactor dispatches decoded frames into.
/// Implementations must never block the calling (reactor) thread.
pub(crate) trait Dispatch: Send {
    /// Begins executing one frame for connection `token`. Returns
    /// `Some(replies)` if the frame completed synchronously; otherwise
    /// the completion arrives later as [`Injected::Done`] (directly or
    /// via [`Injected::Shard`] replies fed back to `on_shard_reply`).
    fn begin(&mut self, token: u64, msg: Message) -> Option<Vec<Message>>;

    /// Feeds one shard reply back in; returns a completed frame when
    /// this reply was the last one it waited on.
    fn on_shard_reply(&mut self, id: u64, resp: Response) -> Option<(u64, Vec<Message>)>;

    /// Drops any state held for a closed connection.
    fn forget(&mut self, token: u64);
}

/// Limits and timeouts, in reactor units (bytes, frames, ticks).
pub(crate) struct ReactorConfig {
    pub max_write_buffer: usize,
    pub max_pipeline: usize,
    pub idle_timeout_ticks: Option<u64>,
    pub stall_timeout_ticks: Option<u64>,
    /// Telemetry sink for dispatch latency, queue depths, and flight
    /// events (backpressure trips, timeout closes). Disabled = no-op.
    pub recorder: Recorder,
}

/// Reserved tokens (connection tokens never reach this range: their
/// generation word is masked to 31 bits).
const TOKEN_WAKE: u64 = u64::MAX;
const TOKEN_TCP: u64 = u64::MAX - 1;
const TOKEN_UNIX: u64 = u64::MAX - 2;

struct Conn {
    sock: Socket,
    token: u64,
    decoder: FrameDecoder,
    /// Frames decoded but not yet dispatched (≤ `max_pipeline`).
    pending: VecDeque<Message>,
    /// A frame is at the dispatcher; its replies have not arrived.
    inflight: bool,
    /// Started when the in-flight frame was dispatched; observed into
    /// the dispatch-latency histogram when its replies are queued.
    dispatch_timer: Timer,
    /// Encoded reply frames not yet written out.
    wq: VecDeque<Bytes>,
    /// Write offset into `wq[0]`.
    wq_pos: usize,
    wq_bytes: usize,
    /// Interests currently registered with the poller.
    reg_read: bool,
    reg_write: bool,
    /// The peer sent EOF; serve what was pipelined, then close.
    saw_eof: bool,
    /// Flush the write queue, then close (codec error path).
    close_after_flush: bool,
    /// Set once a framing error is queued: no further bytes parse.
    poisoned: bool,
    /// Ticks since the last observed activity.
    idle_ticks: u64,
    /// Ticks the write queue has been non-empty with no progress.
    stall_ticks: u64,
    /// Any read progress since the last tick.
    read_since_tick: bool,
    /// Any write progress since the last tick.
    wrote_since_tick: bool,
}

impl Conn {
    /// Whether the reactor wants more bytes from this peer right now
    /// (the backpressure gate).
    fn wants_read(&self, cfg: &ReactorConfig) -> bool {
        !self.saw_eof
            && !self.poisoned
            && self.pending.len() < cfg.max_pipeline
            && self.wq_bytes < cfg.max_write_buffer
    }

    fn wants_write(&self) -> bool {
        !self.wq.is_empty()
    }

    /// Nothing left to serve or flush.
    fn drained(&self) -> bool {
        self.wq.is_empty() && !self.inflight && self.pending.is_empty()
    }

    fn queue_frame(&mut self, frame: Bytes) {
        self.wq_bytes += frame.len();
        self.wq.push_back(frame);
    }
}

/// What a connection-level I/O pass concluded.
enum IoOutcome {
    /// Keep the connection.
    Keep,
    /// Unrecoverable socket error: close it.
    Close,
}

/// Drains complete frames out of the decoder into the pending queue; a
/// framing error poisons the connection (one error reply, flush,
/// close).
fn parse_frames(conn: &mut Conn, cfg: &ReactorConfig, stats: &FrontendStats) {
    while !conn.poisoned && conn.pending.len() < cfg.max_pipeline {
        match conn.decoder.next_frame() {
            Ok(Some(msg)) => {
                conn.pending.push_back(msg);
                stats.frames_in.fetch_add(1, Ordering::Relaxed);
            }
            Ok(None) => break,
            Err(e) => {
                conn.poisoned = true;
                conn.close_after_flush = true;
                conn.queue_frame(encode_frame(&Message::error(0, format!("codec: {e}"))));
                stats.codec_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
}

/// Reads until the socket would block, the peer closes, or backpressure
/// pauses the connection; decodes as it goes.
fn conn_read(
    conn: &mut Conn,
    cfg: &ReactorConfig,
    stats: &FrontendStats,
    rdbuf: &mut [u8],
) -> IoOutcome {
    loop {
        if !conn.wants_read(cfg) {
            return IoOutcome::Keep;
        }
        match conn.sock.read_some(rdbuf) {
            Ok(0) => {
                conn.saw_eof = true;
                return IoOutcome::Keep;
            }
            Ok(n) => {
                conn.decoder.extend(&rdbuf[..n]);
                conn.read_since_tick = true;
                stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                parse_frames(conn, cfg, stats);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return IoOutcome::Keep,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return IoOutcome::Close,
        }
    }
}

/// Flushes the write queue until empty or the socket would block.
fn conn_flush(conn: &mut Conn, stats: &FrontendStats) -> IoOutcome {
    loop {
        let Some(front) = conn.wq.front() else {
            return IoOutcome::Keep;
        };
        let pos = conn.wq_pos;
        let front_len = front.len();
        match conn.sock.write_some(&front[pos..]) {
            Ok(n) => {
                conn.wq_pos += n;
                conn.wq_bytes -= n;
                conn.wrote_since_tick = true;
                stats.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                if conn.wq_pos >= front_len {
                    conn.wq.pop_front();
                    conn.wq_pos = 0;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return IoOutcome::Keep,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return IoOutcome::Close,
        }
    }
}

/// Pops everything out of the injection queue (no lock is ever held
/// across socket work).
fn take_injected(q: &Mutex<VecDeque<Injected>>) -> Vec<Injected> {
    match q.lock() {
        Ok(mut g) => g.drain(..).collect(),
        Err(p) => p.into_inner().drain(..).collect(),
    }
}

/// The serving loop: owns the listeners and every connection; runs on
/// one dedicated thread until [`Injected::Stop`] arrives.
pub(crate) struct Reactor {
    poller: Poller,
    tcp: Option<TcpListener>,
    unix: Option<UnixListener>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u64,
    injected: Arc<Mutex<VecDeque<Injected>>>,
    wake_rx: UnixStream,
    dispatch: Box<dyn Dispatch>,
    cfg: ReactorConfig,
    stats: Arc<FrontendStats>,
    rdbuf: Box<[u8]>,
}

impl Reactor {
    pub(crate) fn new(
        tcp: TcpListener,
        unix: Option<UnixListener>,
        injected: Arc<Mutex<VecDeque<Injected>>>,
        wake_rx: UnixStream,
        dispatch: Box<dyn Dispatch>,
        cfg: ReactorConfig,
        stats: Arc<FrontendStats>,
    ) -> std::io::Result<Reactor> {
        let poller = Poller::new()?;
        tcp.set_nonblocking(true)?;
        poller.register(tcp.as_raw_fd(), TOKEN_TCP, true, false)?;
        if let Some(l) = &unix {
            l.set_nonblocking(true)?;
            poller.register(l.as_raw_fd(), TOKEN_UNIX, true, false)?;
        }
        wake_rx.set_nonblocking(true)?;
        poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, true, false)?;
        Ok(Reactor {
            poller,
            tcp: Some(tcp),
            unix,
            conns: Vec::new(),
            free: Vec::new(),
            next_gen: 1,
            injected,
            wake_rx,
            dispatch,
            cfg,
            stats,
            rdbuf: vec![0u8; 64 * 1024].into_boxed_slice(),
        })
    }

    /// Runs until stopped. A loop-level poller failure also exits:
    /// nothing can be served without readiness notifications.
    pub(crate) fn run(mut self) {
        let mut events: Vec<PollEvent> = Vec::with_capacity(512);
        'serve: loop {
            if self.poller.wait(&mut events, -1).is_err() {
                break;
            }
            for ev in events.iter().copied() {
                match ev.token {
                    TOKEN_WAKE => self.drain_wake(),
                    TOKEN_TCP => self.accept_tcp(),
                    TOKEN_UNIX => self.accept_unix(),
                    token => self.on_conn_event(token, ev),
                }
            }
            for inj in take_injected(&self.injected) {
                match inj {
                    Injected::Done(token, replies) => self.finish_frame(token, replies),
                    Injected::Shard(id, resp) => {
                        if let Some((token, replies)) = self.dispatch.on_shard_reply(id, resp) {
                            self.finish_frame(token, replies);
                        }
                    }
                    Injected::Tick => self.on_tick(),
                    Injected::Stop => break 'serve,
                }
            }
        }
        self.teardown();
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn accept_tcp(&mut self) {
        loop {
            let accepted = match &self.tcp {
                Some(l) => l.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    self.add_conn(Socket::Tcp(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient (EMFILE, aborted handshake…): stop for this
                // readiness round rather than spinning; the listener
                // stays registered and reports readiness again.
                Err(_) => break,
            }
        }
    }

    fn accept_unix(&mut self) {
        loop {
            let accepted = match &self.unix {
                Some(l) => l.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => self.add_conn(Socket::Unix(stream)),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn add_conn(&mut self, sock: Socket) {
        let nonblocking = match &sock {
            Socket::Tcp(s) => s.set_nonblocking(true),
            Socket::Unix(s) => s.set_nonblocking(true),
        };
        if nonblocking.is_err() {
            return;
        }
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        // 31-bit generation word keeps conn tokens clear of the
        // reserved TOKEN_* range and disambiguates recycled slots.
        let gen = self.next_gen & 0x7fff_ffff;
        self.next_gen = self.next_gen.wrapping_add(1);
        let token = (gen << 32) | idx as u64;
        if self.poller.register(sock.fd(), token, true, false).is_err() {
            self.free.push(idx);
            return;
        }
        self.conns[idx] = Some(Conn {
            sock,
            token,
            decoder: FrameDecoder::new(),
            pending: VecDeque::new(),
            inflight: false,
            dispatch_timer: Timer::disabled(),
            wq: VecDeque::new(),
            wq_pos: 0,
            wq_bytes: 0,
            reg_read: true,
            reg_write: false,
            saw_eof: false,
            close_after_flush: false,
            poisoned: false,
            idle_ticks: 0,
            stall_ticks: 0,
            read_since_tick: false,
            wrote_since_tick: false,
        });
        self.stats.accepted.fetch_add(1, Ordering::Relaxed);
        self.stats.active.fetch_add(1, Ordering::Relaxed);
    }

    fn resolve(&self, token: u64) -> Option<usize> {
        let idx = (token & 0xffff_ffff) as usize;
        match self.conns.get(idx) {
            Some(Some(c)) if c.token == token => Some(idx),
            _ => None,
        }
    }

    fn on_conn_event(&mut self, token: u64, ev: PollEvent) {
        let Some(idx) = self.resolve(token) else {
            return; // stale event for a closed/recycled slot
        };
        if ev.readable {
            let outcome = {
                let Reactor {
                    conns,
                    cfg,
                    stats,
                    rdbuf,
                    ..
                } = self;
                match conns[idx].as_mut() {
                    Some(conn) => conn_read(conn, cfg, stats, rdbuf),
                    None => return,
                }
            };
            if matches!(outcome, IoOutcome::Close) {
                self.close_conn(idx);
                return;
            }
        }
        if ev.writable {
            let outcome = {
                let Reactor { conns, stats, .. } = self;
                match conns[idx].as_mut() {
                    Some(conn) => conn_flush(conn, stats),
                    None => return,
                }
            };
            if matches!(outcome, IoOutcome::Close) {
                self.close_conn(idx);
                return;
            }
        }
        if ev.error && !ev.readable && !ev.writable {
            // Pure error/hangup with nothing to transfer: drop it.
            self.close_conn(idx);
            return;
        }
        self.pump(idx);
    }

    /// Appends reply frames for a completed dispatch and clears the
    /// in-flight mark.
    fn queue_replies(&mut self, idx: usize, replies: Vec<Message>) {
        if let Some(conn) = self.conns[idx].as_mut() {
            conn.inflight = false;
            let timer = std::mem::replace(&mut conn.dispatch_timer, Timer::disabled());
            self.cfg.recorder.observe_dispatch(&timer);
            for reply in &replies {
                conn.queue_frame(encode_frame(reply));
            }
        }
        self.stats
            .replies_out
            .fetch_add(replies.len() as u64, Ordering::Relaxed);
    }

    /// A dispatched frame came back from another thread.
    fn finish_frame(&mut self, token: u64, replies: Vec<Message>) {
        let Some(idx) = self.resolve(token) else {
            return; // connection closed while the frame executed
        };
        self.queue_replies(idx, replies);
        self.pump(idx);
    }

    /// The per-connection scheduler: refill the pending queue from
    /// buffered bytes, dispatch the next frame, flush, sync poller
    /// interests with the backpressure gate, close drained connections.
    fn pump(&mut self, idx: usize) {
        // Each pass: refill the pending queue from buffered bytes,
        // dispatch until the pipeline gate closes, flush. A flush can
        // empty the write queue after the gate already closed, with
        // nothing else left to re-trigger this connection (the peer may
        // have pipelined everything up front) — so passes repeat until
        // one makes no more progress.
        loop {
            // Bytes may be sitting in the decoder from before the
            // pipeline cap paused parsing; a completed frame makes room
            // again.
            {
                let Reactor {
                    conns, cfg, stats, ..
                } = self;
                match conns[idx].as_mut() {
                    Some(conn) => parse_frames(conn, cfg, stats),
                    None => return,
                }
            }
            // Dispatch pipelined frames one at a time (replies stay in
            // arrival order), pausing while the write queue is over cap
            // so a slow reader cannot balloon it past one response
            // beyond the cap.
            loop {
                let (token, msg) = {
                    let Reactor { conns, cfg, .. } = self;
                    let Some(conn) = conns[idx].as_mut() else {
                        return;
                    };
                    if conn.inflight || conn.wq_bytes >= cfg.max_write_buffer {
                        break;
                    }
                    match conn.pending.pop_front() {
                        Some(m) => {
                            conn.inflight = true;
                            conn.dispatch_timer = cfg.recorder.timer();
                            cfg.recorder.observe_queue_depth(conn.pending.len() as u64);
                            (conn.token, m)
                        }
                        None => break,
                    }
                };
                match self.dispatch.begin(token, msg) {
                    Some(replies) => self.queue_replies(idx, replies),
                    None => break, // completion arrives by injection
                }
            }
            // Opportunistic flush so small replies go out without
            // waiting for a writability event.
            let outcome = {
                let Reactor { conns, stats, .. } = self;
                match conns[idx].as_mut() {
                    Some(conn) => conn_flush(conn, stats),
                    None => return,
                }
            };
            if matches!(outcome, IoOutcome::Close) {
                self.close_conn(idx);
                return;
            }
            // Another pass only if the flush reopened the dispatch gate
            // while frames are still waiting; each such pass dispatches
            // at least one frame, so this terminates.
            let again = {
                let Reactor { conns, cfg, .. } = self;
                let Some(conn) = conns[idx].as_mut() else {
                    return;
                };
                !conn.inflight && conn.wq_bytes < cfg.max_write_buffer && !conn.pending.is_empty()
            };
            if !again {
                break;
            }
        }
        enum Action {
            None,
            Close,
            Modify(RawFd, u64, bool, bool),
        }
        let action = {
            let Reactor {
                conns, cfg, stats, ..
            } = self;
            let Some(conn) = conns[idx].as_mut() else {
                return;
            };
            if (conn.saw_eof || conn.close_after_flush) && conn.drained() {
                Action::Close
            } else {
                let want_r = conn.wants_read(cfg);
                let want_w = conn.wants_write();
                if want_r != conn.reg_read || want_w != conn.reg_write {
                    if conn.reg_read && !want_r && !conn.saw_eof && !conn.poisoned {
                        stats.backpressure_pauses.fetch_add(1, Ordering::Relaxed);
                        cfg.recorder.flight("backpressure", || {
                            format!(
                                "conn {} reads paused (wq {} bytes, {} pending)",
                                conn.token,
                                conn.wq_bytes,
                                conn.pending.len()
                            )
                        });
                    }
                    conn.reg_read = want_r;
                    conn.reg_write = want_w;
                    Action::Modify(conn.sock.fd(), conn.token, want_r, want_w)
                } else {
                    Action::None
                }
            }
        };
        match action {
            Action::None => {}
            Action::Close => self.close_conn(idx),
            Action::Modify(fd, token, r, w) => {
                if self.poller.modify(fd, token, r, w).is_err() {
                    self.close_conn(idx);
                }
            }
        }
    }

    /// Advances logical time: idle and write-stalled connections past
    /// their limits are closed.
    fn on_tick(&mut self) {
        enum Verdict {
            Keep,
            Idle,
            Stalled,
        }
        for idx in 0..self.conns.len() {
            let verdict = {
                let Reactor { conns, cfg, .. } = self;
                let Some(conn) = conns[idx].as_mut() else {
                    continue;
                };
                if conn.read_since_tick || conn.wrote_since_tick {
                    conn.idle_ticks = 0;
                } else {
                    conn.idle_ticks += 1;
                }
                if conn.wants_write() && !conn.wrote_since_tick {
                    conn.stall_ticks += 1;
                } else {
                    conn.stall_ticks = 0;
                }
                conn.read_since_tick = false;
                conn.wrote_since_tick = false;
                let stalled = matches!(cfg.stall_timeout_ticks, Some(t) if conn.stall_ticks >= t);
                // Only a truly quiet connection is "idle": one waiting
                // on the engine or with queued work is not.
                let idle = matches!(cfg.idle_timeout_ticks, Some(t) if conn.idle_ticks >= t)
                    && conn.drained();
                if stalled {
                    Verdict::Stalled
                } else if idle {
                    Verdict::Idle
                } else {
                    Verdict::Keep
                }
            };
            match verdict {
                Verdict::Keep => {}
                Verdict::Stalled => {
                    self.stats.stall_closed.fetch_add(1, Ordering::Relaxed);
                    self.cfg
                        .recorder
                        .flight("stall_close", || format!("conn slot {idx} write-stalled"));
                    self.close_conn(idx);
                }
                Verdict::Idle => {
                    self.stats.idle_closed.fetch_add(1, Ordering::Relaxed);
                    self.cfg
                        .recorder
                        .flight("idle_close", || format!("conn slot {idx} idle"));
                    self.close_conn(idx);
                }
            }
        }
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            let _ = self.poller.deregister(conn.sock.fd());
            self.dispatch.forget(conn.token);
            self.stats.active.fetch_sub(1, Ordering::Relaxed);
            self.free.push(idx);
            // The socket closes on drop.
        }
    }

    /// Deterministic stop: refuse new connections, make one best-effort
    /// flush of queued replies, close every connection. Frames still at
    /// the dispatcher produce no reply (their connections are gone) —
    /// the drain-or-refuse contract shared with the blocking server.
    fn teardown(&mut self) {
        if let Some(l) = self.tcp.take() {
            let _ = self.poller.deregister(l.as_raw_fd());
        }
        if let Some(l) = self.unix.take() {
            let _ = self.poller.deregister(l.as_raw_fd());
        }
        for idx in 0..self.conns.len() {
            {
                let Reactor { conns, stats, .. } = self;
                match conns[idx].as_mut() {
                    Some(conn) => conn_flush(conn, stats),
                    None => continue,
                };
            }
            self.close_conn(idx);
        }
    }
}
