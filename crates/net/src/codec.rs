//! Binary wire codec with length-prefixed framing.
//!
//! Layout: every frame is `u32-le length` + body; the body is a tag byte
//! followed by fields. Strings and keys are `u32-le length` + bytes;
//! optional values use a presence byte. The format is hand-rolled on
//! `bytes` in the style of the Tokio framing tutorial — no external
//! serialization crates.

use crate::message::{range_end_key, range_from_parts, Message};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pequod_store::{Key, KeyRange, Value};
use std::fmt;

/// Maximum accepted frame body, to bound allocation on malformed input.
pub const MAX_FRAME: usize = 64 << 20;

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The tag byte named no known message.
    BadTag(u8),
    /// The body ended before a field was complete.
    Truncated,
    /// A declared length exceeded [`MAX_FRAME`].
    Oversized(usize),
    /// String field held invalid UTF-8.
    BadUtf8,
    /// `Batch` frames nested deeper than the decoder allows.
    TooDeep,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadTag(t) => write!(f, "unknown message tag {t:#x}"),
            CodecError::Truncated => write!(f, "truncated frame"),
            CodecError::Oversized(n) => write!(f, "frame of {n} bytes exceeds limit"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            CodecError::TooDeep => write!(f, "batch frames nested too deeply"),
        }
    }
}

impl std::error::Error for CodecError {}

const TAG_GET: u8 = 1;
const TAG_PUT: u8 = 2;
const TAG_REMOVE: u8 = 3;
const TAG_SCAN: u8 = 4;
const TAG_ADD_JOIN: u8 = 5;
const TAG_REPLY: u8 = 6;
const TAG_SUBSCRIBE: u8 = 7;
const TAG_SUBSCRIBE_REPLY: u8 = 8;
const TAG_NOTIFY: u8 = 9;
const TAG_UNSUBSCRIBE: u8 = 10;
const TAG_COUNT: u8 = 11;
const TAG_BATCH: u8 = 12;
const TAG_HELLO: u8 = 13;
const TAG_REPLICA_SUBSCRIBE: u8 = 14;
const TAG_NOTIFY_SEQ: u8 = 15;
const TAG_NOTIFY_ACK: u8 = 16;
const TAG_HEARTBEAT: u8 = 17;
const TAG_SNAPSHOT_CHUNK: u8 = 18;
const TAG_EPOCH_CHANGE: u8 = 19;
const TAG_NOT_PRIMARY: u8 = 20;
const TAG_MIGRATE: u8 = 21;
const TAG_NODE_STATUS: u8 = 22;
const TAG_METRICS: u8 = 23;

/// Maximum nesting of `Batch` frames, to bound decoder recursion on
/// malicious input. A batch of batches is already pathological; real
/// clients send one level.
const MAX_BATCH_DEPTH: u8 = 4;

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn put_opt_bytes(buf: &mut BytesMut, b: Option<&[u8]>) {
    match b {
        Some(b) => {
            buf.put_u8(1);
            put_bytes(buf, b);
        }
        None => buf.put_u8(0),
    }
}

fn put_range(buf: &mut BytesMut, range: &KeyRange) {
    put_bytes(buf, range.first.as_bytes());
    put_opt_bytes(buf, range_end_key(range).map(|k| k.as_bytes()));
}

fn put_pairs(buf: &mut BytesMut, pairs: &[(Key, Value)]) {
    buf.put_u32_le(pairs.len() as u32);
    for (k, v) in pairs {
        put_bytes(buf, k.as_bytes());
        put_bytes(buf, v);
    }
}

/// Encodes a message body (without the frame length prefix).
pub fn encode(msg: &Message, buf: &mut BytesMut) {
    match msg {
        Message::Get { id, key } => {
            buf.put_u8(TAG_GET);
            buf.put_u64_le(*id);
            put_bytes(buf, key.as_bytes());
        }
        Message::Put { id, key, value } => {
            buf.put_u8(TAG_PUT);
            buf.put_u64_le(*id);
            put_bytes(buf, key.as_bytes());
            put_bytes(buf, value);
        }
        Message::Remove { id, key } => {
            buf.put_u8(TAG_REMOVE);
            buf.put_u64_le(*id);
            put_bytes(buf, key.as_bytes());
        }
        Message::Scan { id, range } => {
            buf.put_u8(TAG_SCAN);
            buf.put_u64_le(*id);
            put_range(buf, range);
        }
        Message::AddJoin { id, text } => {
            buf.put_u8(TAG_ADD_JOIN);
            buf.put_u64_le(*id);
            put_bytes(buf, text.as_bytes());
        }
        Message::Reply { id, pairs, error } => {
            buf.put_u8(TAG_REPLY);
            buf.put_u64_le(*id);
            put_pairs(buf, pairs);
            put_opt_bytes(buf, error.as_ref().map(|s| s.as_bytes()));
        }
        Message::Subscribe { id, range } => {
            buf.put_u8(TAG_SUBSCRIBE);
            buf.put_u64_le(*id);
            put_range(buf, range);
        }
        Message::SubscribeReply { id, range, pairs } => {
            buf.put_u8(TAG_SUBSCRIBE_REPLY);
            buf.put_u64_le(*id);
            put_range(buf, range);
            put_pairs(buf, pairs);
        }
        Message::Notify { key, value } => {
            buf.put_u8(TAG_NOTIFY);
            put_bytes(buf, key.as_bytes());
            put_opt_bytes(buf, value.as_deref());
        }
        Message::Unsubscribe { range } => {
            buf.put_u8(TAG_UNSUBSCRIBE);
            put_range(buf, range);
        }
        Message::Count { id, range } => {
            buf.put_u8(TAG_COUNT);
            buf.put_u64_le(*id);
            put_range(buf, range);
        }
        Message::Batch { msgs } => {
            buf.put_u8(TAG_BATCH);
            buf.put_u32_le(msgs.len() as u32);
            for m in msgs {
                let mut body = BytesMut::new();
                encode(m, &mut body);
                put_bytes(buf, &body);
            }
        }
        Message::Hello { node } => {
            buf.put_u8(TAG_HELLO);
            buf.put_u32_le(*node);
        }
        Message::ReplicaSubscribe {
            slot,
            epoch,
            log_epoch,
            from_seq,
        } => {
            buf.put_u8(TAG_REPLICA_SUBSCRIBE);
            buf.put_u32_le(*slot);
            buf.put_u64_le(*epoch);
            buf.put_u64_le(*log_epoch);
            buf.put_u64_le(*from_seq);
        }
        Message::NotifySeq {
            slot,
            epoch,
            seq,
            key,
            value,
        } => {
            buf.put_u8(TAG_NOTIFY_SEQ);
            buf.put_u32_le(*slot);
            buf.put_u64_le(*epoch);
            buf.put_u64_le(*seq);
            put_bytes(buf, key.as_bytes());
            put_opt_bytes(buf, value.as_deref());
        }
        Message::NotifyAck { slot, epoch, seq } => {
            buf.put_u8(TAG_NOTIFY_ACK);
            buf.put_u32_le(*slot);
            buf.put_u64_le(*epoch);
            buf.put_u64_le(*seq);
        }
        Message::Heartbeat { slot, epoch, seq } => {
            buf.put_u8(TAG_HEARTBEAT);
            buf.put_u32_le(*slot);
            buf.put_u64_le(*epoch);
            buf.put_u64_le(*seq);
        }
        Message::SnapshotChunk {
            slot,
            epoch,
            upto_seq,
            done,
            pairs,
        } => {
            buf.put_u8(TAG_SNAPSHOT_CHUNK);
            buf.put_u32_le(*slot);
            buf.put_u64_le(*epoch);
            buf.put_u64_le(*upto_seq);
            buf.put_u8(u8::from(*done));
            put_pairs(buf, pairs);
        }
        Message::EpochChange {
            slot,
            epoch,
            replicas,
            upto_seq,
            dropped,
        } => {
            buf.put_u8(TAG_EPOCH_CHANGE);
            buf.put_u32_le(*slot);
            buf.put_u64_le(*epoch);
            buf.put_u32_le(replicas.len() as u32);
            for r in replicas {
                buf.put_u32_le(*r);
            }
            buf.put_u64_le(*upto_seq);
            match dropped {
                Some(n) => {
                    buf.put_u8(1);
                    buf.put_u32_le(*n);
                }
                None => buf.put_u8(0),
            }
        }
        Message::NotPrimary {
            id,
            slot,
            epoch,
            node,
        } => {
            buf.put_u8(TAG_NOT_PRIMARY);
            buf.put_u64_le(*id);
            buf.put_u32_le(*slot);
            buf.put_u64_le(*epoch);
            buf.put_u32_le(*node);
        }
        Message::Migrate { id, slot, from, to } => {
            buf.put_u8(TAG_MIGRATE);
            buf.put_u64_le(*id);
            buf.put_u32_le(*slot);
            buf.put_u32_le(*from);
            buf.put_u32_le(*to);
        }
        Message::NodeStatus { id } => {
            buf.put_u8(TAG_NODE_STATUS);
            buf.put_u64_le(*id);
        }
        Message::Metrics { id, flight } => {
            buf.put_u8(TAG_METRICS);
            buf.put_u64_le(*id);
            buf.put_u8(u8::from(*flight));
        }
    }
}

/// Encodes a message as one length-prefixed frame.
pub fn encode_frame(msg: &Message) -> Bytes {
    let mut body = BytesMut::new();
    encode(msg, &mut body);
    let mut frame = BytesMut::with_capacity(4 + body.len());
    frame.put_u32_le(body.len() as u32);
    frame.put_slice(&body);
    frame.freeze()
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, CodecError> {
        if self.buf.remaining() < 1 {
            return Err(CodecError::Truncated);
        }
        Ok(self.buf.get_u8())
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        if self.buf.remaining() < 4 {
            return Err(CodecError::Truncated);
        }
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        if self.buf.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        Ok(self.buf.get_u64_le())
    }

    fn bytes(&mut self) -> Result<Bytes, CodecError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME {
            return Err(CodecError::Oversized(n));
        }
        if self.buf.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = Bytes::copy_from_slice(&self.buf[..n]);
        self.buf.advance(n);
        Ok(out)
    }

    fn key(&mut self) -> Result<Key, CodecError> {
        Ok(Key::from(self.bytes()?))
    }

    fn opt_bytes(&mut self) -> Result<Option<Bytes>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            _ => Ok(Some(self.bytes()?)),
        }
    }

    fn range(&mut self) -> Result<KeyRange, CodecError> {
        let first = self.key()?;
        let end = self.opt_bytes()?.map(Key::from);
        Ok(range_from_parts(first, end))
    }

    fn pairs(&mut self) -> Result<Vec<(Key, Value)>, CodecError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME / 8 {
            return Err(CodecError::Oversized(n));
        }
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let k = self.key()?;
            let v = self.bytes()?;
            out.push((k, v));
        }
        Ok(out)
    }

    fn string(&mut self) -> Result<String, CodecError> {
        String::from_utf8(self.bytes()?.to_vec()).map_err(|_| CodecError::BadUtf8)
    }
}

/// Decodes one message body (without the frame length prefix).
pub fn decode(body: &[u8]) -> Result<Message, CodecError> {
    decode_at(body, 0)
}

fn decode_at(body: &[u8], depth: u8) -> Result<Message, CodecError> {
    let mut r = Reader { buf: body };
    let tag = r.u8()?;
    let msg = match tag {
        TAG_GET => Message::Get {
            id: r.u64()?,
            key: r.key()?,
        },
        TAG_PUT => Message::Put {
            id: r.u64()?,
            key: r.key()?,
            value: r.bytes()?,
        },
        TAG_REMOVE => Message::Remove {
            id: r.u64()?,
            key: r.key()?,
        },
        TAG_SCAN => Message::Scan {
            id: r.u64()?,
            range: r.range()?,
        },
        TAG_ADD_JOIN => Message::AddJoin {
            id: r.u64()?,
            text: r.string()?,
        },
        TAG_REPLY => Message::Reply {
            id: r.u64()?,
            pairs: r.pairs()?,
            error: match r.opt_bytes()? {
                Some(b) => Some(String::from_utf8(b.to_vec()).map_err(|_| CodecError::BadUtf8)?),
                None => None,
            },
        },
        TAG_SUBSCRIBE => Message::Subscribe {
            id: r.u64()?,
            range: r.range()?,
        },
        TAG_SUBSCRIBE_REPLY => Message::SubscribeReply {
            id: r.u64()?,
            range: r.range()?,
            pairs: r.pairs()?,
        },
        TAG_NOTIFY => Message::Notify {
            key: r.key()?,
            value: r.opt_bytes()?,
        },
        TAG_UNSUBSCRIBE => Message::Unsubscribe { range: r.range()? },
        TAG_COUNT => Message::Count {
            id: r.u64()?,
            range: r.range()?,
        },
        TAG_BATCH => {
            if depth >= MAX_BATCH_DEPTH {
                return Err(CodecError::TooDeep);
            }
            let n = r.u32()? as usize;
            if n > MAX_FRAME / 8 {
                return Err(CodecError::Oversized(n));
            }
            let mut msgs = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let body = r.bytes()?;
                msgs.push(decode_at(&body, depth + 1)?);
            }
            Message::Batch { msgs }
        }
        TAG_HELLO => Message::Hello { node: r.u32()? },
        TAG_REPLICA_SUBSCRIBE => Message::ReplicaSubscribe {
            slot: r.u32()?,
            epoch: r.u64()?,
            log_epoch: r.u64()?,
            from_seq: r.u64()?,
        },
        TAG_NOTIFY_SEQ => Message::NotifySeq {
            slot: r.u32()?,
            epoch: r.u64()?,
            seq: r.u64()?,
            key: r.key()?,
            value: r.opt_bytes()?,
        },
        TAG_NOTIFY_ACK => Message::NotifyAck {
            slot: r.u32()?,
            epoch: r.u64()?,
            seq: r.u64()?,
        },
        TAG_HEARTBEAT => Message::Heartbeat {
            slot: r.u32()?,
            epoch: r.u64()?,
            seq: r.u64()?,
        },
        TAG_SNAPSHOT_CHUNK => Message::SnapshotChunk {
            slot: r.u32()?,
            epoch: r.u64()?,
            upto_seq: r.u64()?,
            done: r.u8()? != 0,
            pairs: r.pairs()?,
        },
        TAG_EPOCH_CHANGE => {
            let slot = r.u32()?;
            let epoch = r.u64()?;
            let n = r.u32()? as usize;
            if n > MAX_FRAME / 4 {
                return Err(CodecError::Oversized(n));
            }
            let mut replicas = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                replicas.push(r.u32()?);
            }
            let upto_seq = r.u64()?;
            let dropped = match r.u8()? {
                0 => None,
                _ => Some(r.u32()?),
            };
            Message::EpochChange {
                slot,
                epoch,
                replicas,
                upto_seq,
                dropped,
            }
        }
        TAG_NOT_PRIMARY => Message::NotPrimary {
            id: r.u64()?,
            slot: r.u32()?,
            epoch: r.u64()?,
            node: r.u32()?,
        },
        TAG_MIGRATE => Message::Migrate {
            id: r.u64()?,
            slot: r.u32()?,
            from: r.u32()?,
            to: r.u32()?,
        },
        TAG_NODE_STATUS => Message::NodeStatus { id: r.u64()? },
        TAG_METRICS => Message::Metrics {
            id: r.u64()?,
            flight: r.u8()? != 0,
        },
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(msg)
}

/// Tries to split one complete frame off the front of `buf`, returning
/// its decoded message. Returns `Ok(None)` if more bytes are needed.
pub fn decode_frame(buf: &mut BytesMut) -> Result<Option<Message>, CodecError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(CodecError::Oversized(len));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    let body = buf.split_to(len);
    decode(&body).map(Some)
}

/// An incremental frame decoder: feed it bytes as they arrive off a
/// socket (in chunks of any size, down to one byte at a time) and pull
/// complete messages out. This is the decoder behind the event-driven
/// reactor's read path; it is exactly as strict as the one-shot
/// [`decode_frame`] it wraps, a property the `codec_roundtrip` suite
/// checks across arbitrary split points.
#[derive(Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// An empty decoder. Allocates nothing until bytes arrive, so an
    /// idle connection costs no buffer memory.
    pub fn new() -> FrameDecoder {
        FrameDecoder {
            buf: BytesMut::new(),
        }
    }

    /// Appends freshly read bytes to the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Splits the next complete frame off the stream, if one has fully
    /// arrived. An `Err` poisons nothing — the caller decides whether
    /// to close — but the byte stream is no longer meaningful after a
    /// framing error, so servers answer with one error frame and close.
    pub fn next_frame(&mut self) -> Result<Option<Message>, CodecError> {
        decode_frame(&mut self.buf)
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pequod_store::UpperBound;

    fn roundtrip(msg: Message) {
        let mut buf = BytesMut::new();
        encode(&msg, &mut buf);
        let got = decode(&buf).unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Message::Get {
            id: 7,
            key: Key::from("p|bob|100"),
        });
        roundtrip(Message::Put {
            id: 8,
            key: Key::from("p|bob|100"),
            value: Bytes::from_static(b"Hi"),
        });
        roundtrip(Message::Remove {
            id: 9,
            key: Key::from("p|bob|100"),
        });
        roundtrip(Message::Scan {
            id: 10,
            range: KeyRange::new("t|ann|100", "t|ann|200"),
        });
        roundtrip(Message::Scan {
            id: 11,
            range: KeyRange::with_bound("t|ann|", UpperBound::Unbounded),
        });
        roundtrip(Message::AddJoin {
            id: 12,
            text: "t|<u> = copy p|<u>".to_string(),
        });
        roundtrip(Message::reply(
            13,
            vec![
                (Key::from("a"), Bytes::from_static(b"1")),
                (Key::from("b"), Bytes::new()),
            ],
        ));
        roundtrip(Message::error(14, "nope"));
        roundtrip(Message::Subscribe {
            id: 15,
            range: KeyRange::prefix("p|bob|"),
        });
        roundtrip(Message::SubscribeReply {
            id: 16,
            range: KeyRange::prefix("p|bob|"),
            pairs: vec![(Key::from("p|bob|1"), Bytes::from_static(b"x"))],
        });
        roundtrip(Message::Notify {
            key: Key::from("p|bob|1"),
            value: Some(Bytes::from_static(b"x")),
        });
        roundtrip(Message::Notify {
            key: Key::from("p|bob|1"),
            value: None,
        });
        roundtrip(Message::Unsubscribe {
            range: KeyRange::prefix("p|"),
        });
        roundtrip(Message::Count {
            id: 17,
            range: KeyRange::prefix("t|ann|"),
        });
        roundtrip(Message::Batch { msgs: vec![] });
        roundtrip(Message::Batch {
            msgs: vec![
                Message::Get {
                    id: 1,
                    key: Key::from("a"),
                },
                Message::Count {
                    id: 2,
                    range: KeyRange::with_bound("t|", UpperBound::Unbounded),
                },
                Message::Put {
                    id: 3,
                    key: Key::from("k"),
                    value: Bytes::from_static(b"v"),
                },
            ],
        });
    }

    #[test]
    fn replication_messages_roundtrip() {
        roundtrip(Message::Hello { node: 3 });
        roundtrip(Message::ReplicaSubscribe {
            slot: 5,
            epoch: 2,
            log_epoch: 1,
            from_seq: 99,
        });
        roundtrip(Message::NotifySeq {
            slot: 5,
            epoch: 2,
            seq: 100,
            key: Key::from("p|bob|100"),
            value: Some(Bytes::from_static(b"Hi")),
        });
        roundtrip(Message::NotifySeq {
            slot: 0,
            epoch: 0,
            seq: 1,
            key: Key::from("p|bob|100"),
            value: None,
        });
        roundtrip(Message::NotifyAck {
            slot: 5,
            epoch: 2,
            seq: 100,
        });
        roundtrip(Message::Heartbeat {
            slot: 7,
            epoch: 3,
            seq: 41,
        });
        roundtrip(Message::SnapshotChunk {
            slot: 1,
            epoch: 4,
            upto_seq: 250,
            done: true,
            pairs: vec![(Key::from("p|bob|1"), Bytes::from_static(b"x"))],
        });
        roundtrip(Message::SnapshotChunk {
            slot: 1,
            epoch: 4,
            upto_seq: 250,
            done: false,
            pairs: vec![],
        });
        roundtrip(Message::EpochChange {
            slot: 2,
            epoch: 9,
            replicas: vec![1, 0, 2],
            upto_seq: 77,
            dropped: Some(2),
        });
        roundtrip(Message::EpochChange {
            slot: 2,
            epoch: 9,
            replicas: vec![],
            upto_seq: 0,
            dropped: None,
        });
        roundtrip(Message::NotPrimary {
            id: 18,
            slot: 3,
            epoch: 6,
            node: 1,
        });
        roundtrip(Message::Migrate {
            id: 19,
            slot: 3,
            from: 0,
            to: 2,
        });
        roundtrip(Message::NodeStatus { id: 20 });
        roundtrip(Message::Metrics {
            id: 21,
            flight: true,
        });
        roundtrip(Message::Metrics {
            id: 22,
            flight: false,
        });
    }

    #[test]
    fn batch_nesting_is_bounded() {
        // Depth 4 (batch-in-batch-in-batch-in-batch) still decodes...
        let mut msg = Message::Batch { msgs: vec![] };
        for _ in 0..3 {
            msg = Message::Batch { msgs: vec![msg] };
        }
        roundtrip(msg.clone());
        // ...but one level deeper is rejected instead of recursing.
        let deeper = Message::Batch { msgs: vec![msg] };
        let mut buf = BytesMut::new();
        encode(&deeper, &mut buf);
        assert_eq!(decode(&buf), Err(CodecError::TooDeep));
    }

    #[test]
    fn count_reply_round_trips_through_pairs() {
        let msg = Message::count_reply(5, 42);
        roundtrip(msg.clone());
        let Message::Reply { pairs, .. } = msg else {
            panic!("count_reply is a Reply");
        };
        assert_eq!(Message::parse_count(&pairs), Some(42));
        assert_eq!(Message::parse_count(&[]), None);
    }

    #[test]
    fn framing_handles_partial_input() {
        let msg = Message::Put {
            id: 1,
            key: Key::from("k"),
            value: Bytes::from_static(b"v"),
        };
        let frame = encode_frame(&msg);
        // Feed the frame one byte at a time.
        let mut buf = BytesMut::new();
        for (i, b) in frame.iter().enumerate() {
            buf.put_u8(*b);
            let r = decode_frame(&mut buf).unwrap();
            if i + 1 < frame.len() {
                assert!(r.is_none(), "decoded early at byte {i}");
            } else {
                assert_eq!(r, Some(msg.clone()));
            }
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn framing_handles_back_to_back_frames() {
        let m1 = Message::Get {
            id: 1,
            key: Key::from("a"),
        };
        let m2 = Message::Remove {
            id: 2,
            key: Key::from("b"),
        };
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&encode_frame(&m1));
        buf.extend_from_slice(&encode_frame(&m2));
        assert_eq!(decode_frame(&mut buf).unwrap(), Some(m1));
        assert_eq!(decode_frame(&mut buf).unwrap(), Some(m2));
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert_eq!(decode(&[]), Err(CodecError::Truncated));
        assert_eq!(decode(&[0xfe]), Err(CodecError::BadTag(0xfe)));
        // Truncated key length.
        assert_eq!(
            decode(&[TAG_GET, 1, 0, 0, 0, 0, 0, 0, 0, 9]),
            Err(CodecError::Truncated)
        );
        // Oversized declared length.
        let mut body = vec![TAG_GET];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(decode(&body), Err(CodecError::Oversized(_))));
        // Oversized frame header.
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        assert!(matches!(
            decode_frame(&mut buf),
            Err(CodecError::Oversized(_))
        ));
    }

    #[test]
    fn binary_safe_keys_and_values() {
        roundtrip(Message::Put {
            id: 1,
            key: Key::from(vec![0u8, 0xff, b'|', 0x7f]),
            value: Bytes::from(vec![0u8; 300]),
        });
    }
}
