//! The Pequod RPC vocabulary.
//!
//! Clients speak `Get`/`Put`/`Remove`/`Scan`/`AddJoin` and receive
//! `Reply`. Servers speak `Subscribe`/`SubscribeReply`/`Notify` among
//! themselves to replicate base data (§2.4): reading a remote key range
//! installs a subscription at its home server, and the home server
//! forwards subsequent updates.

use pequod_store::{Key, KeyRange, UpperBound, Value};

/// A wire message.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Point read.
    Get {
        /// Request id, echoed in the reply.
        id: u64,
        /// Key to read.
        key: Key,
    },
    /// Insert or update.
    Put {
        /// Request id.
        id: u64,
        /// Key to write.
        key: Key,
        /// New value.
        value: Value,
    },
    /// Delete.
    Remove {
        /// Request id.
        id: u64,
        /// Key to delete.
        key: Key,
    },
    /// Ordered range read.
    Scan {
        /// Request id.
        id: u64,
        /// Range to scan.
        range: KeyRange,
    },
    /// Server-side range count. The reply is a [`Message::Reply`] whose
    /// single pair is ([`COUNT_KEY`], the count in ASCII decimal) — the
    /// server counts; the pairs are never shipped.
    Count {
        /// Request id.
        id: u64,
        /// Range to count.
        range: KeyRange,
    },
    /// Install a cache join from its textual form.
    AddJoin {
        /// Request id.
        id: u64,
        /// Join text (Figure 2 grammar).
        text: String,
    },
    /// Response to any client request.
    Reply {
        /// The request this answers.
        id: u64,
        /// Result pairs (empty for writes).
        pairs: Vec<(Key, Value)>,
        /// Error message, if the request failed.
        error: Option<String>,
    },
    /// Server→server: fetch a base range and subscribe to its updates.
    Subscribe {
        /// Request id.
        id: u64,
        /// The base range wanted.
        range: KeyRange,
    },
    /// Server→server: subscription data.
    SubscribeReply {
        /// The `Subscribe` this answers.
        id: u64,
        /// The subscribed range.
        range: KeyRange,
        /// Its current contents.
        pairs: Vec<(Key, Value)>,
    },
    /// Server→server: an update to a subscribed range.
    Notify {
        /// The modified key.
        key: Key,
        /// New value, or `None` for a removal.
        value: Option<Value>,
    },
    /// Server→server: drop subscriptions overlapping a range.
    Unsubscribe {
        /// The range to drop.
        range: KeyRange,
    },
    /// A pipelined batch delivered as one frame: the receiver handles
    /// each message in order. Replies are sent individually (a parked
    /// query inside a batch may answer long after the rest), matched by
    /// request id.
    Batch {
        /// The pipelined messages.
        msgs: Vec<Message>,
    },
}

/// The reply-pair key under which a [`Message::Count`] answer carries
/// its count. `#` cannot start a user table name in any of the paper's
/// schemas, so the key cannot collide with real data.
pub const COUNT_KEY: &str = "#count";

impl Message {
    /// The request id, if this message carries one.
    pub fn id(&self) -> Option<u64> {
        match self {
            Message::Get { id, .. }
            | Message::Put { id, .. }
            | Message::Remove { id, .. }
            | Message::Scan { id, .. }
            | Message::Count { id, .. }
            | Message::AddJoin { id, .. }
            | Message::Reply { id, .. }
            | Message::Subscribe { id, .. }
            | Message::SubscribeReply { id, .. } => Some(*id),
            Message::Notify { .. } | Message::Unsubscribe { .. } | Message::Batch { .. } => None,
        }
    }

    /// A successful reply.
    pub fn reply(id: u64, pairs: Vec<(Key, Value)>) -> Message {
        Message::Reply {
            id,
            pairs,
            error: None,
        }
    }

    /// An error reply.
    pub fn error(id: u64, error: impl Into<String>) -> Message {
        Message::Reply {
            id,
            pairs: Vec::new(),
            error: Some(error.into()),
        }
    }

    /// The reply to a [`Message::Count`] request.
    pub fn count_reply(id: u64, count: u64) -> Message {
        Message::Reply {
            id,
            pairs: vec![(
                Key::from(COUNT_KEY),
                Value::from(count.to_string().into_bytes()),
            )],
            error: None,
        }
    }

    /// Extracts the count from a [`Message::count_reply`] pair list.
    pub fn parse_count(pairs: &[(Key, Value)]) -> Option<u64> {
        match pairs {
            [(key, value)] if key.as_bytes() == COUNT_KEY.as_bytes() => {
                std::str::from_utf8(value).ok()?.parse().ok()
            }
            _ => None,
        }
    }
}

/// Helper: encode a range end for the wire (None = unbounded).
pub(crate) fn range_end_key(range: &KeyRange) -> Option<&Key> {
    match &range.end {
        UpperBound::Excluded(k) => Some(k),
        UpperBound::Unbounded => None,
    }
}

/// Helper: rebuild a range from wire parts.
pub(crate) fn range_from_parts(first: Key, end: Option<Key>) -> KeyRange {
    KeyRange {
        first,
        end: match end {
            Some(k) => UpperBound::Excluded(k),
            None => UpperBound::Unbounded,
        },
    }
}
