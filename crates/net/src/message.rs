//! The Pequod RPC vocabulary.
//!
//! Clients speak `Get`/`Put`/`Remove`/`Scan`/`AddJoin` and receive
//! `Reply`. Servers speak `Subscribe`/`SubscribeReply`/`Notify` among
//! themselves to replicate base data (§2.4): reading a remote key range
//! installs a subscription at its home server, and the home server
//! forwards subsequent updates.

use pequod_store::{Key, KeyRange, UpperBound, Value};

/// A wire message.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Point read.
    Get {
        /// Request id, echoed in the reply.
        id: u64,
        /// Key to read.
        key: Key,
    },
    /// Insert or update.
    Put {
        /// Request id.
        id: u64,
        /// Key to write.
        key: Key,
        /// New value.
        value: Value,
    },
    /// Delete.
    Remove {
        /// Request id.
        id: u64,
        /// Key to delete.
        key: Key,
    },
    /// Ordered range read.
    Scan {
        /// Request id.
        id: u64,
        /// Range to scan.
        range: KeyRange,
    },
    /// Server-side range count. The reply is a [`Message::Reply`] whose
    /// single pair is ([`COUNT_KEY`], the count in ASCII decimal) — the
    /// server counts; the pairs are never shipped.
    Count {
        /// Request id.
        id: u64,
        /// Range to count.
        range: KeyRange,
    },
    /// Install a cache join from its textual form.
    AddJoin {
        /// Request id.
        id: u64,
        /// Join text (Figure 2 grammar).
        text: String,
    },
    /// Response to any client request.
    Reply {
        /// The request this answers.
        id: u64,
        /// Result pairs (empty for writes).
        pairs: Vec<(Key, Value)>,
        /// Error message, if the request failed.
        error: Option<String>,
    },
    /// Server→server: fetch a base range and subscribe to its updates.
    Subscribe {
        /// Request id.
        id: u64,
        /// The base range wanted.
        range: KeyRange,
    },
    /// Server→server: subscription data.
    SubscribeReply {
        /// The `Subscribe` this answers.
        id: u64,
        /// The subscribed range.
        range: KeyRange,
        /// Its current contents.
        pairs: Vec<(Key, Value)>,
    },
    /// Server→server: an update to a subscribed range.
    Notify {
        /// The modified key.
        key: Key,
        /// New value, or `None` for a removal.
        value: Option<Value>,
    },
    /// Server→server: drop subscriptions overlapping a range.
    Unsubscribe {
        /// The range to drop.
        range: KeyRange,
    },
    /// A pipelined batch delivered as one frame: the receiver handles
    /// each message in order. Replies are sent individually (a parked
    /// query inside a batch may answer long after the rest), matched by
    /// request id.
    Batch {
        /// The pipelined messages.
        msgs: Vec<Message>,
    },
    /// First frame on a node-to-node link: identifies the dialing
    /// cluster node, so subsequent frames on the connection can be
    /// attributed to it (client connections never send this).
    Hello {
        /// The dialer's node id.
        node: u32,
    },
    /// Node→node: (re)subscribe to a replicated slot. Sent by a
    /// follower that detected a sequence gap, a restarted node warm
    /// catching up, or a node asking for (re-)admission to a replica
    /// set. The primary answers with a delta of `NotifySeq` frames when
    /// its in-memory window still covers `from_seq` and the follower's
    /// log lineage is valid, or with a chunked snapshot otherwise.
    ReplicaSubscribe {
        /// The replicated slot (partition range id).
        slot: u32,
        /// The sender's current epoch for the slot.
        epoch: u64,
        /// The epoch under which the sender's local log/applied state
        /// was last written — the primary uses it to detect divergent
        /// suffixes (a deposed primary's unacknowledged tail).
        log_epoch: u64,
        /// The sender's last applied sequence number for the slot.
        from_seq: u64,
    },
    /// Node→node: one epoch-stamped, sequence-numbered base write
    /// streamed from a slot's primary to its followers. The replicated
    /// analogue of [`Message::Notify`]; per-slot sequence numbers let
    /// followers detect gaps.
    NotifySeq {
        /// The replicated slot.
        slot: u32,
        /// The primary's epoch for the slot.
        epoch: u64,
        /// Per-slot sequence number (dense, starting at 1).
        seq: u64,
        /// The modified key.
        key: Key,
        /// New value, or `None` for a removal.
        value: Option<Value>,
    },
    /// Node→node: cumulative follower acknowledgment — everything up to
    /// and including `seq` is applied and locally durable. The primary
    /// acknowledges a client write only after every follower acked it.
    NotifyAck {
        /// The replicated slot.
        slot: u32,
        /// The follower's epoch for the slot.
        epoch: u64,
        /// Highest contiguously applied sequence number.
        seq: u64,
    },
    /// Node→node: primary liveness beacon, carrying the latest assigned
    /// sequence number so an idle follower still detects gaps. Missed
    /// heartbeats trigger follower promotion (epoch bump).
    Heartbeat {
        /// The replicated slot.
        slot: u32,
        /// The primary's epoch for the slot.
        epoch: u64,
        /// Latest assigned sequence number.
        seq: u64,
    },
    /// Node→node: one chunk of a slot snapshot transfer (follower
    /// bootstrap / catch-up when the delta window no longer reaches).
    SnapshotChunk {
        /// The replicated slot.
        slot: u32,
        /// The primary's epoch for the slot.
        epoch: u64,
        /// The sequence number the snapshot is current as of; the
        /// receiver resumes delta replay from here.
        upto_seq: u64,
        /// True on the final chunk.
        done: bool,
        /// Base pairs in this chunk.
        pairs: Vec<(Key, Value)>,
    },
    /// Node→node: announces a new epoch for a slot — after a failover
    /// promotion, a membership change (laggard drop, re-admission), or
    /// a migration flip. `replicas[0]` is the new primary.
    EpochChange {
        /// The replicated slot.
        slot: u32,
        /// The new epoch.
        epoch: u64,
        /// The new replica set; index 0 is the primary.
        replicas: Vec<u32>,
        /// The primary's applied sequence number when the epoch began —
        /// a member whose applied state matches adopts the epoch
        /// without a catch-up round trip.
        upto_seq: u64,
        /// A node deliberately dropped from the set (migration source):
        /// it deletes its copy instead of re-requesting admission.
        dropped: Option<u32>,
    },
    /// Reply to a client request that reached a node that is not the
    /// slot's primary: names the node to retry against. Clients resolve
    /// the node id to an address through their cluster config.
    NotPrimary {
        /// The request this answers.
        id: u64,
        /// The slot the request's key belongs to.
        slot: u32,
        /// The replier's epoch for the slot (clients keep the highest
        /// epoch seen, ignoring stale redirects).
        epoch: u64,
        /// The believed primary's node id.
        node: u32,
    },
    /// Admin→primary: live-migrate a slot's membership from node `from`
    /// to node `to` (install → dual-notify → flip authority → drop).
    /// Answered with an empty [`Message::Reply`] once the flip is done.
    Migrate {
        /// Request id.
        id: u64,
        /// The slot to move.
        slot: u32,
        /// The member leaving the replica set.
        from: u32,
        /// The node joining in its place.
        to: u32,
    },
    /// Admin: asks a cluster node for its per-slot view and replication
    /// counters, answered as a [`Message::Reply`] pair list.
    NodeStatus {
        /// Request id.
        id: u64,
    },
    /// Admin: asks any server for its telemetry snapshot, answered as
    /// a [`Message::Reply`] pair list (flattened metric entries; see
    /// `pequod_telemetry::Snapshot::to_pairs`). With `flight` set the
    /// reply also carries the flight-recorder ring as `f|<seq>` pairs.
    Metrics {
        /// Request id.
        id: u64,
        /// Include the flight-recorder event ring in the reply.
        flight: bool,
    },
}

/// The reply-pair key under which a [`Message::Count`] answer carries
/// its count. `#` cannot start a user table name in any of the paper's
/// schemas, so the key cannot collide with real data.
pub const COUNT_KEY: &str = "#count";

impl Message {
    /// The request id, if this message carries one.
    pub fn id(&self) -> Option<u64> {
        match self {
            Message::Get { id, .. }
            | Message::Put { id, .. }
            | Message::Remove { id, .. }
            | Message::Scan { id, .. }
            | Message::Count { id, .. }
            | Message::AddJoin { id, .. }
            | Message::Reply { id, .. }
            | Message::Subscribe { id, .. }
            | Message::SubscribeReply { id, .. }
            | Message::NotPrimary { id, .. }
            | Message::Migrate { id, .. }
            | Message::NodeStatus { id }
            | Message::Metrics { id, .. } => Some(*id),
            Message::Notify { .. }
            | Message::Unsubscribe { .. }
            | Message::Batch { .. }
            | Message::Hello { .. }
            | Message::ReplicaSubscribe { .. }
            | Message::NotifySeq { .. }
            | Message::NotifyAck { .. }
            | Message::Heartbeat { .. }
            | Message::SnapshotChunk { .. }
            | Message::EpochChange { .. } => None,
        }
    }

    /// A successful reply.
    pub fn reply(id: u64, pairs: Vec<(Key, Value)>) -> Message {
        Message::Reply {
            id,
            pairs,
            error: None,
        }
    }

    /// An error reply.
    pub fn error(id: u64, error: impl Into<String>) -> Message {
        Message::Reply {
            id,
            pairs: Vec::new(),
            error: Some(error.into()),
        }
    }

    /// The reply to a [`Message::Metrics`] request: the snapshot's
    /// flattened `(key, value)` pairs as a reply pair list. Every
    /// serving surface (blocking TCP, event-driven frontend, cluster
    /// node) answers through this one encoder so the wire shape cannot
    /// diverge.
    pub fn metrics_reply(id: u64, snapshot: &pequod_telemetry::Snapshot) -> Message {
        Message::reply(
            id,
            snapshot
                .to_pairs()
                .into_iter()
                .map(|(k, v)| (Key::from(k.as_str()), Value::from(v.into_bytes())))
                .collect(),
        )
    }

    /// The reply to a [`Message::Count`] request.
    pub fn count_reply(id: u64, count: u64) -> Message {
        Message::Reply {
            id,
            pairs: vec![(
                Key::from(COUNT_KEY),
                Value::from(count.to_string().into_bytes()),
            )],
            error: None,
        }
    }

    /// Extracts the count from a [`Message::count_reply`] pair list.
    pub fn parse_count(pairs: &[(Key, Value)]) -> Option<u64> {
        match pairs {
            [(key, value)] if key.as_bytes() == COUNT_KEY.as_bytes() => {
                std::str::from_utf8(value).ok()?.parse().ok()
            }
            _ => None,
        }
    }
}

/// Helper: encode a range end for the wire (None = unbounded).
pub(crate) fn range_end_key(range: &KeyRange) -> Option<&Key> {
    match &range.end {
        UpperBound::Excluded(k) => Some(k),
        UpperBound::Unbounded => None,
    }
}

/// Helper: rebuild a range from wire parts.
pub(crate) fn range_from_parts(first: Key, end: Option<Key>) -> KeyRange {
    KeyRange {
        first,
        end: match end {
            Some(k) => UpperBound::Excluded(k),
            None => UpperBound::Unbounded,
        },
    }
}
