//! A many-connection pipelined client driver over [`Poller`].
//!
//! [`Swarm::run`] opens N connections to one server, keeps up to
//! `depth` request frames in flight per connection, and drives all of
//! the sockets from a single thread with the same `epoll` wrapper the
//! server's reactor uses — so tests and benchmarks can hold thousands
//! of live pipelined connections without thousands of client threads.
//!
//! The caller supplies the traffic: a request generator invoked as
//! `(connection, frame_seq) -> Message`, and a reply callback invoked
//! with every decoded reply frame in arrival order. Replies are matched
//! to frames positionally (the protocol answers frames in order), so a
//! `Batch { msgs }` frame is counted as `msgs.len()` expected replies.
//!
//! The driver times each request frame from queueing to its last reply
//! (via [`pequod_telemetry::Timer`]) and reports the distribution in
//! [`SwarmReport::latency`]; callers still time the run as a whole
//! themselves. A run that makes no progress for `max_stalls`
//! consecutive waits fails with `TimedOut` instead of hanging the test
//! suite.

use crate::codec::{encode_frame, FrameDecoder};
use crate::message::Message;
use crate::reactor::Poller;
use bytes::Bytes;
use pequod_telemetry::{Histogram, HistogramSnapshot, Timer};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;

/// Shape of a [`Swarm`] run.
#[derive(Clone, Copy, Debug)]
pub struct SwarmConfig {
    /// Connections to open.
    pub conns: usize,
    /// Maximum unanswered request frames per connection.
    pub depth: usize,
    /// Request frames each connection sends over the run.
    pub frames_per_conn: usize,
    /// Poll-wait granularity in milliseconds.
    pub wait_ms: i32,
    /// Consecutive empty waits tolerated before the run fails with
    /// `TimedOut` (total patience ≈ `wait_ms * max_stalls`).
    pub max_stalls: u32,
}

impl Default for SwarmConfig {
    fn default() -> SwarmConfig {
        SwarmConfig {
            conns: 100,
            depth: 8,
            frames_per_conn: 100,
            wait_ms: 1_000,
            max_stalls: 30,
        }
    }
}

/// Counters from a completed [`Swarm::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SwarmReport {
    /// Request frames sent across all connections.
    pub frames_sent: u64,
    /// Reply frames received.
    pub replies: u64,
    /// Replies that carried a server error.
    pub reply_errors: u64,
    /// Bytes written.
    pub bytes_out: u64,
    /// Bytes read.
    pub bytes_in: u64,
    /// Per-request-frame latency in microseconds, from the frame being
    /// queued for send to its last reply arriving — the closed-loop
    /// client view, including local queueing behind the window. Query
    /// with [`HistogramSnapshot::p50`] / `p99` / `mean`.
    pub latency: HistogramSnapshot,
}

struct SwarmConn {
    index: usize,
    stream: TcpStream,
    decoder: FrameDecoder,
    out: VecDeque<Bytes>,
    out_pos: usize,
    /// Replies still owed per in-flight frame, in send order.
    expected: VecDeque<usize>,
    /// Start times parallel to `expected`, one per in-flight frame.
    timers: VecDeque<Timer>,
    sent: usize,
    reg_write: bool,
    done: bool,
}

impl SwarmConn {
    fn complete(&self, frames_per_conn: usize) -> bool {
        self.sent >= frames_per_conn && self.expected.is_empty() && self.out.is_empty()
    }
}

/// The driver; see the [module docs](self).
pub struct Swarm {
    cfg: SwarmConfig,
}

impl Swarm {
    /// A driver with the given shape.
    pub fn new(cfg: SwarmConfig) -> Swarm {
        Swarm { cfg }
    }

    /// Opens the connections, pumps every frame through, and returns
    /// once all replies have arrived. `request(conn, seq)` produces the
    /// `seq`-th frame for connection `conn`; `on_reply(conn, msg)` sees
    /// every decoded reply in per-connection arrival order.
    pub fn run(
        &self,
        addr: SocketAddr,
        mut request: impl FnMut(usize, usize) -> Message,
        mut on_reply: impl FnMut(usize, &Message),
    ) -> std::io::Result<SwarmReport> {
        let cfg = self.cfg;
        let mut report = SwarmReport::default();
        if cfg.conns == 0 || cfg.frames_per_conn == 0 {
            return Ok(report);
        }
        let depth = cfg.depth.max(1);
        let latency = Histogram::new();
        let mut poller = Poller::new()?;
        let mut conns: Vec<SwarmConn> = Vec::with_capacity(cfg.conns);
        for i in 0..cfg.conns {
            let stream = connect_retry(addr)?;
            stream.set_nodelay(true)?;
            stream.set_nonblocking(true)?;
            poller.register(stream.as_raw_fd(), i as u64, true, false)?;
            conns.push(SwarmConn {
                index: i,
                stream,
                decoder: FrameDecoder::new(),
                out: VecDeque::new(),
                out_pos: 0,
                expected: VecDeque::new(),
                timers: VecDeque::new(),
                sent: 0,
                reg_write: false,
                done: false,
            });
        }
        // Prime every connection's window, flushing what the socket
        // buffer will take immediately.
        let mut open = conns.len();
        for (i, conn) in conns.iter_mut().enumerate() {
            fill_window(conn, &cfg, depth, &mut request, &mut report);
            flush(conn, &mut report)?;
            sync_interest(&mut poller, conn, i as u64)?;
            if conn.complete(cfg.frames_per_conn) {
                retire(&mut poller, conn)?;
                open -= 1;
            }
        }
        let mut events = Vec::new();
        let mut rdbuf = vec![0u8; 64 * 1024];
        let mut stalls = 0u32;
        while open > 0 {
            poller.wait(&mut events, cfg.wait_ms)?;
            if events.is_empty() {
                stalls += 1;
                if stalls > cfg.max_stalls {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!("swarm stalled with {open} connections outstanding"),
                    ));
                }
                continue;
            }
            stalls = 0;
            for ev in &events {
                let i = ev.token as usize;
                let Some(conn) = conns.get_mut(i) else {
                    continue;
                };
                if conn.done {
                    continue;
                }
                if ev.readable || ev.error {
                    pump_read(conn, &mut rdbuf, &mut on_reply, i, &mut report, &latency)?;
                }
                if ev.writable {
                    flush(conn, &mut report)?;
                }
                fill_window(conn, &cfg, depth, &mut request, &mut report);
                flush(conn, &mut report)?;
                if conn.complete(cfg.frames_per_conn) {
                    retire(&mut poller, conn)?;
                    open -= 1;
                } else {
                    sync_interest(&mut poller, conn, i as u64)?;
                }
            }
        }
        report.latency = latency.snapshot();
        Ok(report)
    }
}

/// Expected reply frames for one request frame: the protocol answers a
/// `Batch` with one reply per (already-flat) element.
fn expected_replies(msg: &Message) -> usize {
    match msg {
        Message::Batch { msgs } => msgs.len(),
        _ => 1,
    }
}

/// Connect with a short retry loop: under a mass-open a loopback
/// listener's backlog can transiently refuse.
fn connect_retry(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let mut delay_ms = 1u64;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if delay_ms > 256 => return Err(e),
            Err(_) => {
                std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                delay_ms *= 2;
            }
        }
    }
}

/// Tops the connection's window up to `depth` in-flight frames.
fn fill_window(
    conn: &mut SwarmConn,
    cfg: &SwarmConfig,
    depth: usize,
    request: &mut impl FnMut(usize, usize) -> Message,
    report: &mut SwarmReport,
) {
    while conn.expected.len() < depth && conn.sent < cfg.frames_per_conn {
        let msg = request(conn.index, conn.sent);
        let expect = expected_replies(&msg);
        if expect > 0 {
            conn.expected.push_back(expect);
            conn.timers.push_back(Timer::start());
        }
        conn.out.push_back(encode_frame(&msg));
        conn.sent += 1;
        report.frames_sent += 1;
    }
}

fn flush(conn: &mut SwarmConn, report: &mut SwarmReport) -> std::io::Result<()> {
    while let Some(front) = conn.out.front() {
        match conn.stream.write(&front[conn.out_pos..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "swarm write returned 0",
                ))
            }
            Ok(n) => {
                report.bytes_out += n as u64;
                conn.out_pos += n;
                if conn.out_pos >= front.len() {
                    conn.out.pop_front();
                    conn.out_pos = 0;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn pump_read(
    conn: &mut SwarmConn,
    rdbuf: &mut [u8],
    on_reply: &mut impl FnMut(usize, &Message),
    index: usize,
    report: &mut SwarmReport,
    latency: &Histogram,
) -> std::io::Result<()> {
    loop {
        match conn.stream.read(rdbuf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("server closed swarm connection {index} early"),
                ))
            }
            Ok(n) => {
                report.bytes_in += n as u64;
                conn.decoder.extend(&rdbuf[..n]);
                loop {
                    let msg = conn.decoder.next_frame().map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    })?;
                    let Some(msg) = msg else { break };
                    report.replies += 1;
                    if let Message::Reply { error: Some(_), .. } = &msg {
                        report.reply_errors += 1;
                    }
                    on_reply(index, &msg);
                    if let Some(head) = conn.expected.front_mut() {
                        *head -= 1;
                        if *head == 0 {
                            conn.expected.pop_front();
                            if let Some(t) = conn.timers.pop_front() {
                                if let Some(us) = t.elapsed_micros() {
                                    latency.observe(us);
                                }
                            }
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

fn sync_interest(poller: &mut Poller, conn: &mut SwarmConn, token: u64) -> std::io::Result<()> {
    let want_write = !conn.out.is_empty();
    if want_write != conn.reg_write {
        poller.modify(conn.stream.as_raw_fd(), token, true, want_write)?;
        conn.reg_write = want_write;
    }
    Ok(())
}

fn retire(poller: &mut Poller, conn: &mut SwarmConn) -> std::io::Result<()> {
    poller.deregister(conn.stream.as_raw_fd())?;
    conn.done = true;
    Ok(())
}
