//! A deterministic in-process cluster simulator.
//!
//! Servers exchange [`Message`]s through a virtual network with
//! configurable per-hop latency and (optionally) extra jitter on
//! `Notify` delivery — modelling the asynchronous update propagation
//! that makes Pequod eventually consistent (§2.4). Delivery order is a
//! deterministic function of the seed, so distributed experiments and
//! tests reproduce exactly.
//!
//! The simulator also accounts wire bytes per message class using the
//! real codec, which the scalability experiment (Figure 10) reports as
//! "subscription maintenance" versus "client communication" bandwidth.

use crate::codec::encode_frame;
use crate::message::Message;
use crate::partition::ServerId;
use crate::server::{Endpoint, ServerNode};
use pequod_store::{Key, KeyRange, Value};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulator parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Per-hop latency in ticks.
    pub latency: u64,
    /// RNG seed (delivery jitter).
    pub seed: u64,
    /// Probability that a `Notify` is delayed by `notify_jitter` extra
    /// ticks (asynchronous propagation; updates are never lost).
    pub notify_jitter_chance: f64,
    /// Extra delay applied to jittered notifies.
    pub notify_jitter: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency: 1,
            seed: 0x5eed,
            notify_jitter_chance: 0.0,
            notify_jitter: 10,
        }
    }
}

/// Per-link fault knobs for [`SimNet`].
///
/// All probabilities are per message, drawn from the fabric's seeded
/// RNG, so a given (seed, send sequence) reproduces the exact same
/// loss/duplication/reordering pattern.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently discarded.
    pub drop_chance: f64,
    /// Probability a message is delivered twice.
    pub dup_chance: f64,
    /// Probability a message is delayed by an extra random amount (up
    /// to [`LinkFaults::reorder_delay`]), letting later sends overtake
    /// it.
    pub reorder_chance: f64,
    /// Maximum extra delay applied to reordered messages, in ticks.
    pub reorder_delay: u64,
}

impl LinkFaults {
    /// A lossy, duplicating, reordering link — convenience for tests.
    pub fn lossy(drop_chance: f64, dup_chance: f64, reorder_chance: f64) -> LinkFaults {
        LinkFaults {
            drop_chance,
            dup_chance,
            reorder_chance,
            reorder_delay: 20,
        }
    }
}

/// Fault counters accumulated by a [`SimNet`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultStats {
    /// Messages discarded by `drop_chance`.
    pub dropped: u64,
    /// Extra copies injected by `dup_chance`.
    pub duplicated: u64,
    /// Messages given extra delay by `reorder_chance`.
    pub reordered: u64,
    /// Messages handed out by [`SimNet::take_due`].
    pub delivered: u64,
}

#[derive(PartialEq, Eq)]
struct NetEnvelope {
    at: u64,
    seq: u64,
    from: u32,
    to: u32,
}

impl Ord for NetEnvelope {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for NetEnvelope {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic point-to-point message fabric with fault injection.
///
/// Unlike [`SimCluster`] — which wraps [`ServerNode`]s and assumes the
/// lossless Subscribe/Notify protocol — `SimNet` is a bare transport:
/// endpoints are opaque `u32` ids, the caller delivers messages itself,
/// and each directed link can drop, duplicate, or reorder traffic. The
/// replicated-cluster tests (`pequod_cluster`) run their loss/reorder
/// sweeps on it without real sockets; the replication protocol's
/// sequence numbers and catch-up machinery are what make that safe.
///
/// Time is the caller's: `send` stamps departures with the caller's
/// `now`, `take_due(now)` returns everything that has arrived by `now`
/// in deterministic (arrival, send-sequence) order.
pub struct SimNet {
    queue: BinaryHeap<Reverse<NetEnvelope>>,
    payloads: std::collections::HashMap<u64, Message>,
    seq: u64,
    rng: u64,
    latency: u64,
    default_faults: LinkFaults,
    faults: std::collections::HashMap<(u32, u32), LinkFaults>,
    down: std::collections::HashSet<u32>,
    /// Fault and delivery counters.
    pub stats: FaultStats,
}

impl SimNet {
    /// A fabric with the given RNG seed and per-hop latency (ticks).
    pub fn new(seed: u64, latency: u64) -> SimNet {
        SimNet {
            queue: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            seq: 0,
            rng: seed | 1,
            latency,
            default_faults: LinkFaults::default(),
            faults: std::collections::HashMap::new(),
            down: std::collections::HashSet::new(),
            stats: FaultStats::default(),
        }
    }

    /// Sets the fault profile applied to every link without an explicit
    /// override.
    pub fn set_default_faults(&mut self, faults: LinkFaults) {
        self.default_faults = faults;
    }

    /// Sets the fault profile of one directed link.
    pub fn set_link_faults(&mut self, from: u32, to: u32, faults: LinkFaults) {
        self.faults.insert((from, to), faults);
    }

    /// Marks an endpoint down (messages to or from it are blackholed)
    /// or back up — models a crashed or partitioned node.
    pub fn set_down(&mut self, endpoint: u32, down: bool) {
        if down {
            self.down.insert(endpoint);
        } else {
            self.down.remove(&endpoint);
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* (same generator as SimCluster).
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        ((self.next_rand() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    fn enqueue(&mut self, at: u64, from: u32, to: u32, msg: Message) {
        self.seq += 1;
        self.payloads.insert(self.seq, msg);
        self.queue.push(Reverse(NetEnvelope {
            at,
            seq: self.seq,
            from,
            to,
        }));
    }

    /// Sends a message departing at `now`; it arrives `latency` ticks
    /// later unless the link's faults drop, duplicate, or delay it.
    pub fn send(&mut self, now: u64, from: u32, to: u32, msg: Message) {
        if self.down.contains(&from) || self.down.contains(&to) {
            self.stats.dropped += 1;
            return;
        }
        let faults = *self.faults.get(&(from, to)).unwrap_or(&self.default_faults);
        if self.chance(faults.drop_chance) {
            self.stats.dropped += 1;
            return;
        }
        let mut at = now + self.latency;
        if self.chance(faults.reorder_chance) {
            self.stats.reordered += 1;
            at += 1 + self.next_rand() % faults.reorder_delay.max(1);
        }
        if self.chance(faults.dup_chance) {
            self.stats.duplicated += 1;
            self.enqueue(at, from, to, msg.clone());
        }
        self.enqueue(at, from, to, msg);
    }

    /// Arrival time of the earliest in-flight message, if any.
    pub fn next_at(&self) -> Option<u64> {
        self.queue.peek().map(|Reverse(e)| e.at)
    }

    /// True when nothing is in flight.
    pub fn is_quiet(&self) -> bool {
        self.queue.is_empty()
    }

    /// Takes every message that has arrived by `now`, in deterministic
    /// order. Messages addressed to a down endpoint are discarded at
    /// delivery time (they were in flight when it went down).
    pub fn take_due(&mut self, now: u64) -> Vec<(u32, u32, Message)> {
        let mut out = Vec::new();
        while let Some(Reverse(env)) = self.queue.peek() {
            if env.at > now {
                break;
            }
            let Some(Reverse(env)) = self.queue.pop() else {
                break;
            };
            let Some(msg) = self.payloads.remove(&env.seq) else {
                continue;
            };
            if self.down.contains(&env.to) || self.down.contains(&env.from) {
                self.stats.dropped += 1;
                continue;
            }
            self.stats.delivered += 1;
            out.push((env.from, env.to, msg));
        }
        out
    }
}

/// Wire-byte counters by message class.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrafficStats {
    /// Bytes of client requests and replies.
    pub client_bytes: u64,
    /// Bytes of server-to-server subscription traffic
    /// (Subscribe/SubscribeReply/Notify/Unsubscribe).
    pub subscription_bytes: u64,
    /// Messages delivered.
    pub delivered: u64,
}

#[derive(PartialEq, Eq)]
struct Envelope {
    at: u64,
    seq: u64,
    from: Endpoint,
    to: Endpoint,
}

impl Ord for Envelope {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Envelope {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulated cluster: servers plus a virtual network.
pub struct SimCluster {
    nodes: Vec<ServerNode>,
    queue: BinaryHeap<Reverse<Envelope>>,
    payloads: std::collections::HashMap<u64, Message>,
    replies: Vec<(u32, Message)>,
    now: u64,
    seq: u64,
    rng: u64,
    busy: Vec<std::time::Duration>,
    /// Simulator parameters.
    pub config: SimConfig,
    /// Wire accounting.
    pub traffic: TrafficStats,
}

impl SimCluster {
    /// Builds a cluster from server nodes (node `i` must have
    /// `ServerId(i)`).
    pub fn new(config: SimConfig, nodes: Vec<ServerNode>) -> SimCluster {
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.id, ServerId(i as u32), "node ids must be dense");
        }
        let busy = vec![std::time::Duration::ZERO; nodes.len()];
        SimCluster {
            nodes,
            queue: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            replies: Vec::new(),
            now: 0,
            seq: 0,
            rng: config.seed | 1,
            busy,
            config,
            traffic: TrafficStats::default(),
        }
    }

    /// Wall-clock CPU time a server has spent processing messages. The
    /// scalability experiment (Figure 10) divides total query count by
    /// the busiest compute server's CPU time: since all simulated
    /// servers share one real core, per-server busy time is the honest
    /// stand-in for the per-server CPU bottleneck the paper measures.
    pub fn busy_time(&self, id: ServerId) -> std::time::Duration {
        self.busy[id.0 as usize]
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no servers.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A server by id.
    pub fn node(&self, id: ServerId) -> &ServerNode {
        &self.nodes[id.0 as usize]
    }

    /// Mutable access to a server.
    pub fn node_mut(&mut self, id: ServerId) -> &mut ServerNode {
        &mut self.nodes[id.0 as usize]
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        ((self.next_rand() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    fn send(&mut self, from: Endpoint, to: Endpoint, msg: Message) {
        let bytes = encode_frame(&msg).len() as u64;
        let is_sub = matches!(
            msg,
            Message::Subscribe { .. }
                | Message::SubscribeReply { .. }
                | Message::Notify { .. }
                | Message::Unsubscribe { .. }
        );
        if is_sub {
            self.traffic.subscription_bytes += bytes;
        } else {
            self.traffic.client_bytes += bytes;
        }
        let mut delay = self.config.latency;
        if matches!(msg, Message::Notify { .. }) && self.chance(self.config.notify_jitter_chance) {
            delay += self.config.notify_jitter;
        }
        self.seq += 1;
        self.payloads.insert(self.seq, msg);
        self.queue.push(Reverse(Envelope {
            at: self.now + delay,
            seq: self.seq,
            from,
            to,
        }));
    }

    /// Injects a client request addressed to a server.
    pub fn request(&mut self, client: u32, server: ServerId, msg: Message) {
        self.send(Endpoint::Client(client), Endpoint::Server(server), msg);
    }

    /// Delivers the next message; returns false when the network is
    /// quiet.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(env)) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(env.at);
        let Some(msg) = self.payloads.remove(&env.seq) else {
            // A queue entry without a payload would be a simulator bug;
            // skip the phantom envelope rather than crash mid-test.
            return true;
        };
        self.traffic.delivered += 1;
        match env.to {
            Endpoint::Client(c) => self.replies.push((c, msg)),
            Endpoint::Server(sid) => {
                let node = &mut self.nodes[sid.0 as usize];
                // Keep the engine's logical clock in sync with simulated
                // time (drives snapshot expiry).
                let behind = self.now.saturating_sub(node.engine.clock());
                node.engine.tick(behind);
                // audit: allow(wall-clock) — busy-time accounting measures
                // real compute per server; simulated time stays in `now`.
                let start = std::time::Instant::now();
                let out = node.handle(env.from, msg);
                self.busy[sid.0 as usize] += start.elapsed();
                for (to, m) in out {
                    self.send(Endpoint::Server(sid), to, m);
                }
            }
        }
        true
    }

    /// Runs until no messages remain in flight.
    pub fn run_until_quiet(&mut self) {
        while self.step() {}
    }

    /// Takes accumulated client replies.
    pub fn take_replies(&mut self) -> Vec<(u32, Message)> {
        std::mem::take(&mut self.replies)
    }

    /// Takes the accumulated replies addressed to one client, leaving
    /// other clients' replies queued.
    pub fn take_replies_for(&mut self, client: u32) -> Vec<Message> {
        let mut out = Vec::new();
        self.replies.retain(|(c, m)| {
            if *c == client {
                out.push(m.clone());
                false
            } else {
                true
            }
        });
        out
    }

    // ------------------------------------------------------------------
    // Synchronous convenience API (runs the network to quiescence)
    // ------------------------------------------------------------------

    /// Synchronous scan against one server.
    pub fn scan(&mut self, server: ServerId, range: KeyRange) -> Vec<(Key, Value)> {
        self.request(
            0,
            server,
            Message::Scan {
                id: u64::MAX,
                range,
            },
        );
        self.run_until_quiet();
        self.expect_reply(u64::MAX)
    }

    /// Synchronous put against one server (typically the key's home).
    pub fn put(&mut self, server: ServerId, key: impl Into<Key>, value: impl Into<Value>) {
        self.request(
            0,
            server,
            Message::Put {
                id: u64::MAX,
                key: key.into(),
                value: value.into(),
            },
        );
        self.run_until_quiet();
        self.expect_reply(u64::MAX);
    }

    /// Synchronous remove against one server.
    pub fn remove(&mut self, server: ServerId, key: impl Into<Key>) {
        self.request(
            0,
            server,
            Message::Remove {
                id: u64::MAX,
                key: key.into(),
            },
        );
        self.run_until_quiet();
        self.expect_reply(u64::MAX);
    }

    /// Installs joins on every server.
    pub fn add_joins_everywhere(&mut self, text: &str) {
        for i in 0..self.nodes.len() {
            self.request(
                0,
                ServerId(i as u32),
                Message::AddJoin {
                    id: u64::MAX,
                    text: text.to_string(),
                },
            );
            self.run_until_quiet();
            self.expect_reply(u64::MAX);
        }
    }

    #[allow(clippy::expect_used)] // see the audit allow below
    fn expect_reply(&mut self, id: u64) -> Vec<(Key, Value)> {
        let mut found = None;
        self.replies.retain(|(_, m)| {
            if let Message::Reply {
                id: rid,
                pairs,
                error,
            } = m
            {
                if *rid == id {
                    if let Some(e) = error {
                        // audit: allow(no-unwrap) — the synchronous API is a
                        // test harness convenience; errors abort the test.
                        panic!("request failed: {e}");
                    }
                    found = Some(pairs.clone());
                    return false;
                }
            }
            true
        });
        // audit: allow(no-unwrap) — test-harness convenience: a missing
        // reply after run-to-quiescence is a harness bug, abort the test.
        found.expect("reply for synchronous request")
    }
}
