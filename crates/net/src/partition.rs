//! Partition functions: mapping key ranges to home servers (§2.4).
//!
//! "Each base key has a home server to which updates are directed (a
//! partition function maps key ranges to home servers)." Computed data
//! is placed by client routing instead — e.g. Twip sends all timeline
//! checks for user `u` to server `S(u)`.

use pequod_store::Key;

/// A server identity within one deployment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ServerId(pub u32);

/// Maps keys to their home server.
pub trait Partition: Send + Sync {
    /// The home server of `key`.
    fn home_of(&self, key: &Key) -> ServerId;
}

/// Everything lives on one server.
#[derive(Clone, Copy, Debug)]
pub struct SingleServer(pub ServerId);

impl Partition for SingleServer {
    fn home_of(&self, _key: &Key) -> ServerId {
        self.0
    }
}

/// Assigns whole tables (first key component) to servers, with a
/// default for unlisted tables.
#[derive(Clone, Debug)]
pub struct TablePartition {
    map: Vec<(Key, ServerId)>,
    default: ServerId,
}

impl TablePartition {
    /// Creates a table partition with the given default home.
    pub fn new(default: ServerId) -> TablePartition {
        TablePartition {
            map: Vec::new(),
            default,
        }
    }

    /// Routes the table owning `prefix` to `server`.
    pub fn route(mut self, prefix: impl Into<Key>, server: ServerId) -> TablePartition {
        self.map.push((prefix.into(), server));
        self
    }
}

impl Partition for TablePartition {
    fn home_of(&self, key: &Key) -> ServerId {
        let table = key.table_prefix();
        self.map
            .iter()
            .find(|(p, _)| *p == table)
            .map(|(_, s)| *s)
            .unwrap_or(self.default)
    }
}

/// Hashes one `|`-separated key component across `n` servers: the Twip
/// deployment hashes the user/poster component so a user's posts,
/// subscriptions, and timeline land on one server.
#[derive(Clone, Copy, Debug)]
pub struct ComponentHashPartition {
    /// Which component to hash (0 = table name, 1 = user, ...).
    pub component: usize,
    /// Number of servers.
    pub servers: u32,
}

impl ComponentHashPartition {
    /// The server a raw component value hashes to.
    pub fn server_for_component(&self, component: &[u8]) -> ServerId {
        ServerId((fnv1a(component) % self.servers as u64) as u32)
    }
}

impl Partition for ComponentHashPartition {
    fn home_of(&self, key: &Key) -> ServerId {
        let comp = key
            .components()
            .nth(self.component)
            .unwrap_or(key.as_bytes());
        self.server_for_component(comp)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_partition_routes_by_table() {
        let p = TablePartition::new(ServerId(0))
            .route("p|", ServerId(1))
            .route("s|", ServerId(2));
        assert_eq!(p.home_of(&Key::from("p|bob|100")), ServerId(1));
        assert_eq!(p.home_of(&Key::from("s|ann|bob")), ServerId(2));
        assert_eq!(p.home_of(&Key::from("t|ann|1")), ServerId(0));
    }

    #[test]
    fn component_hash_is_stable_and_colocates() {
        let p = ComponentHashPartition {
            component: 1,
            servers: 4,
        };
        // A user's posts and subscriptions land on the same server.
        let a = p.home_of(&Key::from("p|bob|100"));
        let b = p.home_of(&Key::from("s|bob|ann"));
        assert_eq!(a, b);
        assert_eq!(a, p.home_of(&Key::from("p|bob|999")));
        assert!(a.0 < 4);
        // Different users spread across servers (statistically).
        let homes: std::collections::HashSet<u32> = (0..64)
            .map(|i| p.home_of(&Key::from(format!("p|user{i}|1"))).0)
            .collect();
        assert!(homes.len() > 1);
    }

    #[test]
    fn single_server_routes_everything_home() {
        let p = SingleServer(ServerId(3));
        assert_eq!(p.home_of(&Key::from("anything")), ServerId(3));
    }
}
