//! Partition functions, re-exported from `pequod_core::partition`.
//!
//! The key-routing logic (home servers, §2.4) is shared between this
//! crate's distributed tier — which routes commands to server
//! *processes* — and `pequod_core::ShardedEngine`, which reuses the same
//! functions to route commands to in-process engine *shards*. The
//! implementation lives in `pequod_core::partition`; this module keeps
//! the historical `pequod_net::partition` paths working.

pub use pequod_core::partition::{
    ComponentHashPartition, Partition, ServerId, SingleServer, TablePartition,
};
