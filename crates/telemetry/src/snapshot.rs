//! Point-in-time metric snapshots and their wire/text encodings.
//!
//! A [`Snapshot`] is an ordered list of named entries (counter, gauge,
//! or histogram), optionally with labels, plus a dump of the flight
//! ring. Snapshots from different shards [`merge`](Snapshot::merge) by
//! matching `(name, labels)`: counters and gauges add, histograms
//! bucket-merge. Two encoders exist: Prometheus text exposition
//! ([`to_prometheus`](Snapshot::to_prometheus)) for the HTTP scrape
//! endpoint, and flat string pairs ([`to_pairs`](Snapshot::to_pairs))
//! for the `Message::Metrics` wire frame.

use crate::flight::FlightEvent;
use crate::histogram::HistogramSnapshot;

/// A metric value.
///
/// Histogram snapshots dominate the enum's size, but values only
/// exist in snapshot vectors of a few dozen entries built at scrape
/// time, so the per-entry footprint is irrelevant and boxing would
/// just cost an indirection at every render site.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum Value {
    /// Monotonically increasing event count.
    Counter(u64),
    /// Instantaneous level (may go down between scrapes).
    Gauge(u64),
    /// Latency/size distribution.
    Histogram(HistogramSnapshot),
}

/// One named metric in a snapshot.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Metric name, e.g. `pequod_engine_ops_total`. Sanitized to the
    /// Prometheus charset by the encoder, so callers may pass raw
    /// strings.
    pub name: String,
    /// Label key/value pairs, e.g. `[("op", "scan")]`.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: Value,
}

/// A mergeable point-in-time view of a recorder (or several).
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Metric entries in emission order.
    pub entries: Vec<Entry>,
    /// Flight-recorder dump, oldest first (empty unless requested).
    pub flight: Vec<FlightEvent>,
}

impl Snapshot {
    /// Appends a counter entry.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.entries.push(Entry {
            name: name.to_string(),
            labels: own_labels(labels),
            value: Value::Counter(v),
        });
    }

    /// Appends a gauge entry.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.entries.push(Entry {
            name: name.to_string(),
            labels: own_labels(labels),
            value: Value::Gauge(v),
        });
    }

    /// Appends a histogram entry.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: HistogramSnapshot) {
        self.entries.push(Entry {
            name: name.to_string(),
            labels: own_labels(labels),
            value: Value::Histogram(h),
        });
    }

    /// Folds `other` in by `(name, labels)` identity: counters and
    /// gauges add, histograms bucket-merge, unmatched entries append.
    /// Gauges add because merged snapshots come from shards whose
    /// levels (queue depths, bytes) are naturally summed.
    pub fn merge(&mut self, other: &Snapshot) {
        for e in &other.entries {
            let found = self
                .entries
                .iter_mut()
                .find(|m| m.name == e.name && m.labels == e.labels);
            match found {
                Some(mine) => match (&mut mine.value, &e.value) {
                    (Value::Counter(a), Value::Counter(b)) => *a += b,
                    (Value::Gauge(a), Value::Gauge(b)) => *a += b,
                    (Value::Histogram(a), Value::Histogram(b)) => a.merge(b),
                    // Kind mismatch between shards would be a wiring
                    // bug; keep the first kind rather than panicking
                    // on a diagnostics path.
                    _ => {}
                },
                None => self.entries.push(e.clone()),
            }
        }
        let mut flight: Vec<FlightEvent> = self
            .flight
            .iter()
            .cloned()
            .chain(other.flight.iter().cloned())
            .collect();
        flight.sort_by_key(|e| (e.at_micros, e.seq));
        self.flight = flight;
    }

    /// Prometheus text exposition format (version 0.0.4): `# TYPE`
    /// lines, sanitized names, escaped label values, and cumulative
    /// `_bucket{le=...}` series ending in `+Inf` for histograms.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: Vec<String> = Vec::new();
        for e in &self.entries {
            let name = sanitize_name(&e.name);
            match &e.value {
                Value::Counter(v) => {
                    type_line(&mut out, &mut typed, &name, "counter");
                    push_sample(&mut out, &name, &e.labels, None, &v.to_string());
                }
                Value::Gauge(v) => {
                    type_line(&mut out, &mut typed, &name, "gauge");
                    push_sample(&mut out, &name, &e.labels, None, &v.to_string());
                }
                Value::Histogram(h) => {
                    type_line(&mut out, &mut typed, &name, "histogram");
                    let bucket = format!("{name}_bucket");
                    for (ub, cum) in h.cumulative() {
                        push_sample(
                            &mut out,
                            &bucket,
                            &e.labels,
                            Some(&ub.to_string()),
                            &cum.to_string(),
                        );
                    }
                    push_sample(
                        &mut out,
                        &bucket,
                        &e.labels,
                        Some("+Inf"),
                        &h.count.to_string(),
                    );
                    push_sample(
                        &mut out,
                        &format!("{name}_sum"),
                        &e.labels,
                        None,
                        &h.sum.to_string(),
                    );
                    push_sample(
                        &mut out,
                        &format!("{name}_count"),
                        &e.labels,
                        None,
                        &h.count.to_string(),
                    );
                }
            }
        }
        out
    }

    /// Flattens to `(key, value)` string pairs for the wire frame.
    /// Histograms expand to `count/sum/p50/p90/p99/max` sub-keys;
    /// labels are folded into the key as `name{k=v,...}`; flight
    /// events become `f|<seq>` keys with the rendered line as value.
    pub fn to_pairs(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for e in &self.entries {
            let key = pair_key(&e.name, &e.labels);
            match &e.value {
                Value::Counter(v) | Value::Gauge(v) => out.push((key, v.to_string())),
                Value::Histogram(h) => {
                    out.push((format!("{key}.count"), h.count.to_string()));
                    out.push((format!("{key}.sum"), h.sum.to_string()));
                    out.push((format!("{key}.p50"), h.p50().to_string()));
                    out.push((format!("{key}.p90"), h.p90().to_string()));
                    out.push((format!("{key}.p99"), h.p99().to_string()));
                    out.push((format!("{key}.max"), h.max.to_string()));
                }
            }
        }
        for ev in &self.flight {
            out.push((format!("f|{}", ev.seq), ev.render()));
        }
        out
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn pair_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", body.join(","))
}

/// Emits a `# TYPE` header once per metric family.
fn type_line(out: &mut String, typed: &mut Vec<String>, name: &str, kind: &str) {
    if typed.iter().any(|t| t == name) {
        return;
    }
    typed.push(name.to_string());
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// One sample line: `name{labels} value\n`, with `le` appended for
/// histogram buckets.
fn push_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    le: Option<&str>,
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&sanitize_name(k));
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Maps a raw name onto the Prometheus charset `[a-zA-Z0-9_:]`,
/// replacing anything else with `_` and prefixing `_` if the first
/// character is a digit. Empty names become `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn counters_and_gauges_render() {
        let mut s = Snapshot::default();
        s.counter("pequod_ops_total", &[("op", "scan")], 7);
        s.gauge("pequod_active_conns", &[], 3);
        let text = s.to_prometheus();
        assert!(text.contains("# TYPE pequod_ops_total counter"));
        assert!(text.contains("pequod_ops_total{op=\"scan\"} 7"));
        assert!(text.contains("pequod_active_conns 3"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let h = Histogram::new();
        h.observe(1);
        h.observe(5);
        let mut s = Snapshot::default();
        s.histogram("lat_us", &[], h.snapshot());
        let text = s.to_prometheus();
        assert!(text.contains("# TYPE lat_us histogram"));
        assert!(text.contains("lat_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_us_bucket{le=\"7\"} 2"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_us_sum 6"));
        assert!(text.contains("lat_us_count 2"));
    }

    #[test]
    fn merge_adds_matching_and_appends_new() {
        let mut a = Snapshot::default();
        a.counter("x", &[("k", "1")], 5);
        let mut b = Snapshot::default();
        b.counter("x", &[("k", "1")], 3);
        b.counter("y", &[], 2);
        a.merge(&b);
        assert_eq!(a.entries.len(), 2);
        match &a.entries[0].value {
            Value::Counter(v) => assert_eq!(*v, 8),
            v => panic!("wrong kind {v:?}"),
        }
    }

    #[test]
    fn sanitize_and_escape() {
        assert_eq!(sanitize_name("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn pairs_flatten_histograms_and_flight() {
        let h = Histogram::new();
        h.observe(4);
        let mut s = Snapshot::default();
        s.counter("ops", &[], 1);
        s.histogram("lat", &[("op", "put")], h.snapshot());
        s.flight.push(FlightEvent {
            seq: 9,
            at_micros: 1,
            kind: "evict",
            detail: "x".into(),
        });
        let pairs = s.to_pairs();
        assert!(pairs.contains(&("ops".to_string(), "1".to_string())));
        assert!(pairs.iter().any(|(k, _)| k == "lat{op=put}.p99"));
        assert!(pairs.iter().any(|(k, _)| k == "f|9"));
    }
}
