//! Hand-rolled single-threaded HTTP responder for Prometheus scrapes.
//!
//! One accept loop on one thread, one request per connection, no
//! keep-alive: exactly what a scrape endpoint needs and nothing more.
//! `GET /metrics` returns the exposition text, `GET /flight` the
//! rendered flight-recorder ring, anything else 404. The responder is
//! deliberately off the serving path — a slow or malicious scraper can
//! only stall its own connection, never the engine.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::SnapshotFn;

/// Background metrics scrape endpoint bound to a TCP address.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and spawns the accept loop. `provider` is invoked
    /// per scrape; its argument is `true` when the flight ring should
    /// be included (the `/flight` route).
    pub fn spawn(addr: &str, provider: SnapshotFn) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("metrics-http".into())
            .spawn(move || accept_loop(listener, provider, stop2))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection; if it
        // fails the loop still exits on its accept-timeout fallback.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown();
        }
    }
}

fn accept_loop(listener: TcpListener, provider: SnapshotFn, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        serve_one(&mut stream, &provider);
    }
}

/// Reads the request head (up to the blank line or 4 KiB), routes,
/// writes one HTTP/1.0 response.
fn serve_one(stream: &mut TcpStream, provider: &SnapshotFn) {
    let mut buf = [0u8; 4096];
    let mut n = 0usize;
    loop {
        match stream.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(m) => {
                n += m;
                if buf[..n].windows(4).any(|w| w == b"\r\n\r\n") || n == buf.len() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    if n == 0 {
        return;
    }
    let head = String::from_utf8_lossy(&buf[..n]);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else {
        match path {
            "/metrics" | "/" => ("200 OK", provider(false).to_prometheus()),
            "/flight" => {
                let snap = provider(true);
                let mut out = String::new();
                for ev in &snap.flight {
                    out.push_str(&ev.render());
                    out.push('\n');
                }
                if out.is_empty() {
                    out.push_str("(flight ring empty)\n");
                }
                ("200 OK", out)
            }
            _ => ("404 Not Found", "not found\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Snapshot;

    fn fetch(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        let req = format!("GET {path} HTTP/1.0\r\n\r\n");
        s.write_all(req.as_bytes()).expect("write");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_metrics_and_routes() {
        let provider: SnapshotFn = Arc::new(|flight| {
            let mut s = Snapshot::default();
            s.counter("test_total", &[], 42);
            if flight {
                s.flight.push(crate::FlightEvent {
                    seq: 0,
                    at_micros: 5,
                    kind: "evict",
                    detail: "x".into(),
                });
            }
            s
        });
        let srv = MetricsServer::spawn("127.0.0.1:0", provider).expect("spawn");
        let addr = srv.local_addr();
        let metrics = fetch(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200 OK"));
        assert!(metrics.contains("test_total 42"));
        let flight = fetch(addr, "/flight");
        assert!(flight.contains("evict x"));
        let missing = fetch(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));
        srv.stop();
    }
}
