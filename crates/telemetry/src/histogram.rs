//! Lock-free counters and log₂-bucketed histograms.
//!
//! A [`Histogram`] is an array of atomic bucket counters indexed by
//! `⌈log₂(v+1)⌉`, plus exact atomic `count`, `sum`, and `max` words.
//! Writers only ever do relaxed `fetch_add`/`fetch_max`, so concurrent
//! observation from any number of threads is wait-free and never
//! loses an event: merged totals across writer threads are *exact*
//! (the quantiles are bucket-resolution approximations, the counts and
//! sums are not).

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: values 0 and every power-of-two band of `u64` get one
/// bucket (`⌈log₂(u64::MAX)⌉ = 64`, plus the zero bucket).
pub const BUCKETS: usize = 65;

/// The bucket a value lands in: 0 → bucket 0, otherwise
/// `64 - leading_zeros(v)` (so bucket `i` holds `2^(i-1) ..= 2^i - 1`).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The largest value bucket `i` can hold (its inclusive upper bound).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A monotonically increasing event counter (relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free log₂-bucketed histogram of `u64` samples (latencies in
/// microseconds, queue depths, fan-out widths…).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free; safe from any thread.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy. Concurrent writers may land between the
    /// individual loads; totals remain self-consistent to within the
    /// in-flight samples.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`], mergeable across shards.
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_of`] for the banding).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample observed (exact, not bucket-rounded).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds another snapshot in: bucket-wise and total sums, max of
    /// maxes. Merging per-shard snapshots yields exactly the histogram
    /// a single shared instance would have recorded.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The approximate `q`-quantile (0.0–1.0): the inclusive upper
    /// bound of the bucket holding the `⌈q·count⌉`-th sample, capped at
    /// the exact observed max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// `(upper_bound, cumulative_count)` pairs for Prometheus
    /// exposition: one entry per bucket up to the highest non-empty
    /// one (the `+Inf` bucket is the total count and is emitted by the
    /// encoder).
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let last = match self.buckets.iter().rposition(|&b| b > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(last + 1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate().take(last + 1) {
            seen += b;
            out.push((bucket_upper(i), seen));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_band_by_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(3), 7);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        // The 500th sample (value 500) lands in the 256..=511 bucket,
        // so the bucket-resolution p50 reports that bucket's bound.
        assert_eq!(s.p50(), 511);
        assert_eq!(s.p99(), 1000); // capped at the exact max
        assert!(s.quantile(0.01) <= 16);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0);
        assert!(s.cumulative().is_empty());
    }

    #[test]
    fn merge_is_exact_on_totals() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.observe(v);
            b.observe(v * 3);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 200);
        assert_eq!(m.sum, (0..100).sum::<u64>() * 4);
        assert_eq!(m.max, 297);
        let whole = Histogram::new();
        for v in 0..100u64 {
            whole.observe(v);
            whole.observe(v * 3);
        }
        assert_eq!(m.buckets, whole.snapshot().buckets);
    }

    #[test]
    fn cumulative_ends_at_count() {
        let h = Histogram::new();
        for v in [0, 1, 5, 5, 900] {
            h.observe(v);
        }
        let s = h.snapshot();
        let cum = s.cumulative();
        assert_eq!(cum.last().map(|&(_, c)| c), Some(s.count));
        // Monotone in both coordinates.
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }
}
