//! Runtime telemetry for the Pequod reproduction.
//!
//! A [`Recorder`] is a cheap-clone handle over an optional shared
//! metrics block. When built with [`Recorder::disabled`] every method
//! is a true no-op — no atomic traffic, no clock reads — so serving
//! code can thread recorders unconditionally and pay nothing unless
//! telemetry was switched on. When enabled, hot-path recording is a
//! handful of relaxed atomic adds (see [`Histogram`]).
//!
//! The recorder carries a fixed schema covering every layer of the
//! system: per-op counts and latency histograms, join-notify fan-out,
//! LRU hits/misses/evictions, per-range read/write rate counters (fuel
//! for future adaptive freshness policies), WAL append/fsync latency,
//! snapshot bytes, reactor dispatch latency and queue depths — plus a
//! [`Flight`] ring of recent notable events. [`Recorder::snapshot`]
//! freezes it all into a mergeable [`Snapshot`].
//!
//! This is the only first-party crate allowed to call `Instant::now`:
//! `cargo xtask audit` scopes its wall-clock rule to permit monotonic
//! reads here and nowhere else, keeping the serving state machines
//! deterministic while latency measurement stays real. `SystemTime`
//! remains banned even here — telemetry never needs calendar time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

mod flight;
mod histogram;
mod http;
mod snapshot;

pub use flight::{Flight, FlightEvent};
pub use histogram::{Counter, Histogram, HistogramSnapshot, BUCKETS};
pub use http::MetricsServer;
pub use snapshot::{escape_label_value, sanitize_name, Entry, Snapshot, Value};

/// Produces a snapshot on demand; the argument asks for the flight
/// ring to be included. Shared by the HTTP scrape endpoint and the
/// `Message::Metrics` wire handlers.
pub type SnapshotFn = Arc<dyn Fn(bool) -> Snapshot + Send + Sync>;

/// Operation classes instrumented on the engine hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Range read (`Scan` / `Get`).
    Scan,
    /// Aggregate read (`Count`).
    Count,
    /// Point write.
    Put,
    /// Point delete.
    Remove,
    /// Join registration.
    AddJoin,
}

const OP_KINDS: usize = 5;

impl OpKind {
    /// Stable label value for this op class.
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Scan => "scan",
            OpKind::Count => "count",
            OpKind::Put => "put",
            OpKind::Remove => "remove",
            OpKind::AddJoin => "add_join",
        }
    }

    fn index(self) -> usize {
        match self {
            OpKind::Scan => 0,
            OpKind::Count => 1,
            OpKind::Put => 2,
            OpKind::Remove => 3,
            OpKind::AddJoin => 4,
        }
    }
}

/// A started latency measurement. Disabled timers (from a disabled
/// recorder) never read the clock; observing them is a no-op.
#[derive(Clone, Copy, Debug)]
pub struct Timer(Option<Instant>);

impl Timer {
    /// Starts a live timer unconditionally. Use [`Recorder::timer`]
    /// instead when a recorder is in scope so the disabled path stays
    /// clock-free; this constructor exists for measurement harnesses
    /// (e.g. the bench swarm) that always want a reading.
    pub fn start() -> Timer {
        Timer(Some(Instant::now()))
    }

    /// A timer that observes as `None`.
    pub fn disabled() -> Timer {
        Timer(None)
    }

    /// Elapsed microseconds, saturated to `u64`; `None` if disabled.
    pub fn elapsed_micros(&self) -> Option<u64> {
        self.0
            .map(|t| u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX))
    }
}

/// Number of per-range rate slots. Slot 0 is the shared overflow
/// bucket (`other`) once the table fills; a fixed table keeps the hot
/// path allocation- and lock-free after registration.
const RATE_SLOTS: usize = 64;

/// Default slow-op threshold for flight-recorder capture.
const DEFAULT_SLOW_OP_MICROS: u64 = 10_000;

/// Default flight ring capacity.
const DEFAULT_FLIGHT_CAP: usize = 256;

#[derive(Debug, Default)]
struct RateSlot {
    reads: Counter,
    writes: Counter,
}

/// A registered per-range rate estimator: two relaxed counter bumps,
/// no lookup, no lock. Obtained from [`Recorder::rate_handle`].
#[derive(Clone, Debug)]
pub struct RateHandle(Option<(Arc<Inner>, usize)>);

impl RateHandle {
    /// Records one read against this range.
    #[inline]
    pub fn read(&self) {
        if let Some((inner, slot)) = &self.0 {
            inner.rate_slots[*slot].reads.inc();
        }
    }

    /// Records one write against this range.
    #[inline]
    pub fn write(&self) {
        if let Some((inner, slot)) = &self.0 {
            inner.rate_slots[*slot].writes.inc();
        }
    }
}

#[derive(Debug)]
struct Inner {
    start: Instant,
    slow_op_micros: u64,
    ops: [Histogram; OP_KINDS],
    fanout: Histogram,
    lru_hits: Counter,
    lru_misses: Counter,
    evict_js: Counter,
    evict_base: Counter,
    rate_slots: Vec<RateSlot>,
    /// `(name, slot)` registrations, guarded; read only at
    /// registration and snapshot time.
    rate_names: Mutex<Vec<(String, usize)>>,
    rate_next: AtomicU64,
    wal_append: Histogram,
    wal_fsync: Histogram,
    wal_records: Counter,
    snapshot_bytes: Counter,
    snapshots: Counter,
    dispatch: Histogram,
    queue_depth: Histogram,
    flight: Flight,
}

/// Handle to a shared telemetry block; see the crate docs.
#[derive(Clone, Debug, Default)]
pub struct Recorder(Option<Arc<Inner>>);

impl Recorder {
    /// An enabled recorder with default thresholds.
    pub fn enabled() -> Recorder {
        Recorder::with_options(DEFAULT_SLOW_OP_MICROS, DEFAULT_FLIGHT_CAP)
    }

    /// An enabled recorder with an explicit slow-op threshold (µs) and
    /// flight-ring capacity.
    pub fn with_options(slow_op_micros: u64, flight_cap: usize) -> Recorder {
        Recorder(Some(Arc::new(Inner {
            start: Instant::now(),
            slow_op_micros,
            ops: std::array::from_fn(|_| Histogram::new()),
            fanout: Histogram::new(),
            lru_hits: Counter::new(),
            lru_misses: Counter::new(),
            evict_js: Counter::new(),
            evict_base: Counter::new(),
            rate_slots: (0..RATE_SLOTS).map(|_| RateSlot::default()).collect(),
            rate_names: Mutex::new(Vec::new()),
            rate_next: AtomicU64::new(1),
            wal_append: Histogram::new(),
            wal_fsync: Histogram::new(),
            wal_records: Counter::new(),
            snapshot_bytes: Counter::new(),
            snapshots: Counter::new(),
            dispatch: Histogram::new(),
            queue_depth: Histogram::new(),
            flight: Flight::new(flight_cap),
        })))
    }

    /// A recorder whose every method is a no-op.
    pub fn disabled() -> Recorder {
        Recorder(None)
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Starts a latency timer; disabled recorders return a timer that
    /// never read the clock.
    #[inline]
    pub fn timer(&self) -> Timer {
        if self.0.is_some() {
            Timer::start()
        } else {
            Timer::disabled()
        }
    }

    /// Microseconds since the recorder was created (0 when disabled).
    pub fn uptime_micros(&self) -> u64 {
        match &self.0 {
            Some(i) => u64::try_from(i.start.elapsed().as_micros()).unwrap_or(u64::MAX),
            None => 0,
        }
    }

    /// Records one completed operation. A sample over the slow-op
    /// threshold is also captured in the flight ring.
    #[inline]
    pub fn observe_op(&self, kind: OpKind, timer: &Timer) {
        let Some(inner) = &self.0 else { return };
        let Some(micros) = timer.elapsed_micros() else {
            return;
        };
        inner.ops[kind.index()].observe(micros);
        if micros >= inner.slow_op_micros {
            inner.flight.push(
                self.uptime_micros(),
                "slow_op",
                format!("{} took {micros}us", kind.as_str()),
            );
        }
    }

    /// Records the fan-out width of one join-notify dispatch (the
    /// number of updater entries a single write touched).
    #[inline]
    pub fn observe_fanout(&self, width: u64) {
        if let Some(inner) = &self.0 {
            inner.fanout.observe(width);
        }
    }

    /// One LRU validation that found the range already materialized.
    #[inline]
    pub fn lru_hit(&self) {
        if let Some(inner) = &self.0 {
            inner.lru_hits.inc();
        }
    }

    /// One LRU validation that had to materialize a gap.
    #[inline]
    pub fn lru_miss(&self) {
        if let Some(inner) = &self.0 {
            inner.lru_misses.inc();
        }
    }

    /// One join-state range evicted; captured in the flight ring.
    /// The detail closure only runs when enabled.
    pub fn evicted_js(&self, detail: impl FnOnce() -> String) {
        if let Some(inner) = &self.0 {
            inner.evict_js.inc();
            inner
                .flight
                .push(self.uptime_micros(), "evict_js", detail());
        }
    }

    /// One base range evicted; captured in the flight ring.
    pub fn evicted_base(&self, detail: impl FnOnce() -> String) {
        if let Some(inner) = &self.0 {
            inner.evict_base.inc();
            inner
                .flight
                .push(self.uptime_micros(), "evict_base", detail());
        }
    }

    /// Pushes an arbitrary flight event (failovers, backpressure
    /// trips…). The detail closure only runs when enabled.
    pub fn flight(&self, kind: &'static str, detail: impl FnOnce() -> String) {
        if let Some(inner) = &self.0 {
            inner.flight.push(self.uptime_micros(), kind, detail());
        }
    }

    /// Registers (or looks up) a named per-range rate estimator.
    /// After the fixed table fills, further names share the overflow
    /// slot (`other`). Callers should cache the returned handle; this
    /// call takes a mutex.
    pub fn rate_handle(&self, name: &str) -> RateHandle {
        let Some(inner) = &self.0 else {
            return RateHandle(None);
        };
        let mut names = match inner.rate_names.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if let Some((_, slot)) = names.iter().find(|(n, _)| n == name) {
            return RateHandle(Some((Arc::clone(inner), *slot)));
        }
        let next = inner.rate_next.load(Ordering::Relaxed) as usize;
        let slot = if next < RATE_SLOTS {
            inner.rate_next.store(next as u64 + 1, Ordering::Relaxed);
            names.push((name.to_string(), next));
            next
        } else {
            // Table full: everyone else shares the overflow slot.
            if !names.iter().any(|(n, _)| n == "other") {
                names.push(("other".to_string(), 0));
            }
            0
        };
        RateHandle(Some((Arc::clone(inner), slot)))
    }

    /// Records one WAL append's latency.
    #[inline]
    pub fn wal_append(&self, timer: &Timer) {
        let Some(inner) = &self.0 else { return };
        if let Some(micros) = timer.elapsed_micros() {
            inner.wal_append.observe(micros);
            inner.wal_records.inc();
        }
    }

    /// Records one WAL fsync's latency.
    #[inline]
    pub fn wal_fsync(&self, timer: &Timer) {
        let Some(inner) = &self.0 else { return };
        if let Some(micros) = timer.elapsed_micros() {
            inner.wal_fsync.observe(micros);
        }
    }

    /// Records one snapshot compaction of `bytes` written; captured in
    /// the flight ring.
    pub fn snapshot_taken(&self, bytes: u64) {
        if let Some(inner) = &self.0 {
            inner.snapshots.inc();
            inner.snapshot_bytes.add(bytes);
            inner
                .flight
                .push(self.uptime_micros(), "snapshot", format!("{bytes} bytes"));
        }
    }

    /// Records one reactor dispatch's queue-to-reply latency.
    #[inline]
    pub fn observe_dispatch(&self, timer: &Timer) {
        let Some(inner) = &self.0 else { return };
        if let Some(micros) = timer.elapsed_micros() {
            inner.dispatch.observe(micros);
        }
    }

    /// Records a connection's pending-queue depth at dispatch time.
    #[inline]
    pub fn observe_queue_depth(&self, depth: u64) {
        if let Some(inner) = &self.0 {
            inner.queue_depth.observe(depth);
        }
    }

    /// Freezes the full metric schema into a [`Snapshot`]. Disabled
    /// recorders return an empty snapshot. The flight ring is included
    /// only when `include_flight` is set (dumps can be large).
    pub fn snapshot(&self, include_flight: bool) -> Snapshot {
        let mut s = Snapshot::default();
        let Some(inner) = &self.0 else { return s };
        s.gauge("pequod_uptime_us", &[], self.uptime_micros());
        for kind in [
            OpKind::Scan,
            OpKind::Count,
            OpKind::Put,
            OpKind::Remove,
            OpKind::AddJoin,
        ] {
            let h = inner.ops[kind.index()].snapshot();
            let labels = [("op", kind.as_str())];
            s.counter("pequod_op_total", &labels, h.count);
            s.histogram("pequod_op_latency_us", &labels, h);
        }
        s.histogram("pequod_join_fanout", &[], inner.fanout.snapshot());
        s.counter("pequod_lru_hits_total", &[], inner.lru_hits.get());
        s.counter("pequod_lru_misses_total", &[], inner.lru_misses.get());
        s.counter(
            "pequod_evictions_total",
            &[("kind", "js")],
            inner.evict_js.get(),
        );
        s.counter(
            "pequod_evictions_total",
            &[("kind", "base")],
            inner.evict_base.get(),
        );
        {
            let names = match inner.rate_names.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            for (name, slot) in names.iter() {
                let labels = [("range", name.as_str())];
                s.counter(
                    "pequod_range_reads_total",
                    &labels,
                    inner.rate_slots[*slot].reads.get(),
                );
                s.counter(
                    "pequod_range_writes_total",
                    &labels,
                    inner.rate_slots[*slot].writes.get(),
                );
            }
        }
        s.histogram("pequod_wal_append_us", &[], inner.wal_append.snapshot());
        s.histogram("pequod_wal_fsync_us", &[], inner.wal_fsync.snapshot());
        s.counter("pequod_wal_records_total", &[], inner.wal_records.get());
        s.counter(
            "pequod_snapshot_bytes_total",
            &[],
            inner.snapshot_bytes.get(),
        );
        s.counter("pequod_snapshots_total", &[], inner.snapshots.get());
        s.histogram("pequod_dispatch_us", &[], inner.dispatch.snapshot());
        s.histogram("pequod_queue_depth", &[], inner.queue_depth.snapshot());
        s.counter("pequod_flight_events_total", &[], inner.flight.total());
        if include_flight {
            s.flight = inner.flight.dump();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        let t = r.timer();
        assert!(t.elapsed_micros().is_none());
        r.observe_op(OpKind::Scan, &t);
        r.lru_hit();
        r.observe_fanout(10);
        r.evicted_js(|| panic!("detail closure must not run when disabled"));
        r.flight("x", || panic!("must not run"));
        let handle = r.rate_handle("t|");
        handle.read();
        let s = r.snapshot(true);
        assert!(s.entries.is_empty());
        assert!(s.flight.is_empty());
    }

    #[test]
    fn enabled_recorder_counts_ops() {
        let r = Recorder::enabled();
        let t = r.timer();
        r.observe_op(OpKind::Put, &t);
        r.lru_hit();
        r.lru_miss();
        r.observe_fanout(3);
        let s = r.snapshot(false);
        let put_total = s
            .entries
            .iter()
            .find(|e| e.name == "pequod_op_total" && e.labels.iter().any(|(_, v)| v == "put"));
        match put_total.map(|e| &e.value) {
            Some(Value::Counter(v)) => assert_eq!(*v, 1),
            v => panic!("missing put counter: {v:?}"),
        }
    }

    #[test]
    fn slow_ops_land_in_flight_ring() {
        let r = Recorder::with_options(0, 8); // everything is "slow"
        let t = r.timer();
        r.observe_op(OpKind::Scan, &t);
        let s = r.snapshot(true);
        assert_eq!(s.flight.len(), 1);
        assert_eq!(s.flight[0].kind, "slow_op");
    }

    #[test]
    fn rate_table_registers_and_overflows() {
        let r = Recorder::enabled();
        let a = r.rate_handle("t|");
        let a2 = r.rate_handle("t|");
        a.read();
        a2.read();
        a.write();
        // Fill the table past capacity; extras share the overflow slot.
        for i in 0..100 {
            r.rate_handle(&format!("spill{i}|")).write();
        }
        let s = r.snapshot(false);
        let reads = s
            .entries
            .iter()
            .find(|e| {
                e.name == "pequod_range_reads_total" && e.labels.iter().any(|(_, v)| v == "t|")
            })
            .map(|e| match &e.value {
                Value::Counter(v) => *v,
                _ => 0,
            });
        assert_eq!(reads, Some(2));
        assert!(s
            .entries
            .iter()
            .any(|e| e.labels.iter().any(|(_, v)| v == "other")));
    }

    #[test]
    fn per_shard_snapshots_merge_exactly() {
        let shards: Vec<Recorder> = (0..4).map(|_| Recorder::enabled()).collect();
        for (i, r) in shards.iter().enumerate() {
            for _ in 0..=i {
                let t = r.timer();
                r.observe_op(OpKind::Scan, &t);
                r.lru_hit();
            }
        }
        let mut merged = Snapshot::default();
        for r in &shards {
            merged.merge(&r.snapshot(false));
        }
        let hits = merged
            .entries
            .iter()
            .find(|e| e.name == "pequod_lru_hits_total")
            .map(|e| match &e.value {
                Value::Counter(v) => *v,
                _ => 0,
            });
        assert_eq!(hits, Some(1 + 2 + 3 + 4));
    }
}
