//! The flight recorder: a fixed-size ring of recent structured events.
//!
//! Low-frequency, high-signal happenings (evictions, failovers, slow
//! ops over a threshold, backpressure trips) are pushed into a bounded
//! ring buffer and can be dumped on demand — the observability
//! equivalent of a black box. Pushes take a short mutex; this is fine
//! because flight events are rare by construction (the hot path only
//! records one when something unusual happened).

use std::collections::VecDeque;
use std::sync::Mutex;

/// One structured event captured by the flight recorder.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Monotone per-recorder sequence number (never reused, so a
    /// consumer can detect how many events the ring evicted between
    /// two dumps).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_micros: u64,
    /// Static event class, e.g. `"evict"`, `"failover"`, `"slow_op"`,
    /// `"backpressure"`.
    pub kind: &'static str,
    /// Free-form human-readable detail.
    pub detail: String,
}

impl FlightEvent {
    /// `+12.345s evict …` one-line rendering used by dumps.
    pub fn render(&self) -> String {
        format!(
            "+{}.{:06}s {} {}",
            self.at_micros / 1_000_000,
            self.at_micros % 1_000_000,
            self.kind,
            self.detail
        )
    }
}

/// Bounded ring buffer of [`FlightEvent`]s.
#[derive(Debug)]
pub struct Flight {
    ring: Mutex<FlightRing>,
    cap: usize,
}

#[derive(Debug, Default)]
struct FlightRing {
    events: VecDeque<FlightEvent>,
    next_seq: u64,
}

impl Flight {
    /// A ring holding at most `cap` events (oldest evicted first).
    pub fn new(cap: usize) -> Flight {
        Flight {
            ring: Mutex::new(FlightRing::default()),
            cap: cap.max(1),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, at_micros: u64, kind: &'static str, detail: String) {
        // A poisoned mutex only means a panicking thread died mid-push;
        // the ring contents are still a valid VecDeque, so keep going.
        let mut ring = match self.ring.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.cap {
            ring.events.pop_front();
        }
        ring.events.push_back(FlightEvent {
            seq,
            at_micros,
            kind,
            detail,
        });
    }

    /// Copies out the current contents, oldest first.
    pub fn dump(&self) -> Vec<FlightEvent> {
        let ring = match self.ring.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        ring.events.iter().cloned().collect()
    }

    /// Total events ever pushed (including ones the ring has evicted).
    pub fn total(&self) -> u64 {
        let ring = match self.ring.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        ring.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_seq() {
        let f = Flight::new(3);
        for i in 0..5u64 {
            f.push(i * 10, "evict", format!("unit {i}"));
        }
        let dump = f.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump[0].seq, 2);
        assert_eq!(dump[2].seq, 4);
        assert_eq!(f.total(), 5);
        assert_eq!(dump[0].detail, "unit 2");
    }

    #[test]
    fn render_formats_seconds() {
        let e = FlightEvent {
            seq: 0,
            at_micros: 1_500_000,
            kind: "slow_op",
            detail: "scan 1500us".into(),
        };
        assert_eq!(e.render(), "+1.500000s slow_op scan 1500us");
    }
}
