//! Concurrency stress for the lock-free primitives: many writer
//! threads hammer one shared [`Histogram`]/[`Counter`]/[`Recorder`]
//! and the merged totals must be *exact* — relaxed atomics may
//! reorder, but they never lose an increment.

use pequod_telemetry::{Histogram, HistogramSnapshot, OpKind, Recorder};
use std::sync::Arc;
use std::thread;

const WRITERS: usize = 8;
const PER_WRITER: u64 = 50_000;

#[test]
fn shared_histogram_totals_are_exact_under_contention() {
    let hist = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let hist = Arc::clone(&hist);
            thread::spawn(move || {
                // Deterministic per-thread value stream spanning many
                // buckets (w offsets the pattern so threads collide on
                // different buckets at different times).
                for i in 0..PER_WRITER {
                    hist.observe((i.wrapping_mul(2654435761) + w as u64) % 100_000);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread panicked");
    }
    let snap = hist.snapshot();
    let expected = WRITERS as u64 * PER_WRITER;
    assert_eq!(snap.count, expected, "observations were lost");
    let bucket_total: u64 = snap.buckets.iter().sum();
    assert_eq!(bucket_total, expected, "bucket counts disagree with count");
    // The sum is the same arithmetic series from every thread, so it
    // is exactly computable.
    let one_thread: u64 = (0..PER_WRITER)
        .map(|i| (i.wrapping_mul(2654435761)) % 100_000)
        .sum();
    let skewed: u64 = (0..WRITERS as u64)
        .map(|w| {
            (0..PER_WRITER)
                .map(|i| (i.wrapping_mul(2654435761) + w) % 100_000)
                .sum::<u64>()
        })
        .sum();
    assert!(one_thread <= skewed); // sanity on the closed form
    assert_eq!(snap.sum, skewed, "summed magnitudes were lost");
}

#[test]
fn per_shard_merge_equals_one_shared_histogram() {
    // The sharded deployment gives each shard its own recorder and
    // merges snapshots on demand; merged totals must equal what a
    // single contended histogram would have counted.
    let shared = Arc::new(Histogram::new());
    let per_shard: Vec<Arc<Histogram>> = (0..WRITERS).map(|_| Arc::new(Histogram::new())).collect();
    let handles: Vec<_> = per_shard
        .iter()
        .enumerate()
        .map(|(w, own)| {
            let shared = Arc::clone(&shared);
            let own = Arc::clone(own);
            thread::spawn(move || {
                for i in 0..PER_WRITER {
                    let v = (i ^ (w as u64) << 7) % 4096;
                    shared.observe(v);
                    own.observe(v);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread panicked");
    }
    let mut merged = HistogramSnapshot::default();
    for own in &per_shard {
        merged.merge(&own.snapshot());
    }
    let want = shared.snapshot();
    assert_eq!(merged.count, want.count);
    assert_eq!(merged.sum, want.sum);
    assert_eq!(merged.max, want.max);
    assert_eq!(merged.buckets, want.buckets);
    assert_eq!(merged.p50(), want.p50());
    assert_eq!(merged.p99(), want.p99());
}

#[test]
fn recorder_counters_are_exact_across_threads() {
    let recorder = Recorder::enabled();
    let handles: Vec<_> = (0..WRITERS)
        .map(|_| {
            let r = recorder.clone();
            thread::spawn(move || {
                for _ in 0..PER_WRITER {
                    let t = r.timer();
                    r.observe_op(OpKind::Put, &t);
                    r.lru_hit();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread panicked");
    }
    let expected = (WRITERS as u64 * PER_WRITER).to_string();
    let text = recorder.snapshot(false).to_prometheus();
    let put_line = text
        .lines()
        .find(|l| l.starts_with("pequod_op_total{op=\"put\"}"))
        .expect("put counter missing from scrape");
    assert!(
        put_line.ends_with(&expected),
        "op counter lost increments: {put_line}"
    );
    let hits_line = text
        .lines()
        .find(|l| l.starts_with("pequod_lru_hits_total"))
        .expect("lru hits counter missing from scrape");
    assert!(
        hits_line.ends_with(&expected),
        "lru counter lost increments: {hits_line}"
    );
}
