//! Property tests for the Prometheus exposition encoder: adversarial
//! metric names and label values must always produce well-formed
//! output (sanitized names, correctly escaped label values, one
//! sample per line, parseable values).

use pequod_telemetry::{escape_label_value, sanitize_name, Histogram, Snapshot};
use proptest::prelude::*;
use proptest::string::string_regex;

/// Raw names with characters outside the Prometheus charset.
fn raw_name() -> impl Strategy<Value = String> {
    #[allow(clippy::unwrap_used)] // static pattern, checked at test build
    string_regex("[a-zA-Z0-9 .:_/|-]{1,24}").unwrap()
}

/// Label values exercising every escape case: quote, backslash,
/// newline, braces, commas, equals.
fn raw_label() -> impl Strategy<Value = String> {
    #[allow(clippy::unwrap_used)]
    string_regex("[a-zA-Z0-9\"\\\n=,{} .-]{0,24}").unwrap()
}

/// A sample line is `name{labels} value` — check the name charset and
/// that the trailing value parses.
fn assert_line_well_formed(line: &str) {
    if line.is_empty() || line.starts_with('#') {
        return;
    }
    let name_end = line
        .find(['{', ' '])
        .unwrap_or(line.len());
    let name = &line[..name_end];
    assert!(!name.is_empty(), "empty metric name in {line:?}");
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        assert!(ok, "bad char {c:?} in metric name {name:?}");
    }
    let value = line.rsplit(' ').next().unwrap_or("");
    assert!(
        value.parse::<f64>().is_ok(),
        "unparseable sample value {value:?} in {line:?}"
    );
}

proptest! {
    #[test]
    fn sanitized_names_always_legal(name in raw_name()) {
        let s = sanitize_name(&name);
        prop_assert!(!s.is_empty());
        for (i, c) in s.chars().enumerate() {
            let ok = c.is_ascii_alphabetic() || c == '_' || c == ':'
                || (i > 0 && c.is_ascii_digit());
            prop_assert!(ok, "bad char {:?} in {:?}", c, s);
        }
    }

    #[test]
    fn escaping_round_trips(value in raw_label()) {
        let escaped = escape_label_value(&value);
        // Unescape and compare: the escape map must be injective.
        let mut un = String::new();
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('\\') => un.push('\\'),
                    Some('"') => un.push('"'),
                    Some('n') => un.push('\n'),
                    other => prop_assert!(false, "dangling escape {:?}", other),
                }
            } else {
                prop_assert!(c != '"' && c != '\n', "unescaped {:?}", c);
                un.push(c);
            }
        }
        prop_assert_eq!(un, value);
    }

    #[test]
    fn exposition_is_line_well_formed(
        name in raw_name(),
        key in raw_name(),
        label in raw_label(),
        count in 0u64..64,
        v in proptest::strategy::any::<u64>(),
    ) {
        let mut s = Snapshot::default();
        s.counter(&name, &[(key.as_str(), label.as_str())], v);
        let h = Histogram::new();
        for i in 0..count {
            h.observe(i * 37);
        }
        s.histogram(&name, &[(key.as_str(), label.as_str())], h.snapshot());
        let text = s.to_prometheus();
        // Escaped label values keep every sample on one line; a raw
        // newline in a label would break the line discipline. Skip
        // the +Inf bucket line's value check via the f64 parse —
        // "+Inf" itself parses as f64 infinity, which is the point.
        for line in text.lines() {
            assert_line_well_formed(line);
        }
        // The histogram's +Inf bucket always carries the total count.
        let inf = format!("le=\"+Inf\"}} {count}");
        prop_assert!(text.contains(&inf), "missing +Inf bucket in {}", text);
    }
}
