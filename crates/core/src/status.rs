//! Join status ranges (§3.2).
//!
//! "A join status range indicates whether a range of keys is up to date
//! with respect to the cache joins whose outputs overlap that range."
//! This implementation keeps one status map per installed join (rather
//! than one global cover); the maps are equivalent to the paper's single
//! cover restricted to that join and simplify interleaved joins, whose
//! outputs share tables but never keys.
//!
//! Each materialized range records the updaters installed for it (so
//! invalidation can tear them down), a log of pending check-source
//! modifications for lazy maintenance, and its computation tick for
//! `snapshot T` expiry.

use crate::types::{JsId, WriteKind};
use pequod_store::{IntervalId, Key, KeyRange, UpperBound};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// Validity of a materialized range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JsState {
    /// Outputs reflect all source modifications (modulo the pending log).
    Valid,
    /// Completely invalidated: outputs and updaters must be rebuilt.
    Invalid,
}

/// A check-source modification logged for lazy application (§3.2:
/// "partial invalidation instead logs the source modification into an
/// entry on the relevant join status range").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoggedMod {
    /// Index of the modified source within the join.
    pub source_idx: usize,
    /// The modified source key.
    pub key: Key,
    /// Kind of modification.
    pub kind: WriteKind,
}

/// One materialized output range of one join.
#[derive(Clone, Debug)]
pub struct JsRange {
    /// Stable id.
    pub id: JsId,
    /// Inclusive start of the output range.
    pub first: Key,
    /// Exclusive end of the output range.
    pub end: UpperBound,
    /// Validity.
    pub state: JsState,
    /// Engine tick at which the range was computed (snapshot expiry).
    pub computed_at: u64,
    /// Interval-tree nodes holding updaters installed for this range.
    pub updaters: Vec<IntervalId>,
    /// Pending lazily-applied source modifications.
    pub pending: Vec<LoggedMod>,
}

impl JsRange {
    /// The output range covered.
    pub fn range(&self) -> KeyRange {
        KeyRange {
            first: self.first.clone(),
            end: self.end.clone(),
        }
    }

    /// True if a snapshot range computed at `computed_at` with lifetime
    /// `ttl` has expired at `now`.
    pub fn snapshot_expired(&self, ttl: u64, now: u64) -> bool {
        now >= self.computed_at.saturating_add(ttl)
    }
}

/// A piece of a clip range classified against the status map.
#[derive(Clone, Debug, PartialEq)]
pub enum Segment {
    /// Covered by the given materialized range (whole range returned;
    /// it may extend beyond the clip).
    Covered(JsId),
    /// Not covered by any materialized range.
    Gap(KeyRange),
}

/// The status ranges of one join: a set of disjoint materialized output
/// ranges.
#[derive(Default, Debug)]
pub struct StatusMap {
    ranges: BTreeMap<Key, JsRange>,
    by_id: HashMap<JsId, Key>,
    next: u64,
}

impl StatusMap {
    /// Creates an empty map.
    pub fn new() -> StatusMap {
        StatusMap::default()
    }

    /// Number of materialized ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True if nothing is materialized.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Inserts a new valid range; the caller guarantees it is disjoint
    /// from existing ranges (it comes from a [`Segment::Gap`]).
    pub fn insert(&mut self, range: KeyRange, computed_at: u64) -> JsId {
        debug_assert!(!range.is_empty());
        debug_assert!(
            self.overlapping(&range).is_empty(),
            "status ranges must stay disjoint"
        );
        let id = JsId(self.next);
        self.next += 1;
        self.by_id.insert(id, range.first.clone());
        self.ranges.insert(
            range.first.clone(),
            JsRange {
                id,
                first: range.first,
                end: range.end,
                state: JsState::Valid,
                computed_at,
                updaters: Vec::new(),
                pending: Vec::new(),
            },
        );
        id
    }

    /// Looks up a range by id.
    pub fn get(&self, id: JsId) -> Option<&JsRange> {
        let first = self.by_id.get(&id)?;
        self.ranges.get(first)
    }

    /// Mutable lookup by id.
    pub fn get_mut(&mut self, id: JsId) -> Option<&mut JsRange> {
        let first = self.by_id.get(&id)?;
        self.ranges.get_mut(first)
    }

    /// Removes a range by id.
    pub fn remove(&mut self, id: JsId) -> Option<JsRange> {
        let first = self.by_id.remove(&id)?;
        self.ranges.remove(&first)
    }

    /// The ids of ranges overlapping `range`.
    pub fn overlapping(&self, range: &KeyRange) -> Vec<JsId> {
        if range.is_empty() {
            return vec![];
        }
        let mut out = Vec::new();
        if let Some((_, js)) = self
            .ranges
            .range::<Key, _>((Bound::Unbounded, Bound::Excluded(&range.first)))
            .next_back()
        {
            if js.range().overlaps(range) {
                out.push(js.id);
            }
        }
        for (first, js) in self
            .ranges
            .range::<Key, _>((Bound::Included(&range.first), Bound::Unbounded))
        {
            if !range.end.admits(first) {
                break;
            }
            if js.range().overlaps(range) {
                out.push(js.id);
            }
        }
        out
    }

    /// The range containing `key`, if any.
    pub fn covering(&self, key: &Key) -> Option<JsId> {
        let (_, js) = self
            .ranges
            .range::<Key, _>((Bound::Unbounded, Bound::Included(key)))
            .next_back()?;
        js.range().contains(key).then_some(js.id)
    }

    /// Classifies `clip` into covered ranges and gaps, in key order.
    pub fn segments(&self, clip: &KeyRange) -> Vec<Segment> {
        if clip.is_empty() {
            return vec![];
        }
        let mut out = Vec::new();
        let mut cursor = clip.first.clone();
        for id in self.overlapping(clip) {
            let Some(js) = self.get(id) else { continue };
            if js.first > cursor {
                out.push(Segment::Gap(KeyRange {
                    first: cursor.clone(),
                    end: UpperBound::Excluded(js.first.clone()),
                }));
            }
            out.push(Segment::Covered(id));
            match &js.end {
                UpperBound::Unbounded => return out,
                UpperBound::Excluded(e) => cursor = cursor.max(e.clone()),
            }
        }
        let tail = KeyRange {
            first: cursor,
            end: clip.end.clone(),
        };
        if !tail.is_empty() {
            out.push(Segment::Gap(tail));
        }
        out
    }

    /// Iterates all ranges in key order.
    pub fn iter(&self) -> impl Iterator<Item = &JsRange> {
        self.ranges.values()
    }

    /// Exhaustive consistency check of the map's internal indexes, used
    /// by the paranoid invariant checker (`Engine::check_invariants`).
    /// Returns one message per problem; empty means consistent.
    pub fn audit(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.by_id.len() != self.ranges.len() {
            problems.push(format!(
                "status id-index has {} entries but {} ranges exist",
                self.by_id.len(),
                self.ranges.len()
            ));
        }
        let mut prev: Option<&JsRange> = None;
        for (first, js) in &self.ranges {
            if &js.first != first {
                problems.push(format!(
                    "status range keyed at {first:?} records first = {:?}",
                    js.first
                ));
            }
            if js.range().is_empty() {
                problems.push(format!("status range {:?} is empty", js.id));
            }
            match self.by_id.get(&js.id) {
                Some(k) if k == first => {}
                Some(k) => problems.push(format!(
                    "status id {:?} maps to {k:?}, not its range start {first:?}",
                    js.id
                )),
                None => problems.push(format!("status id {:?} missing from id-index", js.id)),
            }
            if let Some(p) = prev {
                if p.end.admits(&js.first) {
                    problems.push(format!(
                        "status ranges overlap: {:?} and {:?}",
                        p.range(),
                        js.range()
                    ));
                }
            }
            prev = Some(js);
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: &str, b: &str) -> KeyRange {
        KeyRange::new(a, b)
    }

    #[test]
    fn insert_and_lookup() {
        let mut m = StatusMap::new();
        let a = m.insert(r("b", "f"), 0);
        let b = m.insert(r("m", "p"), 1);
        assert_ne!(a, b);
        assert_eq!(m.get(a).unwrap().range(), r("b", "f"));
        assert_eq!(m.covering(&Key::from("c")), Some(a));
        assert_eq!(m.covering(&Key::from("g")), None);
        assert_eq!(m.covering(&Key::from("m")), Some(b));
        assert!(m.remove(a).is_some());
        assert_eq!(m.covering(&Key::from("c")), None);
    }

    #[test]
    fn segments_classify_gaps_and_covers() {
        let mut m = StatusMap::new();
        let a = m.insert(r("d", "f"), 0);
        let b = m.insert(r("h", "k"), 0);
        let segs = m.segments(&r("b", "z"));
        assert_eq!(
            segs,
            vec![
                Segment::Gap(r("b", "d")),
                Segment::Covered(a),
                Segment::Gap(r("f", "h")),
                Segment::Covered(b),
                Segment::Gap(r("k", "z")),
            ]
        );
    }

    #[test]
    fn segments_with_partial_overlap_at_start() {
        let mut m = StatusMap::new();
        let a = m.insert(r("b", "f"), 0);
        // clip starts inside the covered range
        let segs = m.segments(&r("d", "h"));
        assert_eq!(segs, vec![Segment::Covered(a), Segment::Gap(r("f", "h"))]);
        // clip entirely inside
        let segs = m.segments(&r("c", "e"));
        assert_eq!(segs, vec![Segment::Covered(a)]);
    }

    #[test]
    fn segments_of_empty_map_is_one_gap() {
        let m = StatusMap::new();
        assert_eq!(m.segments(&r("a", "b")), vec![Segment::Gap(r("a", "b"))]);
        assert!(m.segments(&r("b", "a")).is_empty());
    }

    #[test]
    fn unbounded_cover_short_circuits() {
        let mut m = StatusMap::new();
        let a = m.insert(KeyRange::with_bound("m", UpperBound::Unbounded), 0);
        let segs = m.segments(&KeyRange::with_bound("a", UpperBound::Unbounded));
        assert_eq!(segs, vec![Segment::Gap(r("a", "m")), Segment::Covered(a)]);
    }

    #[test]
    fn snapshot_expiry() {
        let mut m = StatusMap::new();
        let a = m.insert(r("a", "b"), 100);
        let js = m.get(a).unwrap();
        assert!(!js.snapshot_expired(30, 129));
        assert!(js.snapshot_expired(30, 130));
    }
}
