//! Updaters: the incremental-maintenance hooks attached to source ranges
//! (§3.2).
//!
//! "An updater links a range of source keys with a context—a cache join,
//! a slot set, and a join status range." Updaters live in an interval
//! tree so a store write can find every applicable updater with one
//! stabbing query. Overlapping updaters are coalesced: entries installed
//! for exactly the same source range share one tree node ("if a new
//! updater is installed for the same source range as an existing
//! updater ... Pequod reduces memory usage and the size of the updater
//! tree by appending information about the new updater to the existing
//! one").

use crate::types::{JoinId, JsId};
use pequod_join::SlotSet;
use pequod_store::{IntervalId, IntervalTree, Key, KeyRange, UpperBound};
use std::collections::HashMap;

/// An output hint (§4.2): the last aggregate output maintained through
/// this updater, letting the next maintenance event skip the store
/// lookup of the current aggregate value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputHint {
    /// The output key last written.
    pub out_key: Key,
    /// Its current numeric value (count/sum).
    pub num: i64,
}

/// One maintenance registration: join + source + context slot set +
/// target join status range.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdaterEntry {
    /// The join being maintained.
    pub join: JoinId,
    /// Which source of that join this updater watches.
    pub source_idx: usize,
    /// Slot bindings captured when the updater was installed.
    pub slots: SlotSet,
    /// The join status range kept up to date.
    pub js: JsId,
    /// Cached aggregate output (None for copy/check sources or when
    /// output hints are disabled).
    pub hint: Option<OutputHint>,
}

/// The engine-wide updater index.
#[derive(Default)]
pub struct UpdaterIndex {
    tree: IntervalTree<Vec<UpdaterEntry>>,
    by_range: HashMap<(Key, Option<Key>), IntervalId>,
    entries: usize,
    /// Live node count per table prefix: lets the write path skip the
    /// stabbing query entirely for tables that no join watches (output
    /// tables see the most writes and almost never carry updaters).
    per_table: HashMap<Key, usize>,
}

impl UpdaterIndex {
    /// Creates an empty index.
    pub fn new() -> UpdaterIndex {
        UpdaterIndex::default()
    }

    /// Number of tree nodes (distinct source ranges).
    pub fn node_count(&self) -> usize {
        self.tree.len()
    }

    /// Number of updater entries across all nodes.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    fn range_key(range: &KeyRange) -> (Key, Option<Key>) {
        (
            range.first.clone(),
            match &range.end {
                UpperBound::Excluded(e) => Some(e.clone()),
                UpperBound::Unbounded => None,
            },
        )
    }

    /// Installs an updater for `range`, coalescing with an existing node
    /// covering exactly the same range. Identical duplicate entries are
    /// dropped. Returns the tree node id.
    pub fn install(&mut self, range: KeyRange, entry: UpdaterEntry) -> IntervalId {
        let rk = Self::range_key(&range);
        if let Some(&id) = self.by_range.get(&rk) {
            match self.tree.get_mut(id) {
                Some(list) => {
                    if !list.contains(&entry) {
                        list.push(entry);
                        self.entries += 1;
                    }
                    return id;
                }
                // A stale coalescing entry pointing at a dropped node:
                // heal it and fall through to a fresh insert.
                None => {
                    self.by_range.remove(&rk);
                }
            }
        }
        *self
            .per_table
            .entry(range.first.table_prefix())
            .or_insert(0) += 1;
        let id = self.tree.insert(range, vec![entry]);
        self.by_range.insert(rk, id);
        self.entries += 1;
        id
    }

    /// True if no updater watches any range of `key`'s table. Ranges are
    /// indexed by their start key's table; Pequod source ranges never
    /// span tables (they come from single-table patterns).
    pub fn table_is_quiet(&self, key: &Key) -> bool {
        self.per_table
            .get(&key.table_prefix())
            .is_none_or(|&n| n == 0)
    }

    /// Node ids whose range contains `key`.
    pub fn stab(&self, key: &Key) -> Vec<IntervalId> {
        self.tree.stab_ids(key)
    }

    /// Node ids whose range overlaps `range`.
    pub fn overlapping(&self, range: &KeyRange) -> Vec<IntervalId> {
        self.tree.overlapping_ids(range)
    }

    /// The entries of a node.
    pub fn entries(&mut self, id: IntervalId) -> Option<&Vec<UpdaterEntry>> {
        self.tree.get_mut(id).map(|v| &*v)
    }

    /// Mutable access to one entry of a node.
    pub fn entry_mut(&mut self, id: IntervalId, idx: usize) -> Option<&mut UpdaterEntry> {
        self.tree.get_mut(id)?.get_mut(idx)
    }

    /// Finds the entry with the same identity (join, source, slots, js)
    /// as `proto`, ignoring its hint. Used to write hints back after a
    /// dispatch that worked on a snapshot of the entry.
    pub fn find_entry_mut(
        &mut self,
        id: IntervalId,
        proto: &UpdaterEntry,
    ) -> Option<&mut UpdaterEntry> {
        self.tree.get_mut(id)?.iter_mut().find(|e| {
            e.join == proto.join
                && e.source_idx == proto.source_idx
                && e.js == proto.js
                && e.slots == proto.slots
        })
    }

    /// Removes entries matching `pred` from a node, dropping the node
    /// when it empties. Returns the number removed.
    pub fn remove_entries(
        &mut self,
        id: IntervalId,
        mut pred: impl FnMut(&UpdaterEntry) -> bool,
    ) -> usize {
        let Some(list) = self.tree.get_mut(id) else {
            return 0;
        };
        let before = list.len();
        list.retain(|e| !pred(e));
        let removed = before - list.len();
        self.entries -= removed;
        if list.is_empty() {
            if let Some((range, _)) = self.tree.remove(id) {
                self.by_range.remove(&Self::range_key(&range));
                if let Some(n) = self.per_table.get_mut(&range.first.table_prefix()) {
                    *n -= 1;
                }
            }
        }
        removed
    }

    /// Removes every entry belonging to the given join's status range
    /// `js` from the given nodes (used when tearing down an invalidated
    /// range). Status-range ids are scoped per join, so the join id must
    /// participate in the match: coalesced nodes hold entries from many
    /// joins whose `JsId`s can collide.
    pub fn remove_for_js(&mut self, node_ids: &[IntervalId], join: JoinId, js: JsId) -> usize {
        let mut removed = 0;
        for &id in node_ids {
            removed += self.remove_entries(id, |e| e.join == join && e.js == js);
        }
        removed
    }

    /// Visits every `(node, entry)` pair for bookkeeping or debugging.
    pub fn for_each(&self, mut f: impl FnMut(IntervalId, &KeyRange, &UpdaterEntry)) {
        self.tree.for_each(|id, range, list| {
            for e in list {
                f(id, range, e);
            }
        });
    }

    /// Approximate bookkeeping bytes (for memory accounting).
    pub fn approx_bytes(&self) -> usize {
        // tree node + range keys + per-entry context
        self.node_count() * 96 + self.entry_count() * 64
    }

    /// Exhaustive consistency check of the index's O(1) counters and
    /// coalescing/per-table maps against a full walk of the tree, used
    /// by the paranoid invariant checker (`Engine::check_invariants`).
    /// Returns one message per problem; empty means consistent.
    pub fn audit(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut entries = 0usize;
        let mut nodes = 0usize;
        let mut per_table: HashMap<Key, usize> = HashMap::new();
        self.tree.for_each(|id, range, list| {
            nodes += 1;
            entries += list.len();
            if list.is_empty() {
                problems.push(format!(
                    "updater node {id:?} ({range:?}) is empty but was not dropped"
                ));
            }
            *per_table.entry(range.first.table_prefix()).or_insert(0) += 1;
            match self.by_range.get(&Self::range_key(range)) {
                Some(&mapped) if mapped == id => {}
                Some(&mapped) => problems.push(format!(
                    "coalescing map points {range:?} at {mapped:?}, not its node {id:?}"
                )),
                None => problems.push(format!(
                    "updater node {id:?} ({range:?}) missing from coalescing map"
                )),
            }
        });
        if entries != self.entries {
            problems.push(format!(
                "updater entry counter is {} but the tree holds {entries}",
                self.entries
            ));
        }
        if self.by_range.len() != nodes {
            problems.push(format!(
                "coalescing map has {} ranges but the tree holds {nodes} nodes",
                self.by_range.len()
            ));
        }
        for (table, &n) in &self.per_table {
            let actual = per_table.get(table).copied().unwrap_or(0);
            if actual != n {
                problems.push(format!(
                    "per-table counter for {table:?} is {n} but {actual} node(s) exist"
                ));
            }
        }
        for (table, &n) in &per_table {
            if n > 0 && !self.per_table.contains_key(table) {
                problems.push(format!(
                    "table {table:?} has {n} updater node(s) but no per-table counter"
                ));
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pequod_join::SlotTable;

    fn entry(js: u64) -> UpdaterEntry {
        UpdaterEntry {
            join: JoinId(0),
            source_idx: 1,
            slots: SlotTable::new().empty_set(),
            js: JsId(js),
            hint: None,
        }
    }

    fn r(a: &str, b: &str) -> KeyRange {
        KeyRange::new(a, b)
    }

    #[test]
    fn coalesces_same_range() {
        let mut idx = UpdaterIndex::new();
        let a = idx.install(r("p|bob|", "p|bob}"), entry(1));
        let b = idx.install(r("p|bob|", "p|bob}"), entry(2));
        assert_eq!(a, b);
        assert_eq!(idx.node_count(), 1);
        assert_eq!(idx.entry_count(), 2);
        // identical duplicate dropped
        idx.install(r("p|bob|", "p|bob}"), entry(2));
        assert_eq!(idx.entry_count(), 2);
        // different range gets its own node
        idx.install(r("p|liz|", "p|liz}"), entry(1));
        assert_eq!(idx.node_count(), 2);
    }

    #[test]
    fn stab_finds_nodes() {
        let mut idx = UpdaterIndex::new();
        let a = idx.install(r("p|bob|", "p|bob}"), entry(1));
        idx.install(r("p|liz|", "p|liz}"), entry(2));
        let hits = idx.stab(&Key::from("p|bob|100"));
        assert_eq!(hits, vec![a]);
        assert!(idx.stab(&Key::from("p|zed|1")).is_empty());
    }

    #[test]
    fn remove_for_js_drops_empty_nodes() {
        let mut idx = UpdaterIndex::new();
        let a = idx.install(r("p|bob|", "p|bob}"), entry(1));
        idx.install(r("p|bob|", "p|bob}"), entry(2));
        assert_eq!(idx.remove_for_js(&[a], JoinId(0), JsId(1)), 1);
        assert_eq!(idx.node_count(), 1);
        // same JsId under a different join must not match
        assert_eq!(idx.remove_for_js(&[a], JoinId(9), JsId(2)), 0);
        assert_eq!(idx.remove_for_js(&[a], JoinId(0), JsId(2)), 1);
        assert_eq!(idx.node_count(), 0);
        assert_eq!(idx.entry_count(), 0);
        // node gone: stale id is a no-op
        assert_eq!(idx.remove_for_js(&[a], JoinId(0), JsId(2)), 0);
    }

    #[test]
    fn reinstall_after_teardown_works() {
        let mut idx = UpdaterIndex::new();
        let a = idx.install(r("p|bob|", "p|bob}"), entry(1));
        idx.remove_for_js(&[a], JoinId(0), JsId(1));
        let b = idx.install(r("p|bob|", "p|bob}"), entry(3));
        assert_ne!(a, b);
        assert_eq!(idx.stab(&Key::from("p|bob|5")), vec![b]);
    }

    #[test]
    fn entry_mut_updates_hint() {
        let mut idx = UpdaterIndex::new();
        let a = idx.install(r("v|", "v}"), entry(1));
        let e = idx.entry_mut(a, 0).unwrap();
        e.hint = Some(OutputHint {
            out_key: Key::from("karma|ann"),
            num: 7,
        });
        assert_eq!(idx.entries(a).unwrap()[0].hint.as_ref().unwrap().num, 7);
    }
}
