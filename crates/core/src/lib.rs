//! `pequod-core` — the Pequod cache engine.
//!
//! This crate implements the heart of Pequod (NSDI '14): a single-server
//! ordered key-value cache that executes and incrementally maintains
//! *cache joins*.
//!
//! # Quick start
//!
//! ```
//! use pequod_core::Engine;
//! use pequod_store::KeyRange;
//!
//! let mut engine = Engine::new_default();
//! // The Twip timeline join: timelines are copies of posts by followed
//! // users (fixed-width 10-digit timestamps).
//! engine
//!     .add_join_text(
//!         "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>",
//!     )
//!     .unwrap();
//! // Base data: ann follows bob; bob tweets.
//! engine.put("s|ann|bob", "1");
//! engine.put("p|bob|0000000100", "Hi");
//! // Reading ann's timeline materializes it...
//! let tl = engine.scan(&KeyRange::prefix("t|ann|"));
//! assert_eq!(tl.pairs.len(), 1);
//! // ...and later posts are pushed into it incrementally.
//! engine.put("p|bob|0000000120", "again");
//! let tl = engine.scan(&KeyRange::prefix("t|ann|"));
//! assert_eq!(tl.pairs.len(), 2);
//! ```
//!
//! # Structure
//!
//! * [`Engine`] — the public API: `get`/`put`/`remove`/`scan`/`count`/
//!   `add_join`, plus remote-table residency ([`Engine::install_base`])
//!   and eviction.
//! * [`client`] — the unified [`Client`] trait: one batched
//!   command/response surface implemented by the engine, the sharded
//!   engine, the write-around deployment, the cluster client, and the
//!   comparison systems.
//! * [`partition`] — key-routing (home servers, §2.4), shared between
//!   the distributed tier in `pequod_net` and the in-process sharded
//!   engine.
//! * [`sharded`] — [`ShardedEngine`]: N single-threaded engine shards
//!   (one worker thread each) kept fresh across shards by mirroring the
//!   server-level Subscribe/Notify protocol over in-process channels,
//!   so one node scales with cores.
//! * [`status`] — join status ranges: which output ranges are
//!   materialized and whether they are valid (§3.2).
//! * [`updater`] — the interval-tree index of incremental-maintenance
//!   hooks, with updater coalescing and output hints (§3.2, §4.2).
//! * [`aggregate`] — `count`/`sum`/`min`/`max` value handling.
//! * [`config`] — materialization modes and the optimization toggles
//!   measured in the paper's ablations.
//! * [`durable`] — the mutation-capture hook `pequod_persist` plugs
//!   into: every acknowledged durable base write (never computed
//!   ranges, never replicas) reaches an installed [`Durability`] sink.

// No first-party unsafe: the whole system is safe Rust over the
// vendored deps. `cargo xtask audit` additionally requires a SAFETY
// comment on any future unsafe block an allow here would admit.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod client;
pub mod config;
pub mod durable;
mod engine;
mod exec;
mod paranoid;
pub mod partition;
pub mod sharded;
pub mod status;
pub mod types;
pub mod updater;

pub use client::{BackendStats, Client, Command, Response};
pub use config::{EngineConfig, EngineStats, MaterializationMode, MemoryLimit};
pub use durable::{Durability, DurableOp};
pub use engine::{BaseAuthority, Engine, EvictUnit, JS_RANGE_OVERHEAD_BYTES};
pub use sharded::{
    fold_join_replies, fold_stats_replies, same_run_class, ShardStats, ShardSubmitter,
    ShardedEngine, ShardedHandle,
};
pub use types::{CountResult, EngineError, JoinId, JsId, ScanResult, WriteKind};
