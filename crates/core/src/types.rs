//! Common identifier and result types for the engine.

use pequod_join::JoinError;
use pequod_store::{Key, KeyRange, Value};
use std::fmt;

/// Identifies an installed join within one engine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct JoinId(pub u32);

/// Identifies a join status range within one join's status map.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct JsId(pub u64);

/// The kind of store modification delivered to an updater (§3.2: "the
/// type of change (insert new key, update existing key, or remove
/// existing key)").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteKind {
    /// A key that did not exist was inserted.
    Insert,
    /// An existing key's value was replaced.
    Update,
    /// An existing key was removed.
    Remove,
}

/// The result of a scan or get: the pairs found plus any base-data
/// ranges that were needed but not resident (§3.3). A caller that sees
/// `missing` ranges should fetch them (from the database or a home
/// server), install them with [`crate::Engine::install_base`], and
/// restart the query.
#[derive(Clone, Debug, Default)]
pub struct ScanResult {
    /// Key-value pairs in the scanned range, in key order.
    pub pairs: Vec<(Key, Value)>,
    /// Base-data ranges that must be fetched before the result is
    /// complete.
    pub missing: Vec<KeyRange>,
}

impl ScanResult {
    /// True if no base data was missing: the pairs are the full answer.
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }

    /// The number of pairs returned.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no pairs were returned.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// The result of a server-side count: like [`ScanResult`] but carrying
/// only the number of matching pairs, so counting a large range never
/// materializes it for the client.
#[derive(Clone, Debug, Default)]
pub struct CountResult {
    /// Number of pairs in the counted range.
    pub count: usize,
    /// Base-data ranges that must be fetched before the count is
    /// trustworthy.
    pub missing: Vec<KeyRange>,
}

impl CountResult {
    /// True if no base data was missing: the count is the full answer.
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }
}

/// Errors surfaced by the engine API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The join failed to parse or validate.
    Join(JoinError),
    /// Installing the join would create a cycle with existing joins
    /// ("users should not install circular cache joins", §3).
    CircularJoin(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Join(e) => write!(f, "{e}"),
            EngineError::CircularJoin(s) => write!(f, "circular cache joins: {s}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<JoinError> for EngineError {
    fn from(e: JoinError) -> Self {
        EngineError::Join(e)
    }
}
