//! Aggregate value handling for `count`, `sum`, `min`, and `max`.
//!
//! Pequod values are strings, so aggregates are stored as ASCII decimal
//! integers (`count`/`sum`) or as raw values compared lexicographically
//! (`min`/`max`). "Aggregated data is kept up to date just like copied
//! data" (§2.3): count and sum maintain incrementally under insert,
//! update, and remove; min and max maintain incrementally except when
//! the current extremum is retracted, which forces recomputation.

use bytes::Bytes;
use pequod_join::Operator;
use pequod_store::Value;

/// Parses a value as a decimal integer; malformed values count as 0
/// (lenient, like SQL's ignore-NULL aggregates over a stringly store).
pub fn parse_num(v: &[u8]) -> i64 {
    let s = std::str::from_utf8(v).unwrap_or("");
    s.trim().parse().unwrap_or(0)
}

/// Formats an integer as a value.
pub fn fmt_num(n: i64) -> Value {
    Bytes::from(n.to_string().into_bytes())
}

/// An aggregate accumulator used during fresh join execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Accumulator {
    /// Number of tuples.
    Count(i64),
    /// Sum of numeric values.
    Sum(i64),
    /// Lexicographic minimum value.
    Min(Value),
    /// Lexicographic maximum value.
    Max(Value),
}

impl Accumulator {
    /// Starts an accumulator for `op` from the first contribution.
    pub fn start(op: Operator, v: &Value) -> Accumulator {
        match op {
            Operator::Count => Accumulator::Count(1),
            Operator::Sum => Accumulator::Sum(parse_num(v)),
            Operator::Min => Accumulator::Min(v.clone()),
            Operator::Max => Accumulator::Max(v.clone()),
            // audit: allow(no-unwrap) — callers gate on is_aggregate();
            // a copy/check operator here is a planner bug, not bad input.
            _ => panic!("not an aggregate operator: {op}"),
        }
    }

    /// Folds another contribution in.
    pub fn fold(&mut self, v: &Value) {
        match self {
            Accumulator::Count(n) => *n += 1,
            Accumulator::Sum(n) => *n += parse_num(v),
            Accumulator::Min(m) => {
                if v < m {
                    *m = v.clone();
                }
            }
            Accumulator::Max(m) => {
                if v > m {
                    *m = v.clone();
                }
            }
        }
    }

    /// The final output value.
    pub fn finish(self) -> Value {
        match self {
            Accumulator::Count(n) => fmt_num(n),
            Accumulator::Sum(n) => fmt_num(n),
            Accumulator::Min(v) | Accumulator::Max(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_is_lenient() {
        assert_eq!(parse_num(b"42"), 42);
        assert_eq!(parse_num(b"-7"), -7);
        assert_eq!(parse_num(b" 5 "), 5);
        assert_eq!(parse_num(b"junk"), 0);
        assert_eq!(parse_num(b""), 0);
        assert_eq!(parse_num(&[0xff, 0xfe]), 0);
    }

    #[test]
    fn count_and_sum_fold() {
        let v1 = Bytes::from_static(b"10");
        let v2 = Bytes::from_static(b"32");
        let mut c = Accumulator::start(Operator::Count, &v1);
        c.fold(&v2);
        assert_eq!(c.finish(), fmt_num(2));
        let mut s = Accumulator::start(Operator::Sum, &v1);
        s.fold(&v2);
        assert_eq!(s.finish(), fmt_num(42));
    }

    #[test]
    fn min_max_fold_lexicographically() {
        let a = Bytes::from_static(b"apple");
        let b = Bytes::from_static(b"banana");
        let mut m = Accumulator::start(Operator::Min, &b);
        m.fold(&a);
        assert_eq!(m.finish(), a);
        let mut m = Accumulator::start(Operator::Max, &a);
        m.fold(&b);
        assert_eq!(m.finish(), b);
    }

    #[test]
    #[should_panic(expected = "not an aggregate")]
    fn copy_is_not_an_aggregate() {
        Accumulator::start(Operator::Copy, &Bytes::new());
    }
}
