//! The Pequod engine: an ordered key-value cache with installed cache
//! joins, dynamic materialization, and incremental maintenance.
//!
//! One `Engine` corresponds to one single-threaded Pequod server process
//! (the paper's servers are single-threaded and event-driven). All public
//! operations take `&mut self`; cross-server concurrency lives in
//! `pequod-net`.
//!
//! The write path (this file) applies a store modification and dispatches
//! the updaters whose source ranges contain the key: eager maintenance
//! for `copy` and aggregate sources, lazy invalidation for `check`
//! sources (§3.2). The read path (`exec.rs`) validates join status
//! ranges, executing joins over gaps and applying pending logged
//! modifications.

use crate::aggregate::{fmt_num, parse_num};
use crate::config::{EngineConfig, EngineStats, MaterializationMode, MemoryLimit};
use crate::durable::{Durability, DurableOp};
use crate::status::{JsState, LoggedMod, StatusMap};
use crate::types::{EngineError, JoinId, JsId, WriteKind};
use crate::updater::{OutputHint, UpdaterEntry, UpdaterIndex};
use bytes::Bytes;
use pequod_join::{JoinSpec, Operator};
use pequod_store::{IntervalId, Key, KeyRange, LruTracker, RangeSet, Store, StoreStats, Value};
use pequod_telemetry::{OpKind, RateHandle, Recorder};
use std::collections::HashMap;
use std::sync::Arc;

/// An evictable unit: a materialized join range or a remote/DB-backed
/// table's cached base data (§2.5).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum EvictUnit {
    /// A join status range (computed data).
    Js(u32, JsId),
    /// Cached base data of a remote table, by table prefix.
    Base(Key),
}

/// Estimated bookkeeping bytes per materialized join status range, used
/// by [`Engine::memory_bytes`]. A `JsRange` carries two range-bound
/// keys (2 × 24-byte handles plus ~16 bytes of shared key text), the
/// state/clock words (~16), and its updater-node list plus the LRU
/// tracker's two map entries for the range (~16 together) — about 96
/// bytes on a 64-bit target. Pending logged modifications and the
/// updater entries themselves are accounted separately
/// (`UpdaterIndex::approx_bytes`).
pub const JS_RANGE_OVERHEAD_BYTES: usize = 96;

/// Decides whether this engine is the *authority* for a base key (the
/// deployment's partition homes the key here). Authoritative rows are
/// never dropped by base-data eviction: nobody else has them.
pub type BaseAuthority = Arc<dyn Fn(&Key) -> bool + Send + Sync>;

/// The Pequod cache engine.
pub struct Engine {
    pub(crate) store: Store,
    pub(crate) joins: Vec<Arc<JoinSpec>>,
    pub(crate) status: Vec<StatusMap>,
    pub(crate) updaters: UpdaterIndex,
    /// Remote or database-backed tables: prefix → resident ranges.
    pub(crate) remote: HashMap<Key, RangeSet>,
    pub(crate) lru: LruTracker<EvictUnit>,
    pub(crate) config: EngineConfig,
    pub(crate) clock: u64,
    pub(crate) stats: EngineStats,
    /// Partition-aware base-data ownership (sharded/cluster
    /// deployments); `None` means all cached base data is a replica of
    /// some backing authority and may be dropped wholesale.
    pub(crate) base_authority: Option<BaseAuthority>,
    /// Mutation-capture sink for durable base writes (`pequod-persist`
    /// installs its write-ahead log here); `None` means volatile.
    pub(crate) durability: Option<Box<dyn Durability>>,
    /// Telemetry sink; disabled by default, in which case every
    /// recording call is a no-op (no atomics, no clock reads).
    pub(crate) recorder: Recorder,
    /// Cached per-table rate handles so the hot path never takes the
    /// recorder's registration mutex.
    pub(crate) rate_handles: HashMap<Key, RateHandle>,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            store: Store::new(config.store.clone()),
            joins: Vec::new(),
            status: Vec::new(),
            updaters: UpdaterIndex::new(),
            remote: HashMap::new(),
            lru: LruTracker::new(),
            config,
            clock: 0,
            stats: EngineStats::default(),
            base_authority: None,
            durability: None,
            recorder: Recorder::disabled(),
            rate_handles: HashMap::new(),
        }
    }

    /// Creates an engine with default (dynamic-materialization) config.
    pub fn new_default() -> Engine {
        Engine::new(EngineConfig::default())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Installs a telemetry recorder. All subsequent operations feed
    /// it; pass [`Recorder::disabled`] to turn recording back off.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
        self.rate_handles.clear();
    }

    /// The engine's telemetry recorder (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The cached per-table rate handle for `key`'s table, registering
    /// it on first sight. No-op handles when the recorder is disabled.
    pub(crate) fn rate_for(&mut self, key: &Key) -> &RateHandle {
        let table = key.table_prefix();
        self.rate_handles
            .entry(table.clone())
            .or_insert_with(|| self.recorder.rate_handle(&table.to_string()))
    }

    /// Operation counters.
    ///
    /// Named `engine_stats` (not `stats`) on purpose: the
    /// [`Client`](crate::Client) trait also has a `stats` method on
    /// `Engine` returning
    /// [`BackendStats`](crate::BackendStats), and an identically named
    /// inherent method made every `self.stats()` inside client
    /// plumbing a resolution puzzle (see
    /// [`Engine::backend_stats`]).
    pub fn engine_stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Store-level counters (keys, bytes).
    pub fn store_stats(&self) -> &StoreStats {
        self.store.stats()
    }

    /// Read-only access to the underlying store (testing/diagnostics).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Number of installed joins.
    pub fn join_count(&self) -> usize {
        self.joins.len()
    }

    /// The spec of an installed join.
    pub fn join(&self, id: JoinId) -> &JoinSpec {
        &self.joins[id.0 as usize]
    }

    /// Number of live updater entries.
    pub fn updater_entries(&self) -> usize {
        self.updaters.entry_count()
    }

    /// Number of materialized join status ranges across all joins.
    pub fn materialized_ranges(&self) -> usize {
        self.status.iter().map(|s| s.len()).sum()
    }

    /// The engine's logical clock.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Advances the logical clock (drives `snapshot T` expiry).
    pub fn tick(&mut self, n: u64) {
        self.clock += n;
    }

    /// Estimated resident memory: store data plus maintenance
    /// bookkeeping (updaters and join status ranges; see
    /// [`JS_RANGE_OVERHEAD_BYTES`] for the per-range estimate).
    pub fn memory_bytes(&self) -> usize {
        self.store.memory_bytes()
            + self.updaters.approx_bytes()
            + self.materialized_ranges() * JS_RANGE_OVERHEAD_BYTES
    }

    /// The configured memory limit, if any.
    pub fn mem_limit(&self) -> Option<MemoryLimit> {
        self.config.mem_limit
    }

    /// Installs (or clears) the memory limit, returning the previous
    /// one. Deployments use this to suspend eviction around operations
    /// that must observe a stable store (e.g. granting a subscription),
    /// and servers use it to apply `--mem-limit-mb` at startup.
    pub fn set_mem_limit(&mut self, limit: Option<MemoryLimit>) -> Option<MemoryLimit> {
        std::mem::replace(&mut self.config.mem_limit, limit)
    }

    /// This engine's [`BackendStats`](crate::BackendStats) snapshot —
    /// the payload every backend answers to
    /// [`Command::Stats`](crate::Command::Stats). One definition so the
    /// engine, sharded, write-around, and cluster backends cannot
    /// drift. `Engine`'s `Client::stats` override calls this directly
    /// (never through `execute_batch`), so a `self.stats()` anywhere in
    /// client plumbing — even through a `&mut &mut Engine` receiver —
    /// can no longer recurse; `tests` below pin that down.
    pub fn backend_stats(&self) -> crate::BackendStats {
        crate::BackendStats {
            keys: self.store.stats().keys as u64,
            memory_bytes: self.memory_bytes() as u64,
            js_evictions: self.stats.js_evictions,
            base_evictions: self.stats.base_evictions,
        }
    }

    /// Declares which base keys this engine is the *authority* for.
    ///
    /// In a sharded or clustered deployment, a partitioned table's rows
    /// at their home engine are the only copy; base-data eviction must
    /// not drop them (dropping a *replica* is safe — the home still has
    /// it, and the next read refetches). The deployment installs its
    /// partition function here; an engine without an authority predicate
    /// treats all cached base data as replicas of some backing store
    /// (the write-around database, a subscription home) and may drop it
    /// wholesale.
    pub fn set_base_authority(&mut self, authority: impl Fn(&Key) -> bool + Send + Sync + 'static) {
        self.base_authority = Some(Arc::new(authority));
    }

    // ------------------------------------------------------------------
    // Durability (mutation capture; see `crate::durable`)
    // ------------------------------------------------------------------

    /// Installs a durability sink. From now on every acknowledged
    /// durable base mutation — a `put`/`remove` of a key this engine is
    /// the authority for that is not in any join's output range, and
    /// every newly installed join — is passed to
    /// [`Durability::log`] *after* it is applied. Install the sink
    /// **after** recovery replay, or replay will be re-logged.
    pub fn set_durability(&mut self, durability: Box<dyn Durability>) {
        self.durability = Some(durability);
    }

    /// Removes and returns the durability sink, making the engine
    /// volatile again.
    pub fn take_durability(&mut self) -> Option<Box<dyn Durability>> {
        self.durability.take()
    }

    /// True if a durability sink is installed.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Flushes buffered WAL records to stable storage
    /// ([`Durability::sync`]), regardless of the sink's fsync policy.
    /// No-op without a sink.
    pub fn sync_durability(&mut self) {
        if let Some(d) = &mut self.durability {
            d.sync();
        }
    }

    /// Graceful-shutdown finalization: takes a final snapshot of
    /// durable state and forces it (and any remaining log tail) to
    /// stable storage, so a restart recovers from the snapshot without
    /// replaying the log. No-op without a sink.
    pub fn finalize_durability(&mut self) {
        let Some(mut durability) = self.durability.take() else {
            return;
        };
        let (joins, pairs) = self.durable_state();
        durability.snapshot(&joins, &pairs);
        durability.sync();
        self.durability = Some(durability);
    }

    /// Whether a write to `key` is a *durable base* write: the key is
    /// not in any installed join's output range (computed data is
    /// re-derived, never persisted) and this engine is its authority
    /// (replicas are the authority's log's responsibility).
    pub fn is_durable_base(&self, key: &Key) -> bool {
        if self.joins.iter().any(|j| j.output_range().contains(key)) {
            return false;
        }
        match &self.base_authority {
            Some(authority) => authority(key),
            None => true,
        }
    }

    /// The engine's durable state: installed join texts (installation
    /// order) and every authoritative base pair, read raw from the
    /// store — no validation, no recomputation, no residency changes.
    /// This is exactly what a snapshot persists; everything else
    /// (computed ranges, pending logged modifications, replica data)
    /// rebuilds on demand after recovery.
    pub fn durable_state(&mut self) -> (Vec<String>, Vec<(Key, Value)>) {
        let joins: Vec<String> = self.joins.iter().map(|j| j.to_string()).collect();
        let mut all = Vec::with_capacity(self.store.len());
        self.store.scan(&KeyRange::all(), |k, v| {
            all.push((k.clone(), v.clone()));
            true
        });
        let pairs = all
            .into_iter()
            .filter(|(k, _)| self.is_durable_base(k))
            .collect();
        (joins, pairs)
    }

    /// Hands one captured mutation to the durability sink; if the sink
    /// asks for a snapshot, collects durable state and delivers it. The
    /// sink is taken out for the call so `durable_state` can borrow the
    /// engine.
    fn persist_op(&mut self, op: &DurableOp) {
        if self.config.paranoid {
            // Base-authority <-> durability: only base rows this engine
            // is the authority for may reach the write-ahead log. A
            // computed or replicated key here means a caller bypassed
            // the is_durable_base gate and recovery would double-apply.
            if let DurableOp::Put(k, _) | DurableOp::Remove(k) = op {
                assert!(
                    self.is_durable_base(k),
                    "paranoid: computed or non-authoritative key {k:?} reached the WAL hook"
                );
            }
        }
        let Some(mut durability) = self.durability.take() else {
            return;
        };
        if durability.log(op) {
            let (joins, pairs) = self.durable_state();
            durability.snapshot(&joins, &pairs);
        }
        self.durability = Some(durability);
    }

    // ------------------------------------------------------------------
    // Join installation
    // ------------------------------------------------------------------

    /// Installs a validated join (the "addjoin" RPC). Rejects joins that
    /// would form a cycle with already-installed joins. Under
    /// [`MaterializationMode::Full`] the join's entire output range is
    /// materialized immediately.
    ///
    /// Installation is **idempotent**: a spec textually identical to an
    /// already-installed join returns the existing [`JoinId`] instead
    /// of installing a second copy (which would double-fire
    /// maintenance). Idempotence is what lets durable recovery and
    /// server restarts replay `addjoin` safely.
    pub fn add_join(&mut self, spec: JoinSpec) -> Result<JoinId, EngineError> {
        let timer = self.recorder.timer();
        let text = spec.to_string();
        if let Some(existing) = self.joins.iter().position(|j| j.to_string() == text) {
            return Ok(JoinId(existing as u32));
        }
        self.check_acyclic(&spec)?;
        let id = JoinId(self.joins.len() as u32);
        self.joins.push(Arc::new(spec));
        self.status.push(StatusMap::new());
        if self.config.materialization == MaterializationMode::Full {
            let out_range = self.joins[id.0 as usize].output_range();
            let mut missing = Vec::new();
            self.validate_join(id.0 as usize, &out_range, &mut missing);
        }
        if self.durability.is_some() {
            self.persist_op(&DurableOp::AddJoin(text));
        }
        self.paranoid_check();
        self.recorder.observe_op(OpKind::AddJoin, &timer);
        Ok(id)
    }

    /// Parses and installs one join from text.
    pub fn add_join_text(&mut self, text: &str) -> Result<JoinId, EngineError> {
        self.add_join(JoinSpec::parse(text)?)
    }

    /// Parses and installs several `;`-separated joins.
    pub fn add_joins_text(&mut self, text: &str) -> Result<Vec<JoinId>, EngineError> {
        let specs = pequod_join::parse_joins(text)?;
        specs.into_iter().map(|s| self.add_join(s)).collect()
    }

    fn check_acyclic(&self, new: &JoinSpec) -> Result<(), EngineError> {
        // Dependency edge a -> b: a reads b's outputs.
        let n = self.joins.len() + 1;
        let spec_of = |i: usize| -> &JoinSpec {
            if i < self.joins.len() {
                &self.joins[i]
            } else {
                new
            }
        };
        let depends = |a: usize, b: usize| -> bool {
            let outr = spec_of(b).output_range();
            spec_of(a)
                .sources
                .iter()
                .any(|s| s.pattern.key_space().overlaps(&outr))
        };
        // DFS cycle detection over the small join graph.
        fn dfs(
            i: usize,
            n: usize,
            depends: &dyn Fn(usize, usize) -> bool,
            state: &mut [u8],
        ) -> bool {
            state[i] = 1;
            for j in 0..n {
                if j != i && depends(i, j) {
                    if state[j] == 1 {
                        return true;
                    }
                    if state[j] == 0 && dfs(j, n, depends, state) {
                        return true;
                    }
                }
            }
            state[i] = 2;
            false
        }
        let mut state = vec![0u8; n];
        for i in 0..n {
            if state[i] == 0 && dfs(i, n, &depends, &mut state) {
                return Err(EngineError::CircularJoin(new.output.text().to_string()));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Remote / database-backed tables (§3.3)
    // ------------------------------------------------------------------

    /// Declares the table owning `prefix` as remote or database-backed:
    /// reads against it report missing ranges until data is installed.
    pub fn mark_remote_table(&mut self, prefix: impl Into<Key>) {
        self.remote.entry(prefix.into()).or_default();
    }

    /// True if the table owning `prefix` is marked remote.
    pub fn is_remote_table(&self, prefix: &Key) -> bool {
        self.remote.contains_key(prefix)
    }

    /// Marks a range of a remote table as resident without writing data
    /// (used when a fetch returned an empty range: absence is knowledge).
    pub fn mark_resident(&mut self, range: &KeyRange) {
        let table = range.first.table_prefix();
        if let Some(rs) = self.remote.get_mut(&table) {
            rs.add(range);
            self.lru.touch(EvictUnit::Base(table));
        }
    }

    /// Installs fetched base data: writes the pairs (running normal
    /// incremental maintenance) and marks the whole fetched range
    /// resident.
    ///
    /// The install itself never evicts, even over a memory limit: a
    /// parked query is usually waiting on exactly this range, and must
    /// observe it whole on its restart. The cap is enforced at the end
    /// of the next read or write ([`Engine::maintain_memory`]).
    pub fn install_base(&mut self, range: &KeyRange, pairs: Vec<(Key, Value)>) {
        for (k, v) in pairs {
            self.write(k, Some(v), false);
        }
        self.mark_resident(range);
        self.paranoid_check();
    }

    /// True if this engine should hold `key`: it is the authority for
    /// it, its table is purely local, or it lies inside a tracked
    /// resident range. A replicated key outside every resident range
    /// has been evicted and must be refetched, not re-cached piecemeal.
    pub fn holds_key(&self, key: &Key) -> bool {
        if self
            .base_authority
            .as_ref()
            .is_some_and(|authority| authority(key))
        {
            return true;
        }
        match self.remote.get(&key.table_prefix()) {
            Some(resident) => resident.contains(key),
            None => true,
        }
    }

    /// Every resident range of every remote-marked table (diagnostics
    /// and the sharded invariant audit).
    pub fn all_resident_ranges(&self) -> Vec<KeyRange> {
        self.remote.values().flat_map(|rs| rs.iter()).collect()
    }

    /// The resident ranges of a remote table (diagnostics).
    pub fn resident_ranges(&self, prefix: &Key) -> Vec<KeyRange> {
        self.remote
            .get(prefix)
            .map(|rs| rs.iter().collect())
            .unwrap_or_default()
    }

    pub(crate) fn check_residency(&mut self, range: &KeyRange, missing: &mut Vec<KeyRange>) {
        let mut touched = Vec::new();
        for (prefix, resident) in &self.remote {
            let table_range = KeyRange::prefix(prefix.clone());
            let clip = table_range.intersect(range);
            if clip.is_empty() {
                continue;
            }
            touched.push(prefix.clone());
            for gap in resident.uncovered(&clip) {
                if !missing.iter().any(|m| m.contains_range(&gap)) {
                    missing.push(gap);
                }
            }
        }
        for prefix in touched {
            self.lru.touch(EvictUnit::Base(prefix));
        }
    }

    // ------------------------------------------------------------------
    // Writes (§3.2 incremental maintenance)
    // ------------------------------------------------------------------

    /// Inserts or replaces a key, running incremental maintenance.
    ///
    /// If a durability sink is installed and this is a durable base
    /// write (see [`Engine::is_durable_base`]) the mutation is logged
    /// after it is applied and before the caller regains control — the
    /// acknowledgment a client later sees covers the log entry.
    pub fn put(&mut self, key: impl Into<Key>, value: impl Into<Value>) {
        let key = key.into();
        let value = value.into();
        let timer = self.recorder.timer();
        if self.recorder.is_enabled() {
            self.rate_for(&key).write();
        }
        // `Key`/`Value` clone by reference count, so capture is cheap.
        self.write(key.clone(), Some(value.clone()), false);
        if self.durability.is_some() && self.is_durable_base(&key) {
            self.persist_op(&DurableOp::Put(key, value));
        }
        self.maintain_memory();
        self.paranoid_check();
        self.recorder.observe_op(OpKind::Put, &timer);
    }

    /// Removes a key, running incremental maintenance. Logged to the
    /// durability sink under the same rules as [`Engine::put`].
    pub fn remove(&mut self, key: &Key) {
        let timer = self.recorder.timer();
        if self.recorder.is_enabled() {
            self.rate_for(key).write();
        }
        self.write(key.clone(), None, false);
        if self.durability.is_some() && self.is_durable_base(key) {
            self.persist_op(&DurableOp::Remove(key.clone()));
        }
        self.maintain_memory();
        self.paranoid_check();
        self.recorder.observe_op(OpKind::Remove, &timer);
    }

    /// Applies a store modification and dispatches updaters.
    pub(crate) fn write(&mut self, key: Key, value: Option<Value>, shared: bool) {
        let old = match &value {
            Some(v) => self.store.put(key.clone(), v.clone(), shared),
            None => self.store.remove(&key),
        };
        let kind = match (&old, &value) {
            (None, Some(_)) => WriteKind::Insert,
            (Some(_), Some(_)) => WriteKind::Update,
            (Some(_), None) => WriteKind::Remove,
            (None, None) => return, // removing an absent key: no-op
        };
        self.stats.writes += 1;
        // Fast exit: no join watches this table (true for output tables,
        // which receive the bulk of writes).
        if self.updaters.table_is_quiet(&key) {
            return;
        }
        // Snapshot the applicable updaters: dispatch may mutate the index.
        let node_ids = self.updaters.stab(&key);
        if node_ids.is_empty() {
            return;
        }
        let mut work: Vec<(IntervalId, UpdaterEntry)> = Vec::new();
        for id in node_ids {
            if let Some(entries) = self.updaters.entries(id) {
                for e in entries {
                    work.push((id, e.clone()));
                }
            }
        }
        self.recorder.observe_fanout(work.len() as u64);
        for (node, entry) in work {
            self.dispatch(node, entry, &key, old.as_ref(), value.as_ref(), kind);
        }
    }

    fn dispatch(
        &mut self,
        node: IntervalId,
        entry: UpdaterEntry,
        key: &Key,
        old: Option<&Value>,
        new: Option<&Value>,
        kind: WriteKind,
    ) {
        let jidx = entry.join.0 as usize;
        let spec = self.joins[jidx].clone();
        let Some(js) = self.status[jidx].get(entry.js) else {
            // Stale updater for a torn-down range: drop it.
            self.updaters
                .remove_entries(node, |e| e.join == entry.join && e.js == entry.js);
            return;
        };
        if js.state == JsState::Invalid {
            return; // will be recomputed wholesale at next read
        }
        self.stats.updater_fires += 1;
        let op = spec.sources[entry.source_idx].op;
        match op {
            Operator::Check => {
                let m = LoggedMod {
                    source_idx: entry.source_idx,
                    key: key.clone(),
                    kind,
                };
                let lazy = self.config.lazy_checks
                    && self.config.materialization != MaterializationMode::Full;
                if lazy {
                    let limit = self.config.pending_log_limit;
                    let Some(js) = self.status[jidx].get_mut(entry.js) else {
                        return;
                    };
                    js.pending.push(m);
                    self.stats.mods_logged += 1;
                    if js.pending.len() > limit {
                        self.complete_invalidate(jidx, entry.js);
                    }
                } else {
                    self.apply_logged_mod(jidx, entry.js, &m);
                }
            }
            Operator::Copy => {
                let mut slots = entry.slots.clone();
                if !spec.sources[entry.source_idx]
                    .pattern
                    .match_key(key, &mut slots)
                {
                    return;
                }
                match spec.output.expand(&slots) {
                    Some(out_key) => {
                        let Some(range) = self.status[jidx].get(entry.js).map(|js| js.range())
                        else {
                            return;
                        };
                        if !range.contains(&out_key) {
                            return;
                        }
                        self.stats.eager_updates += 1;
                        match kind {
                            WriteKind::Insert | WriteKind::Update => {
                                let Some(v) = new.cloned() else { return };
                                let (v, shared) = if self.config.value_sharing {
                                    (v, true)
                                } else {
                                    (Bytes::copy_from_slice(&v), false)
                                };
                                self.write(out_key, Some(v), shared);
                            }
                            WriteKind::Remove => self.write(out_key, None, false),
                        }
                    }
                    None => {
                        // The copy source alone does not determine the
                        // output key (copy listed before a check, as in the
                        // celebrity join): fall back to the general
                        // re-derivation path.
                        let m = LoggedMod {
                            source_idx: entry.source_idx,
                            key: key.clone(),
                            kind,
                        };
                        self.apply_logged_mod(jidx, entry.js, &m);
                    }
                }
            }
            Operator::Count | Operator::Sum => {
                self.dispatch_numeric_agg(node, entry, &spec, op, key, old, new, kind)
            }
            Operator::Min | Operator::Max => {
                self.dispatch_extremum(entry, &spec, op, key, old, new, kind)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch_numeric_agg(
        &mut self,
        node: IntervalId,
        entry: UpdaterEntry,
        spec: &JoinSpec,
        op: Operator,
        key: &Key,
        old: Option<&Value>,
        new: Option<&Value>,
        kind: WriteKind,
    ) {
        let jidx = entry.join.0 as usize;
        let mut slots = entry.slots.clone();
        if !spec.sources[entry.source_idx]
            .pattern
            .match_key(key, &mut slots)
        {
            return;
        }
        let Some(out_key) = spec.output.expand(&slots) else {
            // Aggregate group key underdetermined: recompute lazily.
            self.complete_invalidate(jidx, entry.js);
            return;
        };
        let Some(range) = self.status[jidx].get(entry.js).map(|js| js.range()) else {
            return;
        };
        if !range.contains(&out_key) {
            return;
        }
        // `WriteKind` guarantees the sides an op needs (Insert has a new
        // value, Remove an old one); an absent side contributes 0.
        let old_n = old.map(|v| parse_num(v)).unwrap_or(0);
        let new_n = new.map(|v| parse_num(v)).unwrap_or(0);
        let delta = match (op, kind) {
            (Operator::Count, WriteKind::Insert) => 1,
            (Operator::Count, WriteKind::Remove) => -1,
            (Operator::Count, WriteKind::Update) => 0,
            (Operator::Sum, WriteKind::Insert) => new_n,
            (Operator::Sum, WriteKind::Remove) => -old_n,
            (Operator::Sum, WriteKind::Update) => new_n - old_n,
            _ => unreachable!(),
        };
        if delta == 0 {
            return;
        }
        self.stats.eager_updates += 1;
        // Output hint (§4.2): skip the store lookup when this updater
        // wrote the same output key last time.
        let hinted = if self.config.output_hints {
            entry
                .hint
                .as_ref()
                .filter(|h| h.out_key == out_key)
                .map(|h| h.num)
        } else {
            None
        };
        let cur = match hinted {
            Some(n) => {
                self.stats.hint_hits += 1;
                Some(n)
            }
            None => self.store.peek(&out_key).map(|v| parse_num(v)),
        };
        let newv = cur.unwrap_or(0) + delta;
        let remove_group = op == Operator::Count && newv <= 0;
        if remove_group {
            self.write(out_key.clone(), None, false);
        } else {
            self.write(out_key.clone(), Some(fmt_num(newv)), false);
        }
        if self.config.output_hints {
            if let Some(e) = self.updaters.find_entry_mut(node, &entry) {
                e.hint = if remove_group {
                    None
                } else {
                    Some(OutputHint { out_key, num: newv })
                };
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch_extremum(
        &mut self,
        entry: UpdaterEntry,
        spec: &JoinSpec,
        op: Operator,
        key: &Key,
        old: Option<&Value>,
        new: Option<&Value>,
        kind: WriteKind,
    ) {
        let jidx = entry.join.0 as usize;
        let mut slots = entry.slots.clone();
        if !spec.sources[entry.source_idx]
            .pattern
            .match_key(key, &mut slots)
        {
            return;
        }
        let Some(out_key) = spec.output.expand(&slots) else {
            self.complete_invalidate(jidx, entry.js);
            return;
        };
        let Some(range) = self.status[jidx].get(entry.js).map(|js| js.range()) else {
            return;
        };
        if !range.contains(&out_key) {
            return;
        }
        let better = |candidate: &Value, cur: &Value| -> bool {
            match op {
                Operator::Min => candidate < cur,
                Operator::Max => candidate > cur,
                _ => unreachable!(),
            }
        };
        let cur = self.store.peek(&out_key).cloned();
        self.stats.eager_updates += 1;
        match kind {
            WriteKind::Insert => {
                let Some(n) = new else { return };
                match &cur {
                    None => self.write(out_key, Some(n.clone()), false),
                    Some(c) => {
                        if better(n, c) {
                            self.write(out_key, Some(n.clone()), false);
                        }
                    }
                }
            }
            WriteKind::Update => {
                let (Some(o), Some(n)) = (old, new) else {
                    return;
                };
                match &cur {
                    None => self.write(out_key, Some(n.clone()), false),
                    Some(c) => {
                        if better(n, c) {
                            self.write(out_key, Some(n.clone()), false);
                        } else if o == c {
                            // The extremum may have been retracted.
                            self.complete_invalidate(jidx, entry.js);
                        }
                    }
                }
            }
            WriteKind::Remove => {
                if cur.as_ref() == old {
                    self.complete_invalidate(jidx, entry.js);
                }
            }
        }
    }

    /// Complete invalidation (§3.2): removes the range's updaters and
    /// marks it for wholesale recomputation at the next read. Outputs
    /// stay in the store until then (reads always validate first).
    pub(crate) fn complete_invalidate(&mut self, jidx: usize, jsid: JsId) {
        let Some(js) = self.status[jidx].get_mut(jsid) else {
            return;
        };
        if js.state == JsState::Invalid {
            return;
        }
        js.state = JsState::Invalid;
        js.pending.clear();
        let nodes = std::mem::take(&mut js.updaters);
        self.updaters
            .remove_for_js(&nodes, JoinId(jidx as u32), jsid);
        self.stats.complete_invalidations += 1;
    }
}
