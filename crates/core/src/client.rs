//! The unified client surface: one command/response vocabulary over
//! every Pequod deployment shape.
//!
//! The paper's clients speak a single protocol — get, scan, put, remove,
//! addjoin, batched over the wire — regardless of whether they talk to
//! one cache process, a partitioned cluster, or a write-around
//! deployment in front of a database. [`Client`] reproduces that: the
//! one required method is the batched [`Client::execute_batch`], and
//! single-operation conveniences are layered on top, so a workload
//! driver written against `dyn Client` runs unchanged against
//!
//! * the in-process [`Engine`] (this crate),
//! * `pequod_db::WriteAround` (database writes, cached reads),
//! * `pequod_net::ClusterClient` (a partitioned simulated cluster with
//!   per-destination batch pipelining), and
//! * the comparison systems in `pequod_baselines`.
//!
//! Batching is the point, not an afterthought: a backend that owns a
//! network (the cluster) turns one `execute_batch` call into one
//! pipelined round-trip per destination server, and the write-around
//! deployment delivers database notifications between batches rather
//! than between every operation.

use crate::engine::Engine;
use pequod_store::{Key, KeyRange, Value};

/// One client operation, addressed to any [`Client`] backend.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Point read.
    Get(Key),
    /// Ordered range read.
    Scan(KeyRange),
    /// Server-side range count: the backend counts matching pairs
    /// instead of materializing them for the client.
    Count(KeyRange),
    /// Insert or replace.
    Put(Key, Value),
    /// Delete.
    Remove(Key),
    /// Install cache joins from their textual form (Figure 2 grammar).
    /// Backends without join support answer [`Response::Error`].
    AddJoin(String),
    /// Backend counters (key count, resident memory).
    Stats,
}

/// The answer to one [`Command`].
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Command::Get`].
    Value(Option<Value>),
    /// Answer to [`Command::Scan`]: pairs in key order.
    Pairs(Vec<(Key, Value)>),
    /// Answer to [`Command::Count`].
    Count(u64),
    /// Answer to a write or join installation that succeeded.
    Ok,
    /// Answer to [`Command::Stats`].
    Stats(BackendStats),
    /// The command failed; the payload is a human-readable reason.
    Error(String),
}

/// Backend counters reported by [`Command::Stats`].
///
/// Multi-engine backends (the sharded engine, the cluster client)
/// answer with the *sum* across their engines, so `memory_bytes` is the
/// deployment's whole footprint and the eviction counters record total
/// memory pressure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Live keys (or rows) resident in the backend.
    pub keys: u64,
    /// Estimated resident memory in bytes.
    pub memory_bytes: u64,
    /// Materialized join ranges evicted under memory pressure (§2.5);
    /// always 0 on join-less backends and unbounded engines.
    pub js_evictions: u64,
    /// Cached base-data tables evicted under memory pressure; always 0
    /// on join-less backends and unbounded engines.
    pub base_evictions: u64,
}

/// Multi-engine backends fold per-engine snapshots into one
/// deployment-wide total.
impl std::ops::AddAssign for BackendStats {
    fn add_assign(&mut self, rhs: BackendStats) {
        self.keys += rhs.keys;
        self.memory_bytes += rhs.memory_bytes;
        self.js_evictions += rhs.js_evictions;
        self.base_evictions += rhs.base_evictions;
    }
}

/// A connection to some Pequod-shaped serving system.
///
/// The required method is batched; the conveniences each issue a
/// one-command batch and unwrap the response. All methods take concrete
/// argument types so the trait stays object-safe — workload drivers and
/// the figure binaries hold a `Box<dyn Client>`.
///
/// # Adding a backend
///
/// Implement [`Client::backend_name`] and [`Client::execute_batch`];
/// answer each command with the matching [`Response`] variant (never
/// drop commands — the response vector must align index-for-index with
/// the command vector). Run the conformance suite
/// (`tests/client_conformance.rs`) to prove the backend answers the
/// shared command script identically to the existing ones.
pub trait Client {
    /// Short stable name, used by the figure binaries' `--backend` flag
    /// and results tables.
    fn backend_name(&self) -> &'static str;

    /// Executes a batch of commands, returning one response per command
    /// in order.
    ///
    /// Batching is a transport optimization, never a semantic one: a
    /// batch must answer exactly like the same commands issued one at a
    /// time (`tests/client_conformance.rs` asserts this for every
    /// backend).
    ///
    /// ```
    /// use pequod_core::{Client, Command, Engine, Response};
    /// use pequod_store::{Key, KeyRange, Value};
    ///
    /// let mut engine = Engine::new_default();
    /// let client: &mut dyn Client = &mut engine;
    /// let responses = client.execute_batch(vec![
    ///     Command::Put(Key::from("p|bob|0000000100"), Value::from_static(b"Hi")),
    ///     Command::Get(Key::from("p|bob|0000000100")),
    ///     Command::Count(KeyRange::prefix("p|")),
    ///     Command::Get(Key::from("p|zed|0000000001")), // absent
    /// ]);
    /// assert_eq!(
    ///     responses,
    ///     vec![
    ///         Response::Ok,
    ///         Response::Value(Some(Value::from_static(b"Hi"))),
    ///         Response::Count(1),
    ///         Response::Value(None),
    ///     ]
    /// );
    /// ```
    fn execute_batch(&mut self, commands: Vec<Command>) -> Vec<Response>;

    /// Executes one command.
    fn execute(&mut self, command: Command) -> Response {
        self.execute_batch(vec![command])
            .pop()
            .unwrap_or_else(|| Response::Error("backend returned no response".into()))
    }

    /// Point read; `None` if the key is absent.
    fn get(&mut self, key: &Key) -> Option<Value> {
        match self.execute(Command::Get(key.clone())) {
            Response::Value(v) => v,
            // audit: allow(no-unwrap) — a backend answering the wrong
            // response variant is a protocol bug; the convenience wrappers
            // are documented to abort rather than invent a default.
            other => panic!("get: unexpected response {other:?}"),
        }
    }

    /// Ordered range read.
    fn scan(&mut self, range: &KeyRange) -> Vec<(Key, Value)> {
        match self.execute(Command::Scan(range.clone())) {
            Response::Pairs(p) => p,
            // audit: allow(no-unwrap) — a backend answering the wrong
            // response variant is a protocol bug; the convenience wrappers
            // are documented to abort rather than invent a default.
            other => panic!("scan: unexpected response {other:?}"),
        }
    }

    /// Server-side range count.
    fn count(&mut self, range: &KeyRange) -> u64 {
        match self.execute(Command::Count(range.clone())) {
            Response::Count(n) => n,
            // audit: allow(no-unwrap) — a backend answering the wrong
            // response variant is a protocol bug; the convenience wrappers
            // are documented to abort rather than invent a default.
            other => panic!("count: unexpected response {other:?}"),
        }
    }

    /// Insert or replace.
    fn put(&mut self, key: &Key, value: &Value) {
        match self.execute(Command::Put(key.clone(), value.clone())) {
            Response::Ok => {}
            // audit: allow(no-unwrap) — a backend answering the wrong
            // response variant is a protocol bug; the convenience wrappers
            // are documented to abort rather than invent a default.
            other => panic!("put: unexpected response {other:?}"),
        }
    }

    /// Delete.
    fn remove(&mut self, key: &Key) {
        match self.execute(Command::Remove(key.clone())) {
            Response::Ok => {}
            // audit: allow(no-unwrap) — a backend answering the wrong
            // response variant is a protocol bug; the convenience wrappers
            // are documented to abort rather than invent a default.
            other => panic!("remove: unexpected response {other:?}"),
        }
    }

    /// Installs `;`-separated cache joins.
    fn add_join(&mut self, text: &str) -> Result<(), String> {
        match self.execute(Command::AddJoin(text.to_string())) {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(e),
            // audit: allow(no-unwrap) — a backend answering the wrong
            // response variant is a protocol bug; the convenience wrappers
            // are documented to abort rather than invent a default.
            other => panic!("add_join: unexpected response {other:?}"),
        }
    }

    /// Backend counters.
    fn stats(&mut self) -> BackendStats {
        match self.execute(Command::Stats) {
            Response::Stats(s) => s,
            // audit: allow(no-unwrap) — a backend answering the wrong
            // response variant is a protocol bug; the convenience wrappers
            // are documented to abort rather than invent a default.
            other => panic!("stats: unexpected response {other:?}"),
        }
    }
}

/// The in-process engine is itself a backend: commands apply directly,
/// with no wire or notification delay.
impl Client for Engine {
    fn backend_name(&self) -> &'static str {
        "engine"
    }

    fn execute_batch(&mut self, commands: Vec<Command>) -> Vec<Response> {
        commands
            .into_iter()
            .map(|command| match command {
                Command::Get(key) => Response::Value(self.get(&key)),
                Command::Scan(range) => Response::Pairs(self.scan(&range).pairs),
                Command::Count(range) => Response::Count(self.count(&range) as u64),
                Command::Put(key, value) => {
                    self.put(key, value);
                    Response::Ok
                }
                Command::Remove(key) => {
                    self.remove(&key);
                    Response::Ok
                }
                Command::AddJoin(text) => match self.add_joins_text(&text) {
                    Ok(_) => Response::Ok,
                    Err(e) => Response::Error(e.to_string()),
                },
                Command::Stats => Response::Stats(self.backend_stats()),
            })
            .collect()
    }

    /// Overridden to call [`Engine::backend_stats`] directly instead of
    /// the default `execute_batch(vec![Command::Stats])` round trip.
    ///
    /// This closes PR 4's recursion footgun for good: with only the
    /// default method, a `self.stats()` written inside `execute_batch`
    /// (where autoref can resolve the call through `&mut &mut Engine`
    /// to the *trait* method rather than an inherent one) would loop
    /// `stats → execute → execute_batch → stats` forever. Now every
    /// resolution of `stats` on an `Engine` — inherent-shadowed or not
    /// — bottoms out in the non-recursive inherent
    /// [`Engine::backend_stats`]. The former inherent `Engine::stats`
    /// was renamed [`Engine::engine_stats`] so the two surfaces can no
    /// longer be confused; `stats_cannot_recurse` below is the
    /// regression test.
    fn stats(&mut self) -> BackendStats {
        self.backend_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TIMELINE: &str =
        "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>";

    #[test]
    fn engine_answers_the_unified_surface() {
        let mut e = Engine::new_default();
        let c: &mut dyn Client = &mut e;
        assert_eq!(c.backend_name(), "engine");
        c.add_join(TIMELINE).unwrap();
        c.put(&Key::from("s|ann|bob"), &Value::from_static(b"1"));
        c.put(&Key::from("p|bob|0000000100"), &Value::from_static(b"Hi"));
        let tl = c.scan(&KeyRange::prefix("t|ann|"));
        assert_eq!(tl.len(), 1);
        assert_eq!(c.count(&KeyRange::prefix("t|ann|")), 1);
        assert_eq!(
            c.get(&Key::from("t|ann|0000000100|bob")).as_deref(),
            Some(&b"Hi"[..])
        );
        c.remove(&Key::from("p|bob|0000000100"));
        assert_eq!(c.count(&KeyRange::prefix("t|ann|")), 0);
        assert!(c.add_join("nonsense").is_err());
        let stats = c.stats();
        assert!(stats.keys >= 1);
        assert!(stats.memory_bytes > 0);
    }

    /// Regression test for PR 4's footgun: `Client::stats` on an
    /// `Engine` must bottom out in the inherent
    /// [`Engine::backend_stats`], never loop back through
    /// `execute_batch`. If the override were removed *and* a
    /// `self.stats()` crept into client plumbing, these calls would
    /// recurse until stack overflow; they must instead all agree with
    /// `backend_stats` through every receiver shape — direct, generic
    /// (monomorphized `&mut Engine`), double-reference, and `dyn`.
    #[test]
    fn stats_cannot_recurse() {
        fn via_generic<C: Client>(c: &mut C) -> BackendStats {
            c.stats()
        }
        fn via_double_ref(e: &mut &mut Engine) -> BackendStats {
            // The receiver shape from the PR 4 note: autoref resolves
            // through `&mut &mut Engine`.
            e.stats()
        }
        let mut e = Engine::new_default();
        e.put(Key::from("p|bob|0000000100"), Value::from_static(b"Hi"));
        let want = e.backend_stats();
        assert_eq!(via_generic(&mut e), want);
        assert_eq!(via_double_ref(&mut &mut e), want);
        let d: &mut dyn Client = &mut e;
        assert_eq!(d.stats(), want);
        // And the batched path (the one backend code must use) agrees.
        assert_eq!(e.execute(Command::Stats), Response::Stats(want));
        // The engine-internal counters are a different surface with a
        // different name — no shadowing, no confusion.
        assert_eq!(e.engine_stats().writes, 1);
    }

    #[test]
    fn add_join_is_idempotent() {
        let mut e = Engine::new_default();
        let first = e.add_join_text(TIMELINE).unwrap();
        let again = e.add_join_text(TIMELINE).unwrap();
        assert_eq!(first, again, "identical spec returns the existing id");
        assert_eq!(e.join_count(), 1);
        // Maintenance fires once, not twice, per matching write.
        e.put(Key::from("s|ann|bob"), Value::from_static(b"1"));
        e.put(Key::from("p|bob|0000000100"), Value::from_static(b"Hi"));
        assert_eq!(e.count(&KeyRange::prefix("t|ann|")), 1);
    }

    #[test]
    fn batch_matches_singles() {
        let script = vec![
            Command::AddJoin(TIMELINE.to_string()),
            Command::Put(Key::from("s|ann|bob"), Value::from_static(b"1")),
            Command::Put(Key::from("p|bob|0000000100"), Value::from_static(b"Hi")),
            Command::Scan(KeyRange::prefix("t|ann|")),
            Command::Count(KeyRange::prefix("t|ann|")),
            Command::Get(Key::from("t|ann|0000000100|bob")),
        ];
        let mut batched = Engine::new_default();
        let got_batched = batched.execute_batch(script.clone());
        let mut single = Engine::new_default();
        let got_single: Vec<Response> = script.into_iter().map(|c| single.execute(c)).collect();
        assert_eq!(got_batched, got_single);
        assert_eq!(got_batched.len(), 6);
    }
}
