//! The read path: scans, join status validation, forward query
//! execution (Figures 3 and 5), and lazy application of logged
//! modifications.

use crate::aggregate::Accumulator;
use crate::config::MaterializationMode;
use crate::engine::{Engine, EvictUnit};
use crate::status::{JsState, LoggedMod, Segment};
use crate::types::{CountResult, JoinId, JsId, ScanResult, WriteKind};
use crate::updater::UpdaterEntry;
use bytes::Bytes;
use pequod_join::{containing_range, JoinSpec, Maintenance, Operator, SlotSet};
use pequod_store::{Key, KeyRange, Value};
use pequod_telemetry::OpKind;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A planned updater installation recorded during forward execution
/// (Figure 5: "add updater from [ks−, ks+) to js").
pub(crate) struct PlanEntry {
    source_idx: usize,
    range: KeyRange,
    slots: SlotSet,
}

/// Pre-bound context for targeted re-execution: skip the given source
/// (its key already matched into `slots`), optionally carrying the
/// value-source's value.
pub(crate) struct PreBound {
    pub skip: usize,
    pub slots: SlotSet,
    pub value: Option<Value>,
}

impl Engine {
    // ------------------------------------------------------------------
    // Public reads
    // ------------------------------------------------------------------

    /// Scans `[range.first, range.end)`, executing and validating any
    /// overlapping cache joins first. Returns the pairs plus any base
    /// ranges that must be fetched for a complete answer (§3.3).
    pub fn scan(&mut self, range: &KeyRange) -> ScanResult {
        self.stats.scans += 1;
        let timer = self.recorder.timer();
        if self.recorder.is_enabled() {
            self.rate_for(&range.first).read();
        }
        let mut missing = Vec::new();
        if range.is_empty() {
            return ScanResult::default();
        }
        // Base data requested directly from a remote table?
        if !self.remote.is_empty() {
            self.check_residency(range, &mut missing);
        }
        // Joins overlapping the scan.
        let mut overlay: Option<BTreeMap<Key, Value>> = None;
        for jidx in 0..self.joins.len() {
            let spec = self.joins[jidx].clone();
            let clip = spec.output_range().intersect(range);
            if clip.is_empty() {
                continue;
            }
            if self.is_pull(jidx) {
                let map = overlay.get_or_insert_with(BTreeMap::new);
                for (k, v) in self.exec_join(jidx, &clip, None, None, &mut missing) {
                    map.insert(k, v);
                }
            } else {
                self.validate_join(jidx, &clip, &mut missing);
            }
        }
        let pairs = match overlay {
            // Fast path: everything is materialized in the store; collect
            // in order without a merge map.
            None => {
                let mut pairs = Vec::new();
                self.store.scan(range, |k, v| {
                    pairs.push((k.clone(), v.clone()));
                    true
                });
                pairs
            }
            Some(mut map) => {
                self.store.scan(range, |k, v| {
                    map.entry(k.clone()).or_insert_with(|| v.clone());
                    true
                });
                map.into_iter().collect()
            }
        };
        // Enforce the memory cap only after the answer is collected:
        // reads materialize join ranges, so a capped engine may be over
        // the high watermark right here, but the response must never
        // observe a half-evicted store.
        self.maintain_memory();
        self.paranoid_check();
        self.recorder.observe_op(OpKind::Scan, &timer);
        ScanResult { pairs, missing }
    }

    /// Point read returning just the value. The key may be computed by a
    /// join on demand; any missing-data report is ignored, so use
    /// [`Engine::get_result`] when the engine serves remote or
    /// database-backed tables.
    pub fn get(&mut self, key: &Key) -> Option<Value> {
        self.get_result(key).pairs.pop().map(|(_, v)| v)
    }

    /// Point lookup through the same machinery as [`Engine::scan`]: the
    /// key may be computed by a join on demand, and missing base-data
    /// ranges are reported for the caller to fetch.
    pub fn get_result(&mut self, key: &Key) -> ScanResult {
        self.scan(&KeyRange::single(key.clone()))
    }

    /// Counts pairs in `range` after validating overlapping joins,
    /// without materializing the pairs for the caller (ignores
    /// missing-data reports; see [`Engine::count_result`]).
    pub fn count(&mut self, range: &KeyRange) -> usize {
        self.count_result(range).count
    }

    /// Server-side count (the `Count` command of the unified client
    /// API): validates overlapping joins like [`Engine::scan`], then
    /// folds matching pairs through an [`Accumulator::Count`] instead of
    /// cloning them into a result vector. Reports missing base-data
    /// ranges exactly as a scan would.
    pub fn count_result(&mut self, range: &KeyRange) -> CountResult {
        self.stats.scans += 1;
        let timer = self.recorder.timer();
        if self.recorder.is_enabled() {
            self.rate_for(&range.first).read();
        }
        let mut missing = Vec::new();
        if range.is_empty() {
            return CountResult::default();
        }
        if !self.remote.is_empty() {
            self.check_residency(range, &mut missing);
        }
        // Pull joins are never materialized: their outputs exist only as
        // an overlay, so count distinct keys across overlay and store.
        let mut overlay: Option<BTreeSet<Key>> = None;
        for jidx in 0..self.joins.len() {
            let spec = self.joins[jidx].clone();
            let clip = spec.output_range().intersect(range);
            if clip.is_empty() {
                continue;
            }
            if self.is_pull(jidx) {
                let set = overlay.get_or_insert_with(BTreeSet::new);
                for (k, _) in self.exec_join(jidx, &clip, None, None, &mut missing) {
                    set.insert(k);
                }
            } else {
                self.validate_join(jidx, &clip, &mut missing);
            }
        }
        let count = match overlay {
            None => {
                let mut acc = Accumulator::Count(0);
                self.store.scan(range, |_, v| {
                    acc.fold(v);
                    true
                });
                match acc {
                    Accumulator::Count(n) => n as usize,
                    _ => unreachable!("count accumulator changed kind"),
                }
            }
            Some(mut set) => {
                self.store.scan(range, |k, _| {
                    set.insert(k.clone());
                    true
                });
                set.len()
            }
        };
        self.maintain_memory();
        self.paranoid_check();
        self.recorder.observe_op(OpKind::Count, &timer);
        CountResult { count, missing }
    }

    /// Validates (materializes) joins overlapping `range` without
    /// returning data; used to warm caches.
    pub fn validate_range(&mut self, range: &KeyRange) -> Vec<KeyRange> {
        self.scan(range).missing
    }

    pub(crate) fn is_pull(&self, jidx: usize) -> bool {
        self.config.materialization == MaterializationMode::None
            || matches!(self.joins[jidx].maintenance, Maintenance::Pull)
    }

    // ------------------------------------------------------------------
    // Validation (Figure 5)
    // ------------------------------------------------------------------

    /// Ensures the join's output is materialized and valid over `clip`.
    pub(crate) fn validate_join(
        &mut self,
        jidx: usize,
        clip: &KeyRange,
        missing: &mut Vec<KeyRange>,
    ) {
        if self.config.materialization == MaterializationMode::None {
            return;
        }
        let spec = self.joins[jidx].clone();
        if matches!(spec.maintenance, Maintenance::Pull) {
            return;
        }
        let clip = spec.output_range().intersect(clip);
        if clip.is_empty() {
            return;
        }
        for seg in self.status[jidx].segments(&clip) {
            match seg {
                Segment::Covered(jsid) => self.refresh_jsrange(jidx, jsid, &spec, missing),
                Segment::Gap(gap) => self.materialize_gap(jidx, &gap, missing),
            }
        }
    }

    fn refresh_jsrange(
        &mut self,
        jidx: usize,
        jsid: JsId,
        spec: &Arc<JoinSpec>,
        missing: &mut Vec<KeyRange>,
    ) {
        let Some(js) = self.status[jidx].get(jsid) else {
            return;
        };
        let extent = js.range();
        // Snapshot expiry: recompute from scratch (§3.4).
        if let Maintenance::Snapshot(ttl) = spec.maintenance {
            if js.snapshot_expired(ttl, self.clock) {
                self.teardown_jsrange(jidx, jsid, true);
                self.materialize_gap(jidx, &extent, missing);
                return;
            }
        }
        match js.state {
            JsState::Invalid => {
                self.teardown_jsrange(jidx, jsid, true);
                self.materialize_gap(jidx, &extent, missing);
            }
            JsState::Valid => {
                // Apply the pending log (lazy maintenance, §3.2).
                let pending = match self.status[jidx].get_mut(jsid) {
                    Some(js) => std::mem::take(&mut js.pending),
                    None => return,
                };
                for m in pending {
                    self.stats.mods_applied += 1;
                    self.apply_logged_mod(jidx, jsid, &m);
                    // Application may have completely invalidated the range.
                    match self.status[jidx].get(jsid) {
                        Some(js) if js.state == JsState::Valid => {}
                        _ => break,
                    }
                }
                match self.status[jidx].get(jsid) {
                    Some(js) if js.state == JsState::Invalid => {
                        self.teardown_jsrange(jidx, jsid, true);
                        self.materialize_gap(jidx, &extent, missing);
                    }
                    Some(_) => {
                        // The materialized range answered as-is: a
                        // cache hit in the paper's §8 sense.
                        self.recorder.lru_hit();
                        self.lru.touch(EvictUnit::Js(jidx as u32, jsid))
                    }
                    None => {}
                }
            }
        }
    }

    /// Computes a fresh output range and installs its status range and
    /// updaters (Figure 5). If base data was missing, nothing is
    /// installed: the restarted query recomputes after the fetch.
    pub(crate) fn materialize_gap(
        &mut self,
        jidx: usize,
        gap: &KeyRange,
        missing: &mut Vec<KeyRange>,
    ) {
        if gap.is_empty() {
            return;
        }
        self.recorder.lru_miss();
        let spec = self.joins[jidx].clone();
        let want_updaters = matches!(spec.maintenance, Maintenance::Push);
        let mut plan: Vec<PlanEntry> = Vec::new();
        let mut local_missing = Vec::new();
        let outs = self.exec_join(
            jidx,
            gap,
            None,
            want_updaters.then_some(&mut plan),
            &mut local_missing,
        );
        if !local_missing.is_empty() {
            missing.extend(local_missing);
            return;
        }
        let is_copy = spec.value_op() == Operator::Copy;
        for (k, v) in outs {
            let (v, shared) = if is_copy && self.config.value_sharing {
                (v, true)
            } else if is_copy {
                (Bytes::copy_from_slice(&v), false)
            } else {
                (v, false)
            };
            self.write(k, Some(v), shared);
        }
        let jsid = self.status[jidx].insert(gap.clone(), self.clock);
        for pe in plan {
            let node = self.updaters.install(
                pe.range,
                UpdaterEntry {
                    join: JoinId(jidx as u32),
                    source_idx: pe.source_idx,
                    slots: pe.slots,
                    js: jsid,
                    hint: None,
                },
            );
            if let Some(js) = self.status[jidx].get_mut(jsid) {
                if !js.updaters.contains(&node) {
                    js.updaters.push(node);
                }
            }
        }
        self.stats.ranges_materialized += 1;
        self.lru.touch(EvictUnit::Js(jidx as u32, jsid));
    }

    /// Removes a status range, its updaters, and (optionally) its
    /// outputs from the store. Output removal goes through the normal
    /// write path so downstream joins observe it.
    pub(crate) fn teardown_jsrange(&mut self, jidx: usize, jsid: JsId, remove_outputs: bool) {
        let Some(js) = self.status[jidx].remove(jsid) else {
            return;
        };
        self.updaters
            .remove_for_js(&js.updaters, JoinId(jidx as u32), jsid);
        self.lru.remove(&EvictUnit::Js(jidx as u32, jsid));
        if remove_outputs {
            let spec = self.joins[jidx].clone();
            let mut doomed = Vec::new();
            self.store.scan(&js.range(), |k, _| {
                let mut s = spec.slots.empty_set();
                if spec.output.match_key(k, &mut s) {
                    doomed.push(k.clone());
                }
                true
            });
            for k in doomed {
                self.write(k, None, false);
            }
        }
    }

    // ------------------------------------------------------------------
    // Forward query execution (Figure 3)
    // ------------------------------------------------------------------

    /// Executes a join over `clip`, returning its output pairs. The
    /// nested-loop enumeration follows Figure 3: derive slots from the
    /// requested range, then for each source compute a containing range,
    /// scan it, and match keys, recursing per source.
    pub(crate) fn exec_join(
        &mut self,
        jidx: usize,
        clip: &KeyRange,
        pre: Option<PreBound>,
        plan: Option<&mut Vec<PlanEntry>>,
        missing: &mut Vec<KeyRange>,
    ) -> Vec<(Key, Value)> {
        let spec = self.joins[jidx].clone();
        self.stats.join_execs += 1;
        let mut slots = spec.slots.empty_set();
        spec.output.derive_slots(clip, &mut slots);
        let (skip, value0) = match pre {
            Some(p) => {
                if !slots.merge(&p.slots) {
                    return Vec::new();
                }
                (Some(p.skip), p.value)
            }
            None => (None, None),
        };
        let mut ctx = ExecCtx {
            spec: &spec,
            jidx,
            clip,
            skip,
            out: Vec::new(),
            aggs: BTreeMap::new(),
            plan: Vec::new(),
            want_plan: plan.is_some(),
        };
        self.exec_level(&mut ctx, 0, &mut slots, value0, missing);
        let ExecCtx {
            out,
            aggs,
            plan: produced_plan,
            ..
        } = ctx;
        if let Some(p) = plan {
            *p = produced_plan;
        }
        let result = if spec.is_aggregate() {
            aggs.into_iter().map(|(k, a)| (k, a.finish())).collect()
        } else {
            out
        };
        self.stats.exec_outputs += result.len() as u64;
        result
    }

    fn exec_level(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        level: usize,
        slots: &mut SlotSet,
        captured: Option<Value>,
        missing: &mut Vec<KeyRange>,
    ) {
        if level == ctx.spec.sources.len() {
            let Some(out_key) = ctx.spec.output.expand(slots) else {
                return;
            };
            if !ctx.clip.contains(&out_key) {
                return;
            }
            let Some(v) = captured else { return };
            if ctx.spec.is_aggregate() {
                let op = ctx.spec.value_op();
                ctx.aggs
                    .entry(out_key)
                    .and_modify(|a| a.fold(&v))
                    .or_insert_with(|| Accumulator::start(op, &v));
            } else {
                ctx.out.push((out_key, v));
            }
            return;
        }
        if Some(level) == ctx.skip {
            self.exec_level(ctx, level + 1, slots, captured, missing);
            return;
        }
        let src = &ctx.spec.sources[level];
        let crange = containing_range(&src.pattern, &ctx.spec.output, slots, ctx.clip);
        if crange.is_empty() {
            return;
        }
        if ctx.want_plan {
            ctx.plan.push(PlanEntry {
                source_idx: level,
                range: crange.clone(),
                slots: slots.clone(),
            });
        }
        let found = self.collect_source(ctx.jidx, &crange, missing);
        let value_source = ctx.spec.value_source();
        // Reuse one slot set across candidates via an undo trail instead
        // of cloning per key (the nested-loop hot path).
        let mut undo = Vec::with_capacity(4);
        for (k, v) in found {
            undo.clear();
            if ctx.spec.sources[level]
                .pattern
                .match_key_undo(&k, slots, &mut undo)
            {
                let cap = if level == value_source {
                    Some(v)
                } else {
                    captured.clone()
                };
                self.exec_level(ctx, level + 1, slots, cap, missing);
                for id in undo.drain(..) {
                    slots.unbind(id);
                }
            }
        }
    }

    /// Gathers the contents of a source range: resident store data plus
    /// the outputs of any other joins that feed this range (recursive
    /// query execution, §3.3), reporting missing base data.
    fn collect_source(
        &mut self,
        cur_jidx: usize,
        crange: &KeyRange,
        missing: &mut Vec<KeyRange>,
    ) -> Vec<(Key, Value)> {
        if !self.remote.is_empty() {
            self.check_residency(crange, missing);
        }
        let mut overlay: Option<BTreeMap<Key, Value>> = None;
        for j2 in 0..self.joins.len() {
            if j2 == cur_jidx {
                continue;
            }
            let spec2 = self.joins[j2].clone();
            let clip2 = spec2.output_range().intersect(crange);
            if clip2.is_empty() {
                continue;
            }
            if self.is_pull(j2) {
                let map = overlay.get_or_insert_with(BTreeMap::new);
                for (k, v) in self.exec_join(j2, &clip2, None, None, missing) {
                    map.insert(k, v);
                }
            } else {
                self.validate_join(j2, &clip2, missing);
            }
        }
        match overlay {
            None => {
                let mut pairs = Vec::new();
                self.store.scan(crange, |k, v| {
                    pairs.push((k.clone(), v.clone()));
                    true
                });
                pairs
            }
            Some(mut map) => {
                self.store.scan(crange, |k, v| {
                    map.entry(k.clone()).or_insert_with(|| v.clone());
                    true
                });
                map.into_iter().collect()
            }
        }
    }

    // ------------------------------------------------------------------
    // Lazy maintenance: applying logged modifications (§3.2)
    // ------------------------------------------------------------------

    /// Applies one source modification to a materialized range: a
    /// targeted re-execution with the modified key's slots pre-bound
    /// (insert) or a targeted removal of the outputs it supported
    /// (remove). Falls back to complete invalidation for aggregate
    /// groups disturbed by check-source changes and on missing data.
    pub(crate) fn apply_logged_mod(&mut self, jidx: usize, jsid: JsId, m: &LoggedMod) {
        let spec = self.joins[jidx].clone();
        let Some(js) = self.status[jidx].get(jsid) else {
            return;
        };
        let extent = js.range();
        let vsrc = spec.value_source();
        if spec.is_aggregate() && m.source_idx != vsrc {
            // A check change shifts whole groups in or out of the
            // aggregate; recompute the range.
            self.complete_invalidate(jidx, jsid);
            return;
        }
        if m.kind == WriteKind::Update && m.source_idx != vsrc {
            return; // check values are never read
        }
        let mut slots = spec.slots.empty_set();
        spec.output.derive_slots(&extent, &mut slots);
        if !spec.sources[m.source_idx]
            .pattern
            .match_key(&m.key, &mut slots)
        {
            return; // inconsistent with this range: not relevant
        }
        match m.kind {
            WriteKind::Insert | WriteKind::Update => {
                let value = if m.source_idx == vsrc {
                    match self.store.peek(&m.key).cloned() {
                        Some(v) => Some(v),
                        None => return, // key vanished since logging
                    }
                } else {
                    None
                };
                let want_updaters = matches!(spec.maintenance, Maintenance::Push);
                let mut plan: Vec<PlanEntry> = Vec::new();
                let mut local_missing = Vec::new();
                let outs = self.exec_join(
                    jidx,
                    &extent,
                    Some(PreBound {
                        skip: m.source_idx,
                        slots,
                        value,
                    }),
                    want_updaters.then_some(&mut plan),
                    &mut local_missing,
                );
                if !local_missing.is_empty() {
                    self.complete_invalidate(jidx, jsid);
                    return;
                }
                let is_copy = spec.value_op() == Operator::Copy;
                for (k, v) in outs {
                    let (v, shared) = if is_copy && self.config.value_sharing {
                        (v, true)
                    } else {
                        (Bytes::copy_from_slice(&v), false)
                    };
                    self.write(k, Some(v), shared);
                }
                for pe in plan {
                    let node = self.updaters.install(
                        pe.range,
                        UpdaterEntry {
                            join: JoinId(jidx as u32),
                            source_idx: pe.source_idx,
                            slots: pe.slots,
                            js: jsid,
                            hint: None,
                        },
                    );
                    if let Some(js) = self.status[jidx].get_mut(jsid) {
                        if !js.updaters.contains(&node) {
                            js.updaters.push(node);
                        }
                    }
                }
            }
            WriteKind::Remove => {
                // Remove the outputs this tuple supported: output keys in
                // the range consistent with the tuple's slot bindings.
                let target = containing_range(&spec.output, &spec.output, &slots, &extent)
                    .intersect(&extent);
                let mut doomed = Vec::new();
                self.store.scan(&target, |k, _| {
                    let mut s = slots.clone();
                    if spec.output.match_key(k, &mut s) {
                        doomed.push(k.clone());
                    }
                    true
                });
                for k in doomed {
                    self.write(k, None, false);
                }
                // Drop updaters installed beneath the removed tuple so
                // future source writes stop resurrecting these outputs.
                if let Some(js) = self.status[jidx].get(jsid) {
                    let nodes = js.updaters.clone();
                    let join = JoinId(jidx as u32);
                    for node in nodes {
                        self.updaters.remove_entries(node, |e| {
                            e.join == join && e.js == jsid && e.source_idx > m.source_idx && {
                                let mut merged = e.slots.clone();
                                merged.merge(&slots)
                            }
                        });
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Eviction (§2.5)
    // ------------------------------------------------------------------

    /// Evicts least-recently-used units until estimated memory is at or
    /// below `target_bytes` (or nothing evictable remains). Returns the
    /// number of units evicted.
    ///
    /// This is the manual form of the eviction that
    /// [`Engine::maintain_memory`] runs automatically when a
    /// [`MemoryLimit`](crate::config::MemoryLimit) is configured.
    /// Evicting computed data tears down the join status range; evicting
    /// cached base data removes the rows *without* treating them as
    /// deletions, and instead invalidates dependent computed ranges,
    /// which recompute (and refetch) on their next read.
    pub fn evict_to(&mut self, target_bytes: usize) -> usize {
        let mut evicted = 0;
        while self.memory_bytes() > target_bytes {
            let Some(unit) = self.lru.pop_lru() else {
                break;
            };
            if self.evict_one(unit) {
                evicted += 1;
            }
        }
        evicted
    }

    /// Enforces the configured [`MemoryLimit`](crate::config::MemoryLimit):
    /// when estimated memory exceeds the high watermark, least-recently-
    /// used units are evicted down to the low watermark. Returns the
    /// number of units evicted (0 when unbounded or under the cap).
    ///
    /// Every public read and write calls this after its answer is
    /// collected, so a capped engine holds the invariant *memory is at
    /// or below the cap after each operation's maintenance* (as long as
    /// anything evictable remains — authoritative base data is never
    /// dropped). Evicted computed ranges are transparently recomputed on
    /// the next read:
    ///
    /// ```
    /// use pequod_core::config::MemoryLimit;
    /// use pequod_core::{Engine, EngineConfig};
    /// use pequod_store::KeyRange;
    ///
    /// let cfg = EngineConfig::default().with_mem_limit(MemoryLimit::new(6 * 1024));
    /// let mut engine = Engine::new(cfg);
    /// engine
    ///     .add_join_text(
    ///         "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>",
    ///     )
    ///     .unwrap();
    /// for u in 0..40 {
    ///     engine.put(format!("s|u{u:03}|bob"), "1");
    /// }
    /// for t in 0..20u64 {
    ///     engine.put(format!("p|bob|{t:010}"), "some tweet text");
    /// }
    /// // Reading every timeline materializes far more than 6 KiB of
    /// // computed data; automatic eviction keeps the engine under the
    /// // cap and every answer stays identical to an unbounded engine's.
    /// for u in 0..40 {
    ///     let tl = engine.scan(&KeyRange::prefix(format!("t|u{u:03}|")));
    ///     assert_eq!(tl.pairs.len(), 20);
    ///     assert!(engine.memory_bytes() <= 6 * 1024);
    /// }
    /// assert!(engine.engine_stats().js_evictions > 0);
    /// ```
    pub fn maintain_memory(&mut self) -> usize {
        let Some(limit) = self.config.mem_limit else {
            return 0;
        };
        let used = self.memory_bytes();
        self.stats.peak_memory_bytes = self.stats.peak_memory_bytes.max(used as u64);
        if used <= limit.high_bytes {
            return 0;
        }
        let mut evicted = 0;
        loop {
            let used = self.memory_bytes();
            if used <= limit.low_bytes {
                break;
            }
            // In the hysteresis band, spare the final (most recently
            // used) unit: it is typically the range an in-flight parked
            // query just fetched, and re-evicting it would turn the
            // restart into a refetch loop.
            if self.lru.len() <= 1 && used <= limit.high_bytes {
                break;
            }
            let Some(unit) = self.lru.pop_lru() else {
                break;
            };
            if self.evict_one(unit) {
                evicted += 1;
            }
        }
        evicted
    }

    /// Evicts one unit (already removed from the LRU tracker). Returns
    /// `false` when the unit turned out unevictable — a base table
    /// whose cached rows are all authoritative — and was skipped.
    fn evict_one(&mut self, unit: EvictUnit) -> bool {
        match unit {
            EvictUnit::Js(jidx, jsid) => {
                let extent = self
                    .status
                    .get(jidx as usize)
                    .and_then(|m| m.get(jsid))
                    .map(|js| js.range());
                self.teardown_jsrange(jidx as usize, jsid, true);
                self.stats.js_evictions += 1;
                self.recorder.evicted_js(|| match extent {
                    Some(r) => format!("join {jidx} range {r:?}"),
                    None => format!("join {jidx} js {}", jsid.0),
                });
                true
            }
            EvictUnit::Base(prefix) => {
                let range = KeyRange::prefix(prefix.clone());
                // Rows this engine is the authority for are the only
                // copy and stay put; only replicas are droppable.
                let authority = self.base_authority.clone();
                let mut doomed = Vec::new();
                self.store.scan(&range, |k, _| {
                    if authority.as_ref().is_none_or(|auth| !auth(k)) {
                        doomed.push(k.clone());
                    }
                    true
                });
                if authority.is_some() && doomed.is_empty() {
                    // Every cached row in this table is ours: there is
                    // nothing to reclaim, and invalidating dependents
                    // would rebuild computed data for zero bytes freed.
                    // Skip the unit; the next read re-registers it.
                    return false;
                }
                // Source-side dependents: computed ranges maintained from
                // this base data must recompute once it is gone.
                let mut dependents: Vec<(usize, JsId)> = Vec::new();
                for node in self.updaters.overlapping(&range) {
                    if let Some(entries) = self.updaters.entries(node) {
                        for e in entries {
                            dependents.push((e.join.0 as usize, e.js));
                        }
                    }
                }
                for (jidx, jsid) in dependents {
                    self.complete_invalidate(jidx, jsid);
                }
                // Output-side dependents: if a join *writes into* the
                // evicted table (a partitioned output table in a sharded
                // deployment), its materialized ranges lose their rows
                // below and must recompute too.
                for jidx in 0..self.joins.len() {
                    let clip = self.joins[jidx].output_range().intersect(&range);
                    if clip.is_empty() {
                        continue;
                    }
                    let covered: Vec<JsId> = self.status[jidx]
                        .segments(&clip)
                        .into_iter()
                        .filter_map(|seg| match seg {
                            Segment::Covered(id) => Some(id),
                            Segment::Gap(_) => None,
                        })
                        .collect();
                    for jsid in covered {
                        self.complete_invalidate(jidx, jsid);
                    }
                }
                // Drop the replica rows silently (eviction, not
                // deletion) and release the residency bookkeeping; kept
                // authoritative rows re-prove residency on the next
                // read without a refetch.
                for k in &doomed {
                    self.store.remove(k);
                }
                if let Some(rs) = self.remote.get_mut(&prefix) {
                    rs.clear();
                }
                self.stats.base_evictions += 1;
                self.recorder
                    .evicted_base(|| format!("table {prefix} ({} rows)", doomed.len()));
                true
            }
        }
    }
}

struct ExecCtx<'a> {
    spec: &'a Arc<JoinSpec>,
    jidx: usize,
    clip: &'a KeyRange,
    skip: Option<usize>,
    out: Vec<(Key, Value)>,
    aggs: BTreeMap<Key, Accumulator>,
    plan: Vec<PlanEntry>,
    want_plan: bool,
}
