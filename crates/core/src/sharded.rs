//! A sharded multi-core engine: N single-threaded [`Engine`] shards
//! behind one [`Client`] surface.
//!
//! The paper scales Pequod by running one single-threaded server
//! process per core and partitioning base tables across them (§2.4);
//! cross-server joins stay fresh because reading a remote base range
//! installs a *subscription* at its home server, which forwards later
//! updates with *notifications*. [`ShardedEngine`] reproduces that
//! architecture inside one process:
//!
//! * Each shard is a worker thread owning one single-threaded
//!   [`Engine`] — the engine itself needs no locks, exactly like the
//!   paper's event-driven server processes.
//! * The shard for a key is chosen by the same [`Partition`] functions
//!   the distributed tier uses for whole servers (`pequod_net`
//!   re-exports them from [`crate::partition`]).
//! * Cross-shard joins mirror the server-level Subscribe/Notify
//!   protocol over in-process channels: a query that needs base data
//!   homed on another shard parks, subscribes to the owning shard, and
//!   restarts when the data arrives; subsequent writes at the home
//!   shard are forwarded to subscribers as notifications.
//! * A range the partition cannot prove single-homed (a whole-table
//!   scan under a hash partition, say) is scatter-gathered: the
//!   executing shard subscribes to the range at *every* peer, each
//!   returns only the keys it is authoritative for, and the pieces are
//!   installed atomically — so even cross-shard ranges answer exactly
//!   like a single [`Engine`] (at broadcast cost; the paper's client
//!   routing keeps the hot paths single-shard).
//! * A [`MemoryLimit`](crate::config::MemoryLimit) in the config is
//!   split into even per-shard budgets. Each shard evicts its own LRU
//!   computed ranges and cached peer replicas (§2.5) — never the rows
//!   it is the partition's authority for — and the merged `Stats`
//!   reply sums footprints and eviction counters node-wide (see
//!   `docs/MEMORY.md`).
//!
//! # Consistency
//!
//! A batch is split into *runs* of like commands (reads / writes /
//! joins / stats), identically to `pequod_net::ClusterClient`. Each run
//! is pipelined to all shards at once; the client waits for every reply
//! before starting the next run. Because each shard's mailbox is FIFO
//! and a home shard enqueues notifications to subscribers *before*
//! acknowledging the write, any command issued after a write's
//! acknowledgment observes that write — so one client's batch answers
//! exactly like the same commands issued one at a time against a single
//! [`Engine`] (the conformance suite asserts byte-identical responses).
//! Concurrent clients (separate [`ShardedHandle`]s) see eventual
//! consistency across shards, matching the paper's semantics for
//! concurrent writers.

use crate::client::{BackendStats, Client, Command, Response};
use crate::config::EngineConfig;
use crate::engine::Engine;
use crate::partition::Partition;
use pequod_store::{Key, KeyRange, RangeSet, Value};
use pequod_telemetry::{Recorder, Snapshot};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Give up on a query after this many fetch-and-restart rounds
/// (mirrors `pequod_net::ServerNode`).
const MAX_RETRIES: u32 = 16;

/// Thread-safety contract: a whole engine moves onto each worker
/// thread, messages move between shards, and handles are shared across
/// client threads (the TCP server hands one to every connection).
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<Engine>();
    assert_send::<ShardMsg>();
    assert_send_sync::<ShardedHandle>();
    assert_send_sync::<ShardSubmitter>();
};

/// A message delivered to one shard's mailbox. `Run` comes from
/// clients; the rest mirror the server-to-server subscription protocol
/// of `pequod_net::Message`.
enum ShardMsg {
    /// A run of client commands addressed to this shard; one reply per
    /// command, matched by id.
    Run {
        items: Vec<(u64, Command)>,
        reply: Sender<(u64, Response)>,
    },
    /// Peer shard `from` wants `range`'s current contents plus future
    /// updates (Subscribe).
    Subscribe {
        id: u64,
        range: KeyRange,
        from: usize,
    },
    /// The answer to a `Subscribe` this shard sent (SubscribeReply).
    SubscribeReply {
        id: u64,
        range: KeyRange,
        pairs: Vec<(Key, Value)>,
    },
    /// An update to a range this shard subscribed to (Notify).
    Notify { key: Key, value: Option<Value> },
    /// Paranoid audit: run the deep invariant checker on this shard's
    /// engine and report the shard's subscription state for the
    /// cross-shard symmetry check ([`ShardedEngine::check_invariants`]).
    CheckInvariants { reply: Sender<ShardAudit> },
    /// Graceful shutdown: final snapshot + fsync of this shard's
    /// durability sink ([`Engine::finalize_durability`]).
    Finalize { reply: Sender<()> },
    /// Stop the worker thread.
    Shutdown,
}

/// One shard's contribution to [`ShardedEngine::check_invariants`].
struct ShardAudit {
    shard: usize,
    /// Violations from this shard's `Engine::check_invariants`.
    violations: Vec<String>,
    /// Ranges this shard serves to each peer (outgoing replication).
    serving: Vec<(KeyRange, usize)>,
    /// Resident replicated ranges on this shard (incoming).
    resident: Vec<KeyRange>,
}

/// Per-shard counters, readable while the shard runs.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Client commands executed.
    pub commands: AtomicU64,
    /// Queries that parked waiting for another shard's data.
    pub parked: AtomicU64,
    /// Subscriptions granted to peer shards.
    pub subs_granted: AtomicU64,
    /// Subscriptions this shard established at peers.
    pub subs_established: AtomicU64,
    /// Notifications sent to subscribers.
    pub notifies_sent: AtomicU64,
    /// Notifications applied from home shards.
    pub notifies_applied: AtomicU64,
}

/// What a parked query replies with once its range is complete.
#[derive(Clone, Copy, PartialEq, Eq)]
enum QueryKind {
    Get,
    Scan,
    Count,
}

/// A query waiting on subscription fetches from peer shards (§3.3:
/// park with a restart context, resume when the fetches land).
/// `outstanding` holds [`FetchGroup`] ids.
struct Parked {
    id: u64,
    kind: QueryKind,
    range: KeyRange,
    reply: Sender<(u64, Response)>,
    outstanding: HashSet<u64>,
    retries: u32,
}

/// One missing range being fetched, possibly from several peers at
/// once: a range the partition can prove single-homed is fetched from
/// that home; a range that may span shards (e.g. a whole table under a
/// component-hash partition) is scatter-gathered from *every* peer,
/// each returning only the keys it is authoritative for. The pairs are
/// buffered and installed in one step when the last reply arrives, so
/// no other query can observe the range half-fetched-but-resident.
struct FetchGroup {
    range: KeyRange,
    /// Per-peer subscribe ids still outstanding.
    outstanding: HashSet<u64>,
    pairs: Vec<(Key, Value)>,
}

/// One worker: a single-threaded engine plus the subscription state a
/// `ServerNode` would keep, driven by an in-process mailbox.
struct ShardWorker {
    shard: usize,
    engine: Engine,
    partition: Arc<dyn Partition>,
    peers: Vec<Sender<ShardMsg>>,
    rx: Receiver<ShardMsg>,
    /// Ranges peer shards replicate from us.
    subscribers: Vec<(KeyRange, usize)>,
    parked: Vec<Parked>,
    /// In-flight fetches by group id.
    fetch_groups: HashMap<u64, FetchGroup>,
    /// Subscribe id → owning fetch group.
    fetch_to_group: HashMap<u64, u64>,
    next_fetch_id: u64,
    stats: Arc<ShardStats>,
}

impl ShardWorker {
    fn run(mut self) {
        while let Ok(msg) = self.rx.recv() {
            match msg {
                ShardMsg::Run { items, reply } => {
                    for (id, cmd) in items {
                        self.stats.commands.fetch_add(1, Ordering::Relaxed);
                        self.execute(id, cmd, &reply);
                    }
                }
                ShardMsg::Subscribe { id, range, from } => {
                    let pairs = self.serve_subscribe(&range);
                    if !self
                        .subscribers
                        .iter()
                        .any(|(r, p)| *p == from && r == &range)
                    {
                        self.subscribers.push((range.clone(), from));
                        self.stats.subs_granted.fetch_add(1, Ordering::Relaxed);
                    }
                    let _ = self.peers[from].send(ShardMsg::SubscribeReply { id, range, pairs });
                }
                ShardMsg::SubscribeReply { id, range, pairs } => {
                    self.stats.subs_established.fetch_add(1, Ordering::Relaxed);
                    let Some(gid) = self.fetch_to_group.remove(&id) else {
                        continue; // stale reply for a completed group
                    };
                    let Some(group) = self.fetch_groups.get_mut(&gid) else {
                        continue;
                    };
                    debug_assert!(range == group.range, "reply range matches its group");
                    group.outstanding.remove(&id);
                    group.pairs.extend(pairs);
                    if group.outstanding.is_empty() {
                        if let Some(group) = self.fetch_groups.remove(&gid) {
                            self.engine.install_base(&group.range, group.pairs);
                            self.resume_parked(gid);
                        }
                    }
                }
                ShardMsg::Notify { key, value } => {
                    // A notify for a range this shard has evicted is
                    // dropped: applying it would recreate untracked
                    // replica rows. The next read refetches the range.
                    if !self.engine.holds_key(&key) {
                        continue;
                    }
                    self.stats.notifies_applied.fetch_add(1, Ordering::Relaxed);
                    match value {
                        Some(v) => self.engine.put(key, v),
                        None => self.engine.remove(&key),
                    }
                }
                ShardMsg::CheckInvariants { reply } => {
                    // Report replica ranges only: a range this shard
                    // homes (home writes mark their key resident) is
                    // authoritative data, not a replica, and needs no
                    // peer serving updates to it.
                    let resident = self
                        .engine
                        .all_resident_ranges()
                        .into_iter()
                        .filter(|r| {
                            self.partition
                                .home_of_range(r)
                                .is_none_or(|s| s.0 as usize % self.peers.len() != self.shard)
                        })
                        .collect();
                    let _ = reply.send(ShardAudit {
                        shard: self.shard,
                        violations: self.engine.check_invariants(),
                        serving: self.subscribers.clone(),
                        resident,
                    });
                }
                ShardMsg::Finalize { reply } => {
                    self.engine.finalize_durability();
                    let _ = reply.send(());
                }
                ShardMsg::Shutdown => break,
            }
        }
    }

    fn home_shard(&self, key: &Key) -> usize {
        self.partition.home_of(key).0 as usize % self.peers.len()
    }

    fn execute(&mut self, id: u64, cmd: Command, reply: &Sender<(u64, Response)>) {
        match cmd {
            Command::Get(key) => self.start_query(id, QueryKind::Get, KeyRange::single(key), reply),
            Command::Scan(range) => self.start_query(id, QueryKind::Scan, range, reply),
            Command::Count(range) => self.start_query(id, QueryKind::Count, range, reply),
            Command::Put(key, value) => {
                self.apply_write(key, Some(value));
                let _ = reply.send((id, Response::Ok));
            }
            Command::Remove(key) => {
                self.apply_write(key, None);
                let _ = reply.send((id, Response::Ok));
            }
            Command::AddJoin(text) => {
                let resp = match self.engine.add_joins_text(&text) {
                    Ok(_) => Response::Ok,
                    Err(e) => Response::Error(e.to_string()),
                };
                let _ = reply.send((id, resp));
            }
            Command::Stats => {
                let _ = reply.send((id, Response::Stats(self.engine.backend_stats())));
            }
        }
    }

    /// A home write: make the written key resident (we are its
    /// authority), apply it with normal incremental maintenance, and
    /// forward it to every subscriber — *before* the caller's ack, so a
    /// command ordered after the ack observes the notification.
    fn apply_write(&mut self, key: Key, value: Option<Value>) {
        self.engine.mark_resident(&KeyRange::single(key.clone()));
        match &value {
            Some(v) => self.engine.put(key.clone(), v.clone()),
            None => self.engine.remove(&key),
        }
        let mut notified: HashSet<usize> = HashSet::new();
        for (range, peer) in &self.subscribers {
            if range.contains(&key) && notified.insert(*peer) {
                self.stats.notifies_sent.fetch_add(1, Ordering::Relaxed);
                let _ = self.peers[*peer].send(ShardMsg::Notify {
                    key: key.clone(),
                    value: value.clone(),
                });
            }
        }
    }

    fn start_query(
        &mut self,
        id: u64,
        kind: QueryKind,
        range: KeyRange,
        reply: &Sender<(u64, Response)>,
    ) {
        let parked = Parked {
            id,
            kind,
            range,
            reply: reply.clone(),
            outstanding: HashSet::new(),
            retries: 0,
        };
        self.drive_query(parked);
    }

    /// Runs a query until it completes or parks on subscription fetches.
    fn drive_query(&mut self, mut q: Parked) {
        loop {
            let missing = match q.kind {
                QueryKind::Count => {
                    let res = self.engine.count_result(&q.range);
                    if res.is_complete() {
                        let _ = q.reply.send((q.id, Response::Count(res.count as u64)));
                        return;
                    }
                    res.missing
                }
                QueryKind::Get | QueryKind::Scan => {
                    let res = if q.kind == QueryKind::Get {
                        self.engine.get_result(&q.range.first)
                    } else {
                        self.engine.scan(&q.range)
                    };
                    if res.is_complete() {
                        let resp = match q.kind {
                            QueryKind::Get => {
                                Response::Value(res.pairs.into_iter().next().map(|(_, v)| v))
                            }
                            _ => Response::Pairs(res.pairs),
                        };
                        let _ = q.reply.send((q.id, resp));
                        return;
                    }
                    res.missing
                }
            };
            q.retries += 1;
            if q.retries > MAX_RETRIES {
                let _ = q
                    .reply
                    .send((q.id, Response::Error("query exceeded fetch retries".into())));
                return;
            }
            let mut sent = false;
            for miss in missing {
                // A provably single-homed range is fetched from its
                // home; anything else (a range that may span shards,
                // like a whole table under a hash partition) is
                // scatter-gathered from every peer.
                let targets: Vec<usize> = match self
                    .partition
                    .home_of_range(&miss)
                    .map(|s| s.0 as usize % self.peers.len())
                {
                    Some(home) if home == self.shard => {
                        // We are the authority: absence is knowledge.
                        self.engine.mark_resident(&miss);
                        continue;
                    }
                    Some(home) => vec![home],
                    None => (0..self.peers.len()).filter(|p| *p != self.shard).collect(),
                };
                if targets.is_empty() {
                    self.engine.mark_resident(&miss);
                    continue;
                }
                q.outstanding.insert(self.start_fetch(miss, &targets));
                sent = true;
            }
            if !sent {
                // Everything missing was local: retry immediately.
                continue;
            }
            self.stats.parked.fetch_add(1, Ordering::Relaxed);
            self.parked.push(q);
            return;
        }
    }

    /// Opens a [`FetchGroup`] subscribing to `range` at each target
    /// peer; returns the group id a parked query waits on.
    fn start_fetch(&mut self, range: KeyRange, targets: &[usize]) -> u64 {
        let gid = self.next_fetch_id;
        self.next_fetch_id += 1;
        let mut outstanding = HashSet::new();
        for &peer in targets {
            let fid = self.next_fetch_id;
            self.next_fetch_id += 1;
            outstanding.insert(fid);
            self.fetch_to_group.insert(fid, gid);
            let _ = self.peers[peer].send(ShardMsg::Subscribe {
                id: fid,
                range: range.clone(),
                from: self.shard,
            });
        }
        self.fetch_groups.insert(
            gid,
            FetchGroup {
                range,
                outstanding,
                pairs: Vec::new(),
            },
        );
        gid
    }

    /// Called when a subscription fetch lands; restarts any query that
    /// was waiting on it.
    fn resume_parked(&mut self, fetch_id: u64) {
        let mut ready = Vec::new();
        let mut i = 0;
        while i < self.parked.len() {
            let waiting = self.parked[i].outstanding.remove(&fetch_id);
            if waiting && self.parked[i].outstanding.is_empty() {
                ready.push(self.parked.swap_remove(i));
            } else {
                i += 1;
            }
        }
        for q in ready {
            self.drive_query(q);
        }
    }

    /// Serves a subscription request: returns the keys in `range` this
    /// shard is authoritative for (keys homed here — for those, local
    /// absence is knowledge). The range may span shards, so residency
    /// is snapshotted and restored: granting a subscription must not
    /// change what this shard believes is resident about keys it does
    /// not own.
    fn serve_subscribe(&mut self, range: &KeyRange) -> Vec<(Key, Value)> {
        // Suspend automatic eviction while granting: the scan below
        // deliberately claims transient residency that is snapshotted
        // and restored, and an eviction in between would drop rows the
        // restored residency still vouches for.
        let saved_limit = self.engine.set_mem_limit(None);
        let snapshot: Vec<(Key, RangeSet)> = self
            .engine
            .remote
            .iter()
            .filter(|(prefix, _)| KeyRange::prefix((*prefix).clone()).overlaps(range))
            .map(|(prefix, resident)| (prefix.clone(), resident.clone()))
            .collect();
        let mut pairs = loop {
            let res = self.engine.scan(range);
            if res.is_complete() {
                break res.pairs;
            }
            for miss in res.missing {
                self.engine.mark_resident(&miss);
            }
        };
        for (prefix, resident) in snapshot {
            self.engine.remote.insert(prefix, resident);
        }
        self.engine.set_mem_limit(saved_limit);
        pairs.retain(|(k, _)| self.home_shard(k) == self.shard);
        pairs
    }
}

/// Command classes whose members may share one pipelined run without
/// changing observable results (identical to the cluster client's run
/// splitting): reads don't mutate client-visible state, and writes
/// aren't observed until the next read.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CommandClass {
    Read,
    Write,
    Join,
    /// Stats aggregates across all shards, so it must not share a run
    /// with commands whose effects it would otherwise miss.
    Stats,
}

fn class_of(command: &Command) -> CommandClass {
    match command {
        Command::Get(_) | Command::Scan(_) | Command::Count(_) => CommandClass::Read,
        Command::Put(..) | Command::Remove(_) => CommandClass::Write,
        Command::AddJoin(_) => CommandClass::Join,
        Command::Stats => CommandClass::Stats,
    }
}

/// Whether two commands may share one pipelined run without changing
/// observable results (the run-splitting rule of
/// [`ShardedHandle::execute_batch`], exported so the event-driven
/// network frontend splits batches identically).
pub fn same_run_class(a: &Command, b: &Command) -> bool {
    class_of(a) == class_of(b)
}

/// Folds the per-shard replies to a broadcast `AddJoin` into one
/// response: `Ok` only if every shard installed the join, otherwise the
/// first error. Shared by the blocking [`ShardedHandle`] and the
/// event-driven frontend so both paths answer byte-identically.
pub fn fold_join_replies(replies: Vec<Response>, shards: usize) -> Response {
    if replies.len() < shards {
        return Response::Error(format!(
            "addjoin: {} of {shards} shards replied",
            replies.len()
        ));
    }
    match replies
        .into_iter()
        .find(|r| matches!(r, Response::Error(_)))
    {
        Some(err) => err,
        None => Response::Ok,
    }
}

/// Folds the per-shard replies to a broadcast `Stats` into one summed
/// [`BackendStats`]. Shared like [`fold_join_replies`].
pub fn fold_stats_replies(replies: Vec<Response>, shards: usize) -> Response {
    if replies.len() < shards {
        return Response::Error(format!(
            "stats: {} of {shards} shards replied",
            replies.len()
        ));
    }
    let mut total = BackendStats::default();
    for r in replies {
        if let Response::Stats(s) = r {
            total += s;
        }
    }
    Response::Stats(total)
}

/// How many replies one command slot expects, and how to fold them.
enum Slot {
    /// One shard answers (reads and writes).
    Single { id: u64 },
    /// Broadcast join installation: one reply per shard, folded to
    /// `Ok` or the first error.
    Join { id: u64, shards: usize },
    /// Broadcast stats: per-shard counters, summed.
    Stats { id: u64, shards: usize },
}

/// A cheap, cloneable connection to a [`ShardedEngine`]. Each handle
/// routes and pipelines its own batches; handles can be used from
/// different threads concurrently (the TCP server gives one to every
/// connection).
#[derive(Clone)]
pub struct ShardedHandle {
    senders: Arc<Vec<Sender<ShardMsg>>>,
    partition: Arc<dyn Partition>,
    next_id: u64,
}

impl ShardedHandle {
    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn home_shard(&self, key: &Key) -> usize {
        self.partition.home_of(key).0 as usize % self.senders.len()
    }

    /// Executes one same-class run: per-shard pipelined `Run` messages,
    /// then wait for every reply.
    fn execute_run(&mut self, mut commands: Vec<Command>) -> Vec<Response> {
        let shards = self.senders.len();
        // Fast path: a run of exactly one shard-addressed command (the
        // common shape — every workload check or post is one command)
        // skips the routing tables below.
        let single = if commands.len() == 1
            && !matches!(commands[0], Command::AddJoin(_) | Command::Stats)
        {
            commands.pop()
        } else {
            None
        };
        if let Some(command) = single {
            let id = self.fresh_id();
            let shard = match &command {
                Command::Get(key) | Command::Put(key, _) | Command::Remove(key) => {
                    self.home_shard(key)
                }
                Command::Scan(range) | Command::Count(range) => self.home_shard(&range.first),
                Command::AddJoin(_) | Command::Stats => unreachable!("excluded above"),
            };
            let (tx, rx) = channel();
            let _ = self.senders[shard].send(ShardMsg::Run {
                items: vec![(id, command)],
                reply: tx,
            });
            return vec![rx
                .recv()
                .map(|(_, resp)| resp)
                .unwrap_or_else(|_| Response::Error("no reply from shard".into()))];
        }
        let (tx, rx) = channel::<(u64, Response)>();
        let mut per_shard: Vec<Vec<(u64, Command)>> = vec![Vec::new(); shards];
        let mut slots: Vec<Slot> = Vec::with_capacity(commands.len());
        let mut expected = 0usize;
        for command in commands {
            let id = self.fresh_id();
            let dest = match &command {
                Command::Get(key) | Command::Put(key, _) | Command::Remove(key) => {
                    Some(self.home_shard(key))
                }
                Command::Scan(range) | Command::Count(range) => Some(self.home_shard(&range.first)),
                Command::AddJoin(_) | Command::Stats => None,
            };
            match dest {
                Some(shard) => {
                    per_shard[shard].push((id, command));
                    expected += 1;
                    slots.push(Slot::Single { id });
                }
                None => {
                    // Broadcast: every shard answers under the same id.
                    let is_stats = matches!(command, Command::Stats);
                    for q in per_shard.iter_mut() {
                        q.push((id, command.clone()));
                    }
                    expected += shards;
                    slots.push(if is_stats {
                        Slot::Stats { id, shards }
                    } else {
                        Slot::Join { id, shards }
                    });
                }
            }
        }
        for (shard, items) in per_shard.into_iter().enumerate() {
            if !items.is_empty() {
                let _ = self.senders[shard].send(ShardMsg::Run {
                    items,
                    reply: tx.clone(),
                });
            }
        }
        drop(tx);
        let mut by_id: HashMap<u64, Vec<Response>> = HashMap::new();
        for _ in 0..expected {
            match rx.recv() {
                Ok((id, resp)) => by_id.entry(id).or_default().push(resp),
                Err(_) => break, // a shard died; unanswered slots error below
            }
        }
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Single { id } => by_id
                    .remove(&id)
                    .and_then(|mut v| v.pop())
                    .unwrap_or_else(|| Response::Error("no reply from shard".into())),
                Slot::Join { id, shards } => {
                    fold_join_replies(by_id.remove(&id).unwrap_or_default(), shards)
                }
                Slot::Stats { id, shards } => {
                    fold_stats_replies(by_id.remove(&id).unwrap_or_default(), shards)
                }
            })
            .collect()
    }
}

impl Client for ShardedHandle {
    fn backend_name(&self) -> &'static str {
        "sharded"
    }

    fn execute_batch(&mut self, commands: Vec<Command>) -> Vec<Response> {
        let mut responses = Vec::with_capacity(commands.len());
        let mut run: Vec<Command> = Vec::new();
        let mut run_class = CommandClass::Read;
        for command in commands {
            let class = class_of(&command);
            if !run.is_empty() && class != run_class {
                responses.extend(self.execute_run(std::mem::take(&mut run)));
            }
            run_class = class;
            run.push(command);
        }
        if !run.is_empty() {
            responses.extend(self.execute_run(run));
        }
        responses
    }
}

/// A non-blocking, cloneable submission surface over the per-shard
/// command queues. Where a [`ShardedHandle`] parks the calling thread
/// until every reply arrives, a `ShardSubmitter` only enqueues: replies
/// come back asynchronously on the caller's channel, tagged with the
/// caller-chosen id. The event-driven network frontend serves every
/// connection through one shared submitter instead of cloning a handle
/// per connection, so accepting ten thousand sockets allocates no
/// per-connection engine state and never blocks the reactor thread.
///
/// Ordering contract: submissions from one thread to one shard are
/// executed in submission order (each shard is a FIFO mailbox), but
/// replies across shards arrive in any order. Callers that need
/// read-your-writes must wait for a run's replies before submitting a
/// dependent run, exactly like [`ShardedHandle::execute_batch`]'s run
/// splitting (see [`same_run_class`]).
#[derive(Clone)]
pub struct ShardSubmitter {
    senders: Arc<Vec<Sender<ShardMsg>>>,
    partition: Arc<dyn Partition>,
}

impl ShardSubmitter {
    /// Number of shards behind this submitter.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard that executes `command`, or `None` for broadcast
    /// commands (`AddJoin`, `Stats`) that every shard must see.
    pub fn route(&self, command: &Command) -> Option<usize> {
        match command {
            Command::Get(key) | Command::Put(key, _) | Command::Remove(key) => {
                Some(self.home_shard(key))
            }
            Command::Scan(range) | Command::Count(range) => Some(self.home_shard(&range.first)),
            Command::AddJoin(_) | Command::Stats => None,
        }
    }

    fn home_shard(&self, key: &Key) -> usize {
        self.partition.home_of(key).0 as usize % self.senders.len()
    }

    /// Enqueues a run of commands on one shard. Exactly one
    /// `(id, Response)` per item arrives on `reply`, in any order.
    pub fn submit(
        &self,
        shard: usize,
        items: Vec<(u64, Command)>,
        reply: &Sender<(u64, Response)>,
    ) {
        if items.is_empty() {
            return;
        }
        let _ = self.senders[shard % self.senders.len()].send(ShardMsg::Run {
            items,
            reply: reply.clone(),
        });
    }

    /// Enqueues a broadcast command on every shard under one id;
    /// [`shards`](Self::shards) replies arrive on `reply`. Fold them
    /// with [`fold_join_replies`] / [`fold_stats_replies`].
    pub fn broadcast(&self, id: u64, command: Command, reply: &Sender<(u64, Response)>) {
        for sender in self.senders.iter() {
            let _ = sender.send(ShardMsg::Run {
                items: vec![(id, command.clone())],
                reply: reply.clone(),
            });
        }
    }
}

/// N single-threaded [`Engine`] shards, one worker thread each, behind
/// the unified [`Client`] API. See the [module docs](self) for the
/// architecture.
pub struct ShardedEngine {
    handle: ShardedHandle,
    stats: Vec<Arc<ShardStats>>,
    threads: Vec<JoinHandle<()>>,
    /// Per-shard telemetry handles (clones of the recorders installed
    /// into each shard's engine via the setup hook); empty when
    /// telemetry is off.
    recorders: Vec<Recorder>,
}

impl ShardedEngine {
    /// Spawns `shards` worker threads, each owning one
    /// [`Engine::new`]`(config)`. Keys are routed to shards by
    /// `partition` (a [`ServerId`](crate::partition::ServerId) of `s`
    /// means shard `s % shards`); every table prefix in
    /// `partitioned_tables` is spread across shards, so each shard
    /// treats it as remote and fetches missing ranges from the owning
    /// shard by subscription.
    ///
    /// A [`MemoryLimit`](crate::config::MemoryLimit) in `config` is the
    /// budget for the whole node: it is split into per-shard budgets
    /// summing exactly to the cap
    /// ([`MemoryLimit::split_nth`](crate::config::MemoryLimit::split_nth)),
    /// each shard evicts against its own share, and
    /// [`Command::Stats`] aggregates the
    /// per-shard eviction counters and footprints back into one total.
    /// Each shard is told which keys it is the authority for (via
    /// `partition`), so eviction drops only replicated base data, never
    /// the sole copy of a partitioned row.
    ///
    /// ```
    /// use pequod_core::partition::ComponentHashPartition;
    /// use pequod_core::{Client, ShardedEngine};
    /// use pequod_store::{Key, KeyRange, Value};
    /// use std::sync::Arc;
    ///
    /// // Four shards; hash the user/poster key component so one user's
    /// // posts, subscriptions, and timeline co-locate on one shard.
    /// let part = Arc::new(ComponentHashPartition { component: 1, servers: 4 });
    /// let mut sharded = ShardedEngine::new(4, Default::default(), part, &["p|", "s|"]);
    /// sharded
    ///     .add_join("t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>")
    ///     .unwrap();
    /// sharded.put(&Key::from("s|ann|bob"), &Value::from_static(b"1"));
    /// sharded.put(&Key::from("p|bob|0000000100"), &Value::from_static(b"Hi"));
    /// // ann's timeline is computed on ann's shard from posts homed on
    /// // bob's shard, fetched and kept fresh by subscription.
    /// assert_eq!(sharded.count(&KeyRange::prefix("t|ann|")), 1);
    /// ```
    #[allow(clippy::expect_used)] // see the audit allow below
    pub fn new(
        shards: usize,
        config: EngineConfig,
        partition: Arc<dyn Partition>,
        partitioned_tables: &[&str],
    ) -> ShardedEngine {
        ShardedEngine::new_with_setup(shards, config, partition, partitioned_tables, |_, _| Ok(()))
            // audit: allow(no-unwrap) — the closure is `|_, _| Ok(())`, and
            // setup errors are the only failure `new_with_setup` reports.
            .expect("no-op shard setup cannot fail")
    }

    /// [`ShardedEngine::new`] with a per-shard setup hook, run on each
    /// shard's engine after it is configured (remote tables marked,
    /// base authority installed, budget split) and *before* its worker
    /// thread starts. This is how a deployment gives every shard its
    /// own environment — `pequod_persist::open_sharded` uses it to
    /// recover each shard from, and log each shard to, its own data
    /// directory (`shard-0/`, `shard-1/`, …). A setup error aborts
    /// construction: the already-started shards are shut down and the
    /// error is returned.
    pub fn new_with_setup(
        shards: usize,
        config: EngineConfig,
        partition: Arc<dyn Partition>,
        partitioned_tables: &[&str],
        mut setup: impl FnMut(usize, &mut Engine) -> Result<(), String>,
    ) -> Result<ShardedEngine, String> {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        let channels: Vec<(Sender<ShardMsg>, Receiver<ShardMsg>)> =
            (0..shards).map(|_| channel()).collect();
        let senders: Vec<Sender<ShardMsg>> = channels.iter().map(|(tx, _)| tx.clone()).collect();
        let stats: Vec<Arc<ShardStats>> = (0..shards)
            .map(|_| Arc::new(ShardStats::default()))
            .collect();
        let mut threads: Vec<JoinHandle<()>> = Vec::with_capacity(shards);
        for (shard, (_, rx)) in channels.into_iter().enumerate() {
            // The configured memory limit is the node-wide budget; each
            // shard enforces its exact share (remainder bytes go to the
            // lowest-numbered shards, so the shares sum to the cap).
            let mut shard_config = config.clone();
            shard_config.mem_limit = config.mem_limit.map(|limit| limit.split_nth(shards, shard));
            let mut engine = Engine::new(shard_config);
            for t in partitioned_tables {
                engine.mark_remote_table(*t);
            }
            let auth_partition = partition.clone();
            engine.set_base_authority(move |key| {
                auth_partition.home_of(key).0 as usize % shards == shard
            });
            if let Err(e) = setup(shard, &mut engine) {
                // Unwind the shards already spawned.
                for tx in &senders {
                    let _ = tx.send(ShardMsg::Shutdown);
                }
                for t in threads {
                    let _ = t.join();
                }
                return Err(format!("shard setup failed: {e}"));
            }
            let worker = ShardWorker {
                shard,
                engine,
                partition: partition.clone(),
                peers: senders.clone(),
                rx,
                subscribers: Vec::new(),
                parked: Vec::new(),
                fetch_groups: HashMap::new(),
                fetch_to_group: HashMap::new(),
                next_fetch_id: 1,
                stats: stats[shard].clone(),
            };
            match std::thread::Builder::new()
                .name(format!("pequod-shard-{shard}"))
                .spawn(move || worker.run())
            {
                Ok(t) => threads.push(t),
                Err(e) => {
                    // Unwind the shards already spawned, as for a setup error.
                    for tx in &senders {
                        let _ = tx.send(ShardMsg::Shutdown);
                    }
                    for t in threads {
                        let _ = t.join();
                    }
                    return Err(format!("failed to spawn shard worker: {e}"));
                }
            }
        }
        Ok(ShardedEngine {
            handle: ShardedHandle {
                senders: Arc::new(senders),
                partition,
                next_id: 1,
            },
            stats,
            threads,
            recorders: Vec::new(),
        })
    }

    /// Registers the per-shard telemetry recorders so
    /// [`ShardedEngine::telemetry_snapshot`] can merge them. The
    /// caller installs the same recorders into the shard engines via
    /// the `new_with_setup` hook (each shard gets its own recorder;
    /// handles here are cheap clones sharing those shards' metrics).
    pub fn set_recorders(&mut self, recorders: Vec<Recorder>) {
        self.recorders = recorders;
    }

    /// The registered per-shard recorders (empty when telemetry is
    /// off).
    pub fn recorders(&self) -> &[Recorder] {
        &self.recorders
    }

    /// Merged telemetry across every shard: counters add, histograms
    /// bucket-merge, flight rings interleave by timestamp — the exact
    /// totals a single shared recorder would have seen, without any
    /// cross-shard contention on the hot path.
    pub fn telemetry_snapshot(&self, include_flight: bool) -> Snapshot {
        let mut merged = Snapshot::default();
        for r in &self.recorders {
            merged.merge(&r.snapshot(include_flight));
        }
        merged
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.handle.senders.len()
    }

    /// Graceful shutdown: every shard takes a final snapshot and
    /// fsyncs its durability sink, so a restart recovers from the
    /// snapshots without log replay. Blocks until all shards finish.
    pub fn finalize_durability(&self) {
        let (tx, rx) = channel();
        for s in self.handle.senders.iter() {
            let _ = s.send(ShardMsg::Finalize { reply: tx.clone() });
        }
        drop(tx);
        for _ in rx.iter() {}
    }

    /// Runs the deep invariant checker ([`Engine::check_invariants`])
    /// on every shard's engine and cross-checks shard-to-shard
    /// subscription symmetry: every resident replicated range on a
    /// shard must be covered by ranges its peers record as served to
    /// it (the reverse — serving a range a peer has since evicted — is
    /// legal, the peer just drops the notifies). Returns one message
    /// per violation; empty means the whole deployment is consistent.
    pub fn check_invariants(&mut self) -> Vec<String> {
        let (tx, rx) = channel();
        for s in self.handle.senders.iter() {
            let _ = s.send(ShardMsg::CheckInvariants { reply: tx.clone() });
        }
        drop(tx);
        let mut audits: Vec<ShardAudit> = rx.iter().collect();
        audits.sort_by_key(|a| a.shard);
        let mut v = Vec::new();
        for a in &audits {
            v.extend(
                a.violations
                    .iter()
                    .map(|m| format!("shard {}: {m}", a.shard)),
            );
        }
        for b in &audits {
            let mut served_to_b = RangeSet::new();
            for a in &audits {
                if a.shard == b.shard {
                    continue;
                }
                for (range, peer) in &a.serving {
                    if *peer == b.shard {
                        served_to_b.add(range);
                    }
                }
            }
            for r in &b.resident {
                if !served_to_b.covers(r) {
                    v.push(format!(
                        "shard {}: resident replicated range {r:?} is not served by \
                         any peer (updates to it would never arrive)",
                        b.shard
                    ));
                }
            }
        }
        v
    }

    /// A new independent client handle; handles are cheap to clone and
    /// may be driven from different threads concurrently.
    pub fn client_handle(&self) -> ShardedHandle {
        let mut h = self.handle.clone();
        h.next_id = 1;
        h
    }

    /// A non-blocking [`ShardSubmitter`] over this engine's shard
    /// queues — the event-driven network frontend's submission surface.
    pub fn submitter(&self) -> ShardSubmitter {
        ShardSubmitter {
            senders: self.handle.senders.clone(),
            partition: self.handle.partition.clone(),
        }
    }

    /// Counters of one shard (subscriptions, notifications, parks).
    pub fn shard_stats(&self, shard: usize) -> &ShardStats {
        &self.stats[shard]
    }
}

/// The sharded engine is itself a backend: its own primary handle.
impl Client for ShardedEngine {
    fn backend_name(&self) -> &'static str {
        "sharded"
    }

    fn execute_batch(&mut self, commands: Vec<Command>) -> Vec<Response> {
        self.handle.execute_batch(commands)
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        for tx in self.handle.senders.iter() {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{ComponentHashPartition, ServerId, TablePartition};

    const TIMELINE: &str =
        "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>";

    fn hash_sharded(shards: usize) -> ShardedEngine {
        let part = Arc::new(ComponentHashPartition {
            component: 1,
            servers: shards as u32,
        });
        ShardedEngine::new(shards, EngineConfig::default(), part, &["p|", "s|"])
    }

    #[test]
    fn cross_shard_timeline_stays_fresh() {
        let mut s = hash_sharded(4);
        s.add_join(TIMELINE).unwrap();
        s.put(&Key::from("s|ann|bob"), &Value::from_static(b"1"));
        s.put(&Key::from("p|bob|0000000100"), &Value::from_static(b"Hi"));
        assert_eq!(s.scan(&KeyRange::prefix("t|ann|")).len(), 1);
        assert_eq!(
            s.get(&Key::from("t|ann|0000000100|bob")).as_deref(),
            Some(&b"Hi"[..])
        );
        // Later posts propagate by notification, not refetch.
        s.put(&Key::from("p|bob|0000000120"), &Value::from_static(b"x"));
        assert_eq!(s.count(&KeyRange::prefix("t|ann|")), 2);
        s.remove(&Key::from("p|bob|0000000100"));
        assert_eq!(s.count(&KeyRange::prefix("t|ann|")), 1);
    }

    #[test]
    fn single_shard_degenerates_to_engine() {
        let part = Arc::new(ComponentHashPartition {
            component: 1,
            servers: 1,
        });
        let mut s = ShardedEngine::new(1, EngineConfig::default(), part, &["p|", "s|"]);
        s.add_join(TIMELINE).unwrap();
        s.put(&Key::from("s|ann|bob"), &Value::from_static(b"1"));
        s.put(&Key::from("p|bob|0000000100"), &Value::from_static(b"Hi"));
        assert_eq!(s.count(&KeyRange::prefix("t|ann|")), 1);
    }

    #[test]
    fn table_partition_splits_tables_across_shards() {
        let part = Arc::new(TablePartition::new(ServerId(0)).route("p|", ServerId(1)));
        let mut s = ShardedEngine::new(2, EngineConfig::default(), part, &["p|", "s|"]);
        s.add_join(TIMELINE).unwrap();
        s.put(&Key::from("s|ann|bob"), &Value::from_static(b"1"));
        s.put(&Key::from("p|bob|0000000100"), &Value::from_static(b"Hi"));
        assert_eq!(s.count(&KeyRange::prefix("t|ann|")), 1);
        // The p| data came to shard 0 by subscription from shard 1.
        assert!(s.shard_stats(1).subs_granted.load(Ordering::Relaxed) >= 1);
        assert!(s.shard_stats(0).subs_established.load(Ordering::Relaxed) >= 1);
        s.put(&Key::from("p|bob|0000000120"), &Value::from_static(b"x"));
        assert_eq!(s.count(&KeyRange::prefix("t|ann|")), 2);
        assert!(s.shard_stats(1).notifies_sent.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn cross_shard_ranges_agree_with_engine() {
        // A whole-table range spans every shard under a hash partition:
        // the executing shard must gather all shards' keys, answer
        // byte-identically to a single engine, and stay fresh.
        let mut s = hash_sharded(4);
        let mut reference = Engine::new_default();
        for i in 0..8 {
            let key = Key::from(format!("p|user{i}|0000000001"));
            let val = Value::from_static(b"v");
            s.put(&key, &val);
            reference.put(key.clone(), val);
        }
        assert_eq!(s.count(&KeyRange::prefix("p|")), 8);
        assert_eq!(
            s.scan(&KeyRange::prefix("p|")),
            reference.scan(&KeyRange::prefix("p|")).pairs
        );
        // Sub-ranges starting at various points route to various
        // executing shards; none may have had its residency poisoned by
        // serving the broadcast above.
        for c in ["a", "b", "c", "d", "e", "f", "g", "h"] {
            let r = KeyRange::new(format!("p|{c}"), "p~");
            assert_eq!(
                s.count(&r) as usize,
                reference.scan(&r).pairs.len(),
                "sub-range starting at p|{c} diverged from the engine"
            );
        }
        // Freshness: a brand-new user's write reaches the whole-table
        // subscribers by notification.
        let key = Key::from("p|newuser|0000000001");
        let val = Value::from_static(b"v");
        s.put(&key, &val);
        reference.put(key, val);
        assert_eq!(s.count(&KeyRange::prefix("p|")), 9);
        for c in ["a", "b", "c", "d"] {
            let r = KeyRange::new(format!("p|{c}"), "p~");
            assert_eq!(s.count(&r) as usize, reference.scan(&r).pairs.len());
        }
    }

    #[test]
    fn bad_join_text_reports_one_error() {
        let mut s = hash_sharded(3);
        assert!(s.add_join("nonsense").is_err());
        // The engine keeps answering afterwards.
        s.put(&Key::from("p|bob|0000000100"), &Value::from_static(b"Hi"));
        assert_eq!(s.count(&KeyRange::prefix("p|bob|")), 1);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let mut s = hash_sharded(4);
        for i in 0..32 {
            s.put(
                &Key::from(format!("p|user{i}|0000000001")),
                &Value::from_static(b"v"),
            );
        }
        let stats = s.stats();
        assert_eq!(stats.keys, 32);
        assert!(stats.memory_bytes > 0);
    }

    #[test]
    fn handles_are_concurrent() {
        let s = hash_sharded(2);
        let mut writers = Vec::new();
        for w in 0..4 {
            let mut h = s.client_handle();
            writers.push(std::thread::spawn(move || {
                for i in 0..50 {
                    h.put(
                        &Key::from(format!("p|w{w}|{i:010}")),
                        &Value::from_static(b"v"),
                    );
                }
            }));
        }
        for t in writers {
            t.join().unwrap();
        }
        let mut h = s.client_handle();
        let total: u64 = (0..4)
            .map(|w| h.count(&KeyRange::prefix(format!("p|w{w}|"))))
            .sum();
        assert_eq!(total, 200);
    }
}
